//! Dirty-set signature maintenance over streaming window deltas.
//!
//! The batch path recomputes every subject's signature per window. A
//! [`SignaturePipeline`] instead consumes the [`WindowDelta`] emitted by
//! `comsig_graph::SlidingWindower`, advances the graph incrementally via
//! [`CommGraph::apply_delta`], derives the scheme-specific **dirty set**
//! — the subjects whose signature inputs could have changed — and
//! recomputes *only* those subjects, exactly.
//!
//! # Why the result is bit-identical to a cold rebuild
//!
//! Every implemented scheme computes signatures **per subject
//! independently**: `signature_set` over a subset of subjects produces,
//! for each subject, exactly the value the full batch would. Clean
//! subjects keep their previous signature, which is bit-identical to the
//! cold value by induction: their relevance inputs (adjacency rows,
//! cached sums, in-degrees, transition rows) are bitwise unchanged by the
//! delta, so the cold computation on the new graph would replay the same
//! arithmetic. The [`check_pipeline_equiv`](crate::contract) contract
//! asserts `to_bits` equality against the cold oracle on every advance
//! (debug / `contracts` builds).
//!
//! # Dirty-set derivation per scheme
//!
//! * **TT** — relevance of `v` reads only `v`'s out-row and out-sum:
//!   dirty = sources of changed edges.
//! * **UT** — additionally reads `|I(u)|` of each out-neighbour `u`:
//!   dirty = changed sources ∪ new-graph in-neighbours of destinations
//!   whose in-degree changed (insertions/retractions only; weight-only
//!   updates leave degrees alone, and a source that lost the edge is
//!   already dirty as a changed source).
//! * **RWR^h** — the `h`-step walk from `v` reads rows of nodes within
//!   `h−1` hops, and dangling-reset behaviour is a row property: dirty =
//!   reverse closure of changed rows to depth `h−1` over the new graph.
//!   If a subject's new-graph walk touches only unchanged rows, the old
//!   walk unfolded over the very same rows, so old and new occupancies
//!   are the same computation — new-graph closure alone suffices.
//! * **RWR^∞ / PushRWR** — the steady-state iteration is global (and a
//!   warm start would change the iteration trajectory, breaking
//!   bit-identity), so these fall back to [`DirtySet::All`], a full —
//!   trivially exact — recompute.

use rustc_hash::FxHashSet;

use comsig_graph::{CommGraph, NodeId, ShardPlan, WindowDelta};

use crate::contract;
use crate::scheme::{PushRwr, Rwr, SignatureScheme, TopTalkers, UnexpectedTalkers, WalkDirection};
use crate::signature::SignatureSet;

/// The subjects whose signatures a delta may have changed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirtySet {
    /// Every subject must be recomputed (global schemes).
    All,
    /// Only these nodes can have changed signatures.
    Nodes(FxHashSet<NodeId>),
}

impl DirtySet {
    /// Whether `v` is dirty under this set.
    #[must_use]
    pub fn contains(&self, v: NodeId) -> bool {
        match self {
            DirtySet::All => true,
            DirtySet::Nodes(nodes) => nodes.contains(&v),
        }
    }
}

/// A [`SignatureScheme`] that can bound the effect of a [`WindowDelta`].
///
/// Implementations must guarantee that any subject **not** in the
/// returned [`DirtySet`] has a bit-identical signature on `old` and
/// `new`; the pipeline recomputes dirty subjects with the scheme's own
/// `signature_set` (whose per-subject results are independent of the
/// subject list), so the advance is exact by construction.
pub trait DeltaScheme: SignatureScheme {
    /// The nodes whose signature may differ between `old` and
    /// `new = old.apply_delta(delta)`.
    fn dirty_set(&self, old: &CommGraph, new: &CommGraph, delta: &WindowDelta) -> DirtySet;
}

impl DeltaScheme for TopTalkers {
    fn dirty_set(&self, _old: &CommGraph, _new: &CommGraph, delta: &WindowDelta) -> DirtySet {
        DirtySet::Nodes(delta.changes.iter().map(|c| c.src).collect())
    }
}

impl DeltaScheme for UnexpectedTalkers {
    fn dirty_set(&self, _old: &CommGraph, new: &CommGraph, delta: &WindowDelta) -> DirtySet {
        let mut dirty: FxHashSet<NodeId> = delta.changes.iter().map(|c| c.src).collect();
        let mut degree_changed: FxHashSet<NodeId> = FxHashSet::default();
        for c in &delta.changes {
            if c.is_insertion() || c.is_retraction() {
                degree_changed.insert(c.dst);
            }
        }
        for d in degree_changed {
            for (s, _) in new.in_neighbors(d) {
                dirty.insert(s);
            }
        }
        DirtySet::Nodes(dirty)
    }
}

impl DeltaScheme for Rwr {
    fn dirty_set(&self, _old: &CommGraph, new: &CommGraph, delta: &WindowDelta) -> DirtySet {
        let Some(h) = self.config.hops else {
            // RWR^∞: the fixed point is global, and warm-starting the
            // iteration changes its trajectory (not bit-identical), so
            // advance by full recompute.
            return DirtySet::All;
        };
        let depth = h.saturating_sub(1);
        match self.config.direction {
            WalkDirection::Directed => {
                // A change (s, d) rewrites row s (adjacency, out-sum,
                // danglingness); subjects whose walk can occupy s within
                // h−1 steps are dirty.
                let seeds = delta.changes.iter().map(|c| c.src);
                DirtySet::Nodes(reverse_closure(new, seeds, depth, false))
            }
            WalkDirection::Undirected => {
                // A change (s, d) rewrites the merged undirected rows of
                // both endpoints (adjacency or incident-volume sums).
                let seeds = delta.changes.iter().flat_map(|c| [c.src, c.dst]);
                DirtySet::Nodes(reverse_closure(new, seeds, depth, true))
            }
        }
    }
}

impl DeltaScheme for PushRwr {
    fn dirty_set(&self, _old: &CommGraph, _new: &CommGraph, _delta: &WindowDelta) -> DirtySet {
        // The push frontier is tolerance-driven rather than hop-bounded,
        // so no static closure bounds it; advance by full recompute.
        DirtySet::All
    }
}

/// Nodes that can reach a seed within `depth` hops: BFS from the seeds
/// over reversed edges (plus forward edges when `undirected`, where the
/// walk relation is symmetric). The seeds themselves are included.
fn reverse_closure(
    g: &CommGraph,
    seeds: impl IntoIterator<Item = NodeId>,
    depth: u32,
    undirected: bool,
) -> FxHashSet<NodeId> {
    let mut visited: FxHashSet<NodeId> = seeds.into_iter().collect();
    let mut frontier: Vec<NodeId> = visited.iter().copied().collect();
    // The returned set is order-free, but a sorted seed frontier makes
    // the traversal order (and thus any downstream instrumentation)
    // independent of hash-iteration order.
    frontier.sort_unstable();
    // One frontier buffer reused across depth levels.
    let mut next: Vec<NodeId> = Vec::new();
    for _ in 0..depth {
        if frontier.is_empty() {
            break;
        }
        next.clear();
        for &x in &frontier {
            for (p, _) in g.in_neighbors(x) {
                if visited.insert(p) {
                    next.push(p);
                }
            }
            if undirected {
                for (p, _) in g.out_neighbors(x) {
                    if visited.insert(p) {
                        next.push(p);
                    }
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
    }
    visited
}

/// What one [`SignaturePipeline::advance`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdvanceReport {
    /// Aggregated-edge changes in the applied delta.
    pub changed_edges: usize,
    /// The subjects actually recomputed, in maintained subject order —
    /// exactly the set a downstream index must patch.
    pub dirty: Vec<NodeId>,
    /// Total subjects maintained by the pipeline.
    pub total_subjects: usize,
    /// Whether the scheme forced a full recompute ([`DirtySet::All`]).
    pub full_recompute: bool,
}

impl AdvanceReport {
    /// Number of subjects recomputed by this advance.
    #[must_use]
    pub fn dirty_subjects(&self) -> usize {
        self.dirty.len()
    }
}

/// Online window-over-window signature maintenance: holds the current
/// window's graph and signature set, and [`advance`](Self::advance)s both
/// incrementally from a [`WindowDelta`].
#[derive(Debug)]
pub struct SignaturePipeline<'a, S: DeltaScheme + ?Sized> {
    scheme: &'a S,
    k: usize,
    graph: CommGraph,
    set: SignatureSet,
    plan: ShardPlan,
    /// Scratch reused across advances: the current delta's dirty
    /// subjects, filtered into maintained subject order.
    dirty_buf: Vec<NodeId>,
}

// Derived `Clone` would demand `S: Clone`; the scheme is only a shared
// borrow, so every instantiation (including `dyn DeltaScheme`) is
// cloneable — forking a pipeline snapshots its window state without
// recomputing signatures.
impl<S: DeltaScheme + ?Sized> Clone for SignaturePipeline<'_, S> {
    fn clone(&self) -> Self {
        SignaturePipeline {
            scheme: self.scheme,
            k: self.k,
            graph: self.graph.clone(),
            set: self.set.clone(),
            plan: self.plan,
            dirty_buf: Vec::new(),
        }
    }
}

impl<'a, S: DeltaScheme + ?Sized> SignaturePipeline<'a, S> {
    /// Seeds the pipeline with an initial window graph (often
    /// [`CommGraph::empty`] before the first advance) and the fixed
    /// subject population, advancing with a machine-sized [`ShardPlan`];
    /// the initial signature set is computed cold.
    #[must_use]
    pub fn new(scheme: &'a S, graph: CommGraph, subjects: &[NodeId], k: usize) -> Self {
        Self::with_plan(scheme, graph, subjects, k, ShardPlan::auto())
    }

    /// [`new`](Self::new) with an explicit shard plan. Every plan yields
    /// bit-identical signatures; the plan only chooses how many worker
    /// threads each advance fans out over.
    #[must_use]
    pub fn with_plan(
        scheme: &'a S,
        graph: CommGraph,
        subjects: &[NodeId],
        k: usize,
        plan: ShardPlan,
    ) -> Self {
        let set = scheme.signature_set_with(&graph, subjects, k, &plan);
        SignaturePipeline {
            scheme,
            k,
            graph,
            set,
            plan,
            dirty_buf: Vec::new(),
        }
    }

    /// Reassembles a pipeline from persisted parts **without** the cold
    /// signature recompute [`with_plan`](Self::with_plan) performs: the
    /// caller supplies the window graph and the signature set exactly as
    /// they were when the pipeline was captured. The restored pipeline
    /// is bit-identical to the captured one — callers are expected to
    /// verify this against a digest recorded at capture time (the
    /// `comsig serve` recovery path does).
    ///
    /// # Errors
    /// Returns an error if a signature-set subject is out of range for
    /// the graph's node space; deeper mismatches (a set that is not the
    /// scheme's output for this graph) are the caller's digest check to
    /// catch.
    pub fn resume(
        scheme: &'a S,
        graph: CommGraph,
        set: SignatureSet,
        k: usize,
        plan: ShardPlan,
    ) -> Result<Self, String> {
        if let Some(&v) = set
            .subjects()
            .iter()
            .find(|v| v.index() >= graph.num_nodes())
        {
            return Err(format!(
                "pipeline resume: subject {v} out of range for |V| = {}",
                graph.num_nodes()
            ));
        }
        Ok(SignaturePipeline {
            scheme,
            k,
            graph,
            set,
            plan,
            dirty_buf: Vec::new(),
        })
    }

    /// The signature length `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The shard plan advances run under.
    #[must_use]
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The current window's graph.
    #[must_use]
    pub fn graph(&self) -> &CommGraph {
        &self.graph
    }

    /// The current window's signatures (always equal to a cold
    /// `signature_set` on [`graph`](Self::graph)).
    #[must_use]
    pub fn signatures(&self) -> &SignatureSet {
        &self.set
    }

    /// Advances to the next window: applies the delta to the graph,
    /// derives the scheme's dirty set, and recomputes exactly the dirty
    /// subjects — shard-parallel per the pipeline's [`ShardPlan`].
    ///
    /// The dirty subjects are filtered into maintained subject order
    /// (reusing a scratch buffer across windows), partitioned into
    /// contiguous shards, and each shard recomputes its slice with the
    /// scheme's chunk kernel on a private workspace. The merge walks the
    /// shards in order, so replacements land in exactly the serial
    /// path's sequence and the resulting set is bit-identical at every
    /// thread count. Under debug / `contracts` builds the result is
    /// additionally asserted bit-identical to a cold rebuild.
    pub fn advance(&mut self, delta: &WindowDelta) -> AdvanceReport {
        let new_graph = self.graph.apply_delta(delta);
        let dirty = self.scheme.dirty_set(&self.graph, &new_graph, delta);
        let total = self.set.len();
        let full_recompute = matches!(dirty, DirtySet::All);
        self.dirty_buf.clear();
        match &dirty {
            DirtySet::All => self.dirty_buf.extend_from_slice(self.set.subjects()),
            // Preserve subject order: filter the maintained subject list
            // rather than iterating the hash set.
            DirtySet::Nodes(nodes) => self.dirty_buf.extend(
                self.set
                    .subjects()
                    .iter()
                    .copied()
                    .filter(|v| nodes.contains(v)),
            ),
        }
        self.scheme.prepare(&new_graph);
        let ranges = self.plan.ranges(self.dirty_buf.len());
        let dirty_buf = &self.dirty_buf;
        let (scheme, k, g) = (self.scheme, self.k, &new_graph);
        let shard_sigs =
            rayon::scope_chunks(&ranges, |_, r| scheme.signature_chunk(g, &dirty_buf[r], k));
        for (range, sigs) in ranges.iter().zip(shard_sigs) {
            for (&v, sig) in dirty_buf[range.clone()].iter().zip(sigs) {
                let _ = self.set.replace(v, sig);
            }
        }
        let report = AdvanceReport {
            changed_edges: delta.len(),
            dirty: self.dirty_buf.clone(),
            total_subjects: total,
            full_recompute,
        };
        contract::check_pipeline_equiv(self.scheme, &new_graph, self.k, &self.set);
        self.graph = new_graph;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comsig_graph::{EdgeEvent, GraphBuilder, SlidingWindower};

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn ev(time: u64, src: usize, dst: usize, w: f64) -> EdgeEvent {
        EdgeEvent {
            time,
            src: n(src),
            dst: n(dst),
            weight: w,
        }
    }

    /// Three windows over 8 nodes with churn on every advance.
    fn stream() -> Vec<EdgeEvent> {
        vec![
            ev(0, 0, 1, 2.0),
            ev(1, 0, 2, 1.0),
            ev(2, 1, 2, 4.0),
            ev(3, 3, 4, 1.5),
            ev(4, 4, 5, 0.5),
            ev(11, 0, 1, 3.0),
            ev(12, 1, 2, 4.0),
            ev(13, 2, 6, 1.0),
            ev(14, 5, 4, 2.0),
            ev(21, 0, 7, 1.0),
            ev(22, 6, 2, 2.5),
            ev(23, 3, 4, 1.5),
        ]
    }

    fn cold_window(events: &[EdgeEvent], s: u64, e: u64, num_nodes: usize) -> CommGraph {
        let mut b = GraphBuilder::new();
        for event in events {
            if event.time >= s && event.time < e {
                b.add_event(event.src, event.dst, event.weight);
            }
        }
        b.build(num_nodes)
    }

    fn assert_set_bits_equal(got: &SignatureSet, want: &SignatureSet) {
        assert_eq!(got.len(), want.len());
        for ((gv, gs), (wv, ws)) in got.iter().zip(want.iter()) {
            assert_eq!(gv, wv);
            assert_eq!(gs.len(), ws.len(), "subject {gv}");
            for ((gu, gw), (wu, ww)) in gs.iter().zip(ws.iter()) {
                assert_eq!(gu, wu, "subject {gv}");
                assert_eq!(gw.to_bits(), ww.to_bits(), "subject {gv} node {gu}");
            }
        }
    }

    fn check_scheme<S: DeltaScheme>(scheme: &S) {
        let events = stream();
        let subjects: Vec<NodeId> = (0..8).map(n).collect();
        let mut w = SlidingWindower::tumbling(0, 10);
        for &e in &events {
            w.push(e);
        }
        let mut pipe = SignaturePipeline::new(scheme, CommGraph::empty(8), &subjects, 3);
        for _ in 0..3 {
            let delta = w.advance();
            let report = pipe.advance(&delta);
            assert_eq!(report.total_subjects, 8);
            let cold = cold_window(&events, delta.start, delta.end, 8);
            let want = scheme.signature_set(&cold, &subjects, 3);
            assert_set_bits_equal(pipe.signatures(), &want);
        }
    }

    #[test]
    fn tt_advance_bit_identical() {
        check_scheme(&TopTalkers);
    }

    #[test]
    fn ut_advance_bit_identical() {
        check_scheme(&UnexpectedTalkers::new());
    }

    #[test]
    fn rwr_truncated_advance_bit_identical() {
        check_scheme(&Rwr::truncated(0.1, 3));
        check_scheme(&Rwr::truncated(0.1, 3).undirected());
    }

    #[test]
    fn rwr_full_advance_falls_back_to_full_recompute() {
        let scheme = Rwr::full(0.1);
        let events = stream();
        let subjects: Vec<NodeId> = (0..8).map(n).collect();
        let mut w = SlidingWindower::tumbling(0, 10);
        for &e in &events {
            w.push(e);
        }
        let mut pipe = SignaturePipeline::new(&scheme, CommGraph::empty(8), &subjects, 3);
        let delta = w.advance();
        let report = pipe.advance(&delta);
        assert!(report.full_recompute);
        assert_eq!(report.dirty_subjects(), 8);
    }

    #[test]
    fn tt_dirty_set_is_sources_only() {
        let events = stream();
        let mut w = SlidingWindower::tumbling(0, 10);
        for &e in &events {
            w.push(e);
        }
        let g0 = CommGraph::empty(8);
        let delta = w.advance();
        let g1 = g0.apply_delta(&delta);
        let dirty = TopTalkers.dirty_set(&g0, &g1, &delta);
        let DirtySet::Nodes(nodes) = dirty else {
            panic!("TT must produce a bounded dirty set");
        };
        let expected: FxHashSet<NodeId> = delta.changes.iter().map(|c| c.src).collect();
        assert_eq!(nodes, expected);
        // Node 7 never speaks: clean.
        assert!(!nodes.contains(&n(7)));
    }

    #[test]
    fn ut_dirty_set_covers_in_degree_neighbours() {
        // Window 0: 0->2, 1->2. Window 1 adds 3->2 — an in-degree change
        // at node 2 that dirties subjects 0 and 1 even though their own
        // out-rows are untouched.
        let events = vec![
            ev(0, 0, 2, 1.0),
            ev(1, 1, 2, 1.0),
            ev(11, 0, 2, 1.0),
            ev(12, 1, 2, 1.0),
            ev(13, 3, 2, 1.0),
        ];
        let mut w = SlidingWindower::tumbling(0, 10);
        for &e in &events {
            w.push(e);
        }
        let g0 = CommGraph::empty(4).apply_delta(&w.advance());
        let delta = w.advance();
        let g1 = g0.apply_delta(&delta);
        let dirty = UnexpectedTalkers::new().dirty_set(&g0, &g1, &delta);
        assert!(dirty.contains(n(0)) && dirty.contains(n(1)) && dirty.contains(n(3)));
    }

    #[test]
    fn pipeline_handles_window_that_empties() {
        let events = vec![ev(0, 0, 1, 1.0), ev(1, 1, 2, 2.0)];
        let subjects: Vec<NodeId> = (0..3).map(n).collect();
        let mut w = SlidingWindower::tumbling(0, 10);
        for &e in &events {
            w.push(e);
        }
        let scheme = Rwr::truncated(0.1, 3);
        let mut pipe = SignaturePipeline::new(&scheme, CommGraph::empty(3), &subjects, 3);
        let _ = pipe.advance(&w.advance());
        assert!(pipe.graph().num_edges() > 0);
        // Next window has no events: everything retracts.
        let delta = w.advance();
        let report = pipe.advance(&delta);
        assert_eq!(pipe.graph().num_edges(), 0);
        assert!(report.dirty_subjects() > 0);
        for (_, sig) in pipe.signatures().iter() {
            assert!(sig.is_empty());
        }
    }
}
