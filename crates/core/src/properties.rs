//! The three fundamental signature properties (Definition 2).
//!
//! Given a bounded distance `Dist(·,·) ∈ [0,1]`, the paper defines, for a
//! node `v` and some other node `u ≠ v`:
//!
//! * **persistence** `= 1 − Dist(σ_t(v), σ_{t+1}(v))` — stability of one
//!   node's signature across consecutive windows;
//! * **uniqueness** `= Dist(σ_t(v), σ_t(u))` — separation between two
//!   different nodes within one window;
//! * **robustness** `= 1 − Dist(σ_t(v), σ̂_t(v))` — stability of one
//!   node's signature under graph perturbation.
//!
//! Larger is better in all three, up to 1 (perfect). The batch evaluation
//! over whole node populations (means, deviations, ROC curves) lives in
//! `comsig-eval`; these are the pointwise definitions.

use comsig_graph::{CommGraph, NodeId};

use crate::distance::SignatureDistance;
use crate::scheme::SignatureScheme;
use crate::signature::Signature;

/// Pointwise persistence: `1 − Dist(σ_t(v), σ_{t+1}(v))`.
#[must_use]
pub fn persistence(dist: &dyn SignatureDistance, sig_t: &Signature, sig_t1: &Signature) -> f64 {
    let d = dist.distance(sig_t, sig_t1);
    crate::contract::check_distance(dist, sig_t, sig_t1, d);
    1.0 - d
}

/// Pointwise uniqueness: `Dist(σ_t(v), σ_t(u))` for `u ≠ v`.
#[must_use]
pub fn uniqueness(dist: &dyn SignatureDistance, sig_v: &Signature, sig_u: &Signature) -> f64 {
    let d = dist.distance(sig_v, sig_u);
    crate::contract::check_distance(dist, sig_v, sig_u, d);
    d
}

/// Pointwise robustness: `1 − Dist(σ_t(v), σ̂_t(v))` where `σ̂` was built
/// from a perturbed graph.
#[must_use]
pub fn robustness(
    dist: &dyn SignatureDistance,
    sig_clean: &Signature,
    sig_perturbed: &Signature,
) -> f64 {
    let d = dist.distance(sig_clean, sig_perturbed);
    crate::contract::check_distance(dist, sig_clean, sig_perturbed, d);
    1.0 - d
}

/// Convenience: persistence of node `v` across two windows, computing the
/// signatures with `scheme` at length `k`.
#[must_use]
pub fn node_persistence(
    scheme: &dyn SignatureScheme,
    dist: &dyn SignatureDistance,
    g_t: &CommGraph,
    g_t1: &CommGraph,
    v: NodeId,
    k: usize,
) -> f64 {
    persistence(
        dist,
        &scheme.signature(g_t, v, k),
        &scheme.signature(g_t1, v, k),
    )
}

/// Convenience: uniqueness between nodes `v` and `u` within one window.
#[must_use]
pub fn node_uniqueness(
    scheme: &dyn SignatureScheme,
    dist: &dyn SignatureDistance,
    g: &CommGraph,
    v: NodeId,
    u: NodeId,
    k: usize,
) -> f64 {
    uniqueness(dist, &scheme.signature(g, v, k), &scheme.signature(g, u, k))
}

/// Convenience: robustness of node `v` between a graph and its
/// perturbation.
#[must_use]
pub fn node_robustness(
    scheme: &dyn SignatureScheme,
    dist: &dyn SignatureDistance,
    g: &CommGraph,
    g_perturbed: &CommGraph,
    v: NodeId,
    k: usize,
) -> f64 {
    robustness(
        dist,
        &scheme.signature(g, v, k),
        &scheme.signature(g_perturbed, v, k),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::Jaccard;
    use crate::scheme::TopTalkers;
    use comsig_graph::GraphBuilder;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn graph(pairs: &[(usize, usize, f64)]) -> CommGraph {
        let mut b = GraphBuilder::new();
        for &(s, d, w) in pairs {
            b.add_event(n(s), n(d), w);
        }
        b.build(6)
    }

    #[test]
    fn stable_node_is_fully_persistent() {
        let g1 = graph(&[(0, 1, 5.0), (0, 2, 3.0)]);
        let g2 = graph(&[(0, 1, 6.0), (0, 2, 2.0)]);
        let p = node_persistence(&TopTalkers, &Jaccard, &g1, &g2, n(0), 2);
        assert_eq!(p, 1.0); // same node set under Jaccard
    }

    #[test]
    fn behavior_change_lowers_persistence() {
        let g1 = graph(&[(0, 1, 5.0), (0, 2, 3.0)]);
        let g2 = graph(&[(0, 3, 5.0), (0, 4, 3.0)]);
        let p = node_persistence(&TopTalkers, &Jaccard, &g1, &g2, n(0), 2);
        assert_eq!(p, 0.0);
    }

    #[test]
    fn distinct_behavior_is_unique() {
        let g = graph(&[(0, 1, 1.0), (3, 4, 1.0)]);
        let u = node_uniqueness(&TopTalkers, &Jaccard, &g, n(0), n(3), 2);
        assert_eq!(u, 1.0);
    }

    #[test]
    fn identical_behavior_is_not_unique() {
        let g = graph(&[(0, 2, 1.0), (1, 2, 1.0)]);
        let u = node_uniqueness(&TopTalkers, &Jaccard, &g, n(0), n(1), 2);
        assert_eq!(u, 0.0);
    }

    #[test]
    fn unperturbed_graph_is_fully_robust() {
        let g = graph(&[(0, 1, 5.0), (0, 2, 3.0)]);
        let r = node_robustness(&TopTalkers, &Jaccard, &g, &g, n(0), 2);
        assert_eq!(r, 1.0);
    }

    #[test]
    fn properties_are_complements_of_distance() {
        let a = Signature::top_k(n(9), vec![(n(1), 0.6), (n(2), 0.4)], 2);
        let b = Signature::top_k(n(9), vec![(n(2), 0.5), (n(3), 0.5)], 2);
        let d = Jaccard.distance(&a, &b);
        assert!((persistence(&Jaccard, &a, &b) - (1.0 - d)).abs() < 1e-12);
        assert!((uniqueness(&Jaccard, &a, &b) - d).abs() < 1e-12);
        assert!((robustness(&Jaccard, &a, &b) - (1.0 - d)).abs() < 1e-12);
    }
}
