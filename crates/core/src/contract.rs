//! Paper-invariant contract layer.
//!
//! The paper's definitions are machine-checkable contracts:
//!
//! * **Definition 1** — a signature is a top-`k` set of `(node, weight)`
//!   pairs with *finite, strictly positive* weights, stored sorted by
//!   node id ([`check_signature`]);
//! * **Definition 2** — every distance function maps into `[0, 1]`
//!   ([`check_unit_interval`]) and is symmetric,
//!   `Dist(σ₁, σ₂) = Dist(σ₂, σ₁)` ([`check_distance`]);
//! * **Definition 5** — RWR transition rows are row-stochastic
//!   ([`check_stochastic_row`], [`check_transition_rows`]) and an
//!   occupancy vector is a (possibly pruned) probability distribution
//!   ([`check_occupancy`]);
//! * the batched engine's epoch-stamped workspaces must be clean at the
//!   start of every batch ([`check_scatter_clean`]);
//! * a streaming-pipeline advance must be bit-identical to a cold
//!   rebuild ([`check_pipeline_equiv`]).
//!
//! Checks are **active in debug builds and when the `contracts` feature
//! is enabled**; in a plain release build every checker compiles to a
//! no-op, so the hot paths pay nothing. The checkers are called from the
//! signature constructor, every distance implementation, the property
//! definitions, the batched RWR engine, `comsig-eval`'s matchers and ROC
//! machinery, and `comsig-graph`'s property tests (via dev-dependency).

use comsig_graph::{CommGraph, NodeId};

use crate::distance::SignatureDistance;
use crate::engine::{DegradeReason, DenseScatter};
use crate::scheme::SignatureScheme;
use crate::signature::{Signature, SignatureSet};

/// Absolute tolerance for stochasticity and unit-interval checks.
/// Row sums and distances are accumulated over at most a few thousand
/// float additions, so 1e-9 is orders of magnitude above accumulated
/// rounding noise while still catching any real normalisation bug.
pub const TOLERANCE: f64 = 1e-9;

/// Tolerance for the symmetry check `Dist(a,b) = Dist(b,a)`. Every
/// implemented distance evaluates the same merge-join in the same order
/// for both argument orders, so the two values must agree to the last
/// few ulps.
pub const SYMMETRY_TOLERANCE: f64 = 1e-12;

/// Whether contract checks are compiled in: true in debug builds
/// (`cfg(debug_assertions)`) and when the `contracts` feature is on.
#[inline]
#[must_use]
pub const fn enabled() -> bool {
    cfg!(any(debug_assertions, feature = "contracts"))
}

/// Definition 1: every weight is finite and strictly positive, and the
/// entries are strictly sorted by node id (the representation invariant
/// the `O(k)` distance merge-joins rely on).
///
/// # Panics
/// Panics (when [`enabled`]) if the signature violates the contract.
#[inline]
pub fn check_signature(sig: &Signature) {
    if !enabled() {
        return;
    }
    let mut prev: Option<NodeId> = None;
    for (u, w) in sig.iter() {
        assert!(
            w.is_finite() && w > 0.0,
            "contract violation (Definition 1): weight {w} of node {u} is not finite and positive"
        );
        if let Some(p) = prev {
            assert!(
                p < u,
                "contract violation: signature entries out of order ({p} before {u})"
            );
        }
        prev = Some(u);
    }
}

/// Definition 2: `value` lies in `[0, 1]` (up to [`TOLERANCE`]).
///
/// # Panics
/// Panics (when [`enabled`]) if `value` is non-finite or out of range.
#[inline]
pub fn check_unit_interval(what: &str, value: f64) {
    if !enabled() {
        return;
    }
    assert!(
        value.is_finite() && (-TOLERANCE..=1.0 + TOLERANCE).contains(&value),
        "contract violation (Definition 2): {what} = {value} outside [0, 1]"
    );
}

/// Definition 2: bounds plus symmetry. `value` must be `d.distance(a, b)`;
/// the checker recomputes the reversed order and compares.
///
/// This is deliberately *not* called from inside the distance
/// implementations themselves (that would recurse); the implementations
/// check only their own bounds, and the symmetry contract is enforced at
/// the consumption sites (`properties`, `comsig-eval`) and in proptests.
///
/// # Panics
/// Panics (when [`enabled`]) on an out-of-range or asymmetric distance.
#[inline]
pub fn check_distance(d: &dyn SignatureDistance, a: &Signature, b: &Signature, value: f64) {
    if !enabled() {
        return;
    }
    check_unit_interval(d.name(), value);
    let reversed = d.distance(b, a);
    assert!(
        (value - reversed).abs() <= SYMMETRY_TOLERANCE,
        "contract violation (Definition 2): {} is asymmetric ({value} vs {reversed})",
        d.name()
    );
}

/// The index/brute equivalence contract: a distance produced by the
/// inverted-index matcher (`comsig-eval`'s `PostingsIndex`) must be
/// **bit-identical** to the brute-force per-pair evaluation — both paths
/// run the same `BatchDistance::accumulate`/`finish` arithmetic over the
/// shared members in the same (ascending node id) order, so any
/// divergence is a bug, not float noise.
///
/// # Panics
/// Panics (when [`enabled`]) if `got` differs from `d.distance(a, b)` in
/// even one bit.
#[inline]
pub fn check_indexed_distance(d: &dyn SignatureDistance, a: &Signature, b: &Signature, got: f64) {
    if !enabled() {
        return;
    }
    let want = d.distance(a, b);
    assert!(
        got.to_bits() == want.to_bits(),
        "contract violation: indexed {} distance {got:e} differs from brute-force {want:e}",
        d.name()
    );
}

/// The streaming-pipeline equivalence contract: after an incremental
/// [`SignaturePipeline`](crate::pipeline::SignaturePipeline) advance, the
/// maintained signature set must be **bit-identical** to a cold
/// `signature_set` rebuild over the same subjects on the new graph. The
/// dirty-subject recompute runs the same per-subject arithmetic the cold
/// batch runs, and clean subjects' inputs are bitwise unchanged, so any
/// divergence is a dirty-set derivation bug, not float noise.
///
/// Costs a full cold rebuild — this is the oracle, only compiled in when
/// [`enabled`].
///
/// # Panics
/// Panics (when [`enabled`]) if any subject's signature differs from the
/// cold rebuild in membership or in even one weight bit.
pub fn check_pipeline_equiv<S: SignatureScheme + ?Sized>(
    scheme: &S,
    g: &CommGraph,
    k: usize,
    got: &SignatureSet,
) {
    if !enabled() {
        return;
    }
    let want = scheme.signature_set(g, got.subjects(), k);
    for ((gv, gs), (wv, ws)) in got.iter().zip(want.iter()) {
        assert!(
            gv == wv,
            "contract violation: pipeline subject order diverged ({gv} vs {wv})"
        );
        assert!(
            gs.len() == ws.len(),
            "contract violation: pipeline signature of {gv} has {} entries, cold rebuild has {}",
            gs.len(),
            ws.len()
        );
        for ((gu, gw), (wu, ww)) in gs.iter().zip(ws.iter()) {
            assert!(
                gu == wu && gw.to_bits() == ww.to_bits(),
                "contract violation: pipeline signature of {gv} diverges from cold rebuild \
                 ({gu}: {gw:e} vs {wu}: {ww:e})"
            );
        }
    }
}

/// A transition row must be stochastic: its probability mass sums to 1
/// within [`TOLERANCE`].
///
/// # Panics
/// Panics (when [`enabled`]) if `mass` strays from 1.
#[inline]
pub fn check_stochastic_row(what: &str, node: NodeId, mass: f64) {
    if !enabled() {
        return;
    }
    assert!(
        (mass - 1.0).abs() <= TOLERANCE,
        "contract violation (Definition 5): {what} row of {node} has mass {mass}, expected 1"
    );
}

/// Checks every directed and undirected transition row of `g` for
/// stochasticity. O(|V| + |E|); intended for tests and debug paths, not
/// per-query use.
///
/// # Panics
/// Panics (when [`enabled`]) on the first non-stochastic row.
pub fn check_transition_rows(g: &CommGraph) {
    if !enabled() {
        return;
    }
    for v in g.nodes() {
        if let Some(row) = g.transition_row(v) {
            check_stochastic_row("directed transition", v, row.map(|(_, p)| p).sum());
        }
        if let Some(row) = g.undirected_transition_row(v) {
            check_stochastic_row("undirected transition", v, row.map(|(_, p)| p).sum());
        }
    }
}

/// An RWR occupancy vector is a pruned probability distribution: every
/// entry finite and non-negative, total mass at most `1 + TOLERANCE`
/// (pruning only ever removes mass, never creates it).
///
/// # Panics
/// Panics (when [`enabled`]) on a negative, non-finite or super-unit
/// occupancy vector.
#[inline]
pub fn check_occupancy(entries: &[(NodeId, f64)]) {
    if !enabled() {
        return;
    }
    let mut total = 0.0;
    for &(u, w) in entries {
        assert!(
            w.is_finite() && w >= 0.0,
            "contract violation (Definition 5): occupancy of {u} is {w}"
        );
        total += w;
    }
    assert!(
        total <= 1.0 + TOLERANCE,
        "contract violation (Definition 5): occupancy mass {total} exceeds 1"
    );
}

/// A degraded subject must be excluded from the healthy signature set —
/// the invariant that keeps downstream property/eval aggregates (which
/// consume only the set) free of corrupted subjects. Called from the
/// [`BatchOutcome`](crate::engine::BatchOutcome) constructor and from
/// `comsig-eval`'s outcome-aware aggregates.
///
/// # Panics
/// Panics (when [`enabled`]) if any degraded subject has a signature in
/// `set`.
#[inline]
pub fn check_degraded_excluded(set: &SignatureSet, degraded: &[(NodeId, DegradeReason)]) {
    if !enabled() {
        return;
    }
    for (v, reason) in degraded {
        assert!(
            set.get(*v).is_none(),
            "contract violation: degraded subject {v} ({reason}) present in healthy signature set"
        );
    }
}

/// An epoch-stamped workspace accumulator must be clean at the start of
/// a batch: no live slots and no slot stamped with the current epoch.
///
/// # Panics
/// Panics (when [`enabled`]) if the accumulator leaks state between
/// epochs.
#[inline]
pub fn check_scatter_clean(scatter: &DenseScatter) {
    if !enabled() {
        return;
    }
    assert!(
        scatter.is_clean(),
        "contract violation: epoch-stamped workspace not clean between batches"
    );
}

// The should_panic tests only make sense when the checkers are compiled
// in; `cargo test --release` without the `contracts` feature turns every
// checker into a no-op.
#[cfg(all(test, any(debug_assertions, feature = "contracts")))]
mod tests {
    use super::*;
    use crate::distance::{all_distances, Jaccard};

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn sig(pairs: &[(usize, f64)]) -> Signature {
        Signature::top_k(
            n(999_999),
            pairs.iter().map(|&(i, w)| (n(i), w)),
            pairs.len().max(1),
        )
    }

    #[test]
    fn well_formed_values_pass() {
        let a = sig(&[(1, 0.5), (2, 0.25)]);
        let b = sig(&[(2, 0.5), (3, 0.5)]);
        check_signature(&a);
        check_signature(&Signature::empty());
        check_unit_interval("d", 0.0);
        check_unit_interval("d", 1.0);
        for d in all_distances() {
            check_distance(d.as_ref(), &a, &b, d.distance(&a, &b));
        }
        check_stochastic_row("row", n(0), 1.0 + 1e-12);
        check_occupancy(&[(n(0), 0.5), (n(1), 0.25)]);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn out_of_range_distance_fires() {
        check_unit_interval("d", 1.5);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn non_finite_distance_fires() {
        check_unit_interval("d", f64::NAN);
    }

    #[test]
    #[should_panic(expected = "asymmetric")]
    fn asymmetry_fires() {
        let a = sig(&[(1, 1.0)]);
        let b = sig(&[(2, 1.0)]);
        // Feed a value that cannot equal distance(b, a) = 1.
        check_distance(&Jaccard, &a, &b, 0.25);
    }

    #[test]
    #[should_panic(expected = "mass")]
    fn non_stochastic_row_fires() {
        check_stochastic_row("row", n(0), 0.8);
    }

    #[test]
    #[should_panic(expected = "exceeds 1")]
    fn super_unit_occupancy_fires() {
        check_occupancy(&[(n(0), 0.9), (n(1), 0.2)]);
    }

    #[test]
    #[should_panic(expected = "occupancy of")]
    fn negative_occupancy_fires() {
        check_occupancy(&[(n(0), -0.1)]);
    }

    #[test]
    fn disjoint_degraded_passes() {
        let set = SignatureSet::new(vec![n(1)], vec![sig(&[(2, 1.0)])]);
        check_degraded_excluded(&set, &[]);
        check_degraded_excluded(&set, &[(n(7), DegradeReason::MassOverflow { mass: 2.0 })]);
    }

    #[test]
    #[should_panic(expected = "degraded subject")]
    fn degraded_subject_in_set_fires() {
        let set = SignatureSet::new(vec![n(1)], vec![sig(&[(2, 1.0)])]);
        check_degraded_excluded(&set, &[(n(1), DegradeReason::MassOverflow { mass: 2.0 })]);
    }

    #[test]
    fn pipeline_equiv_passes_on_cold_set() {
        use crate::scheme::TopTalkers;
        use comsig_graph::GraphBuilder;
        let mut b = GraphBuilder::new();
        b.add_event(n(0), n(1), 2.0);
        b.add_event(n(1), n(2), 1.0);
        let g = b.build(3);
        let subjects = vec![n(0), n(1)];
        let set = TopTalkers.signature_set(&g, &subjects, 5);
        check_pipeline_equiv(&TopTalkers, &g, 5, &set);
    }

    #[test]
    #[should_panic(expected = "diverges from cold rebuild")]
    fn pipeline_divergence_fires() {
        use crate::scheme::TopTalkers;
        use comsig_graph::GraphBuilder;
        let mut b = GraphBuilder::new();
        b.add_event(n(0), n(1), 2.0);
        let g = b.build(2);
        let stale = SignatureSet::new(vec![n(0)], vec![sig(&[(1, 0.5)])]);
        check_pipeline_equiv(&TopTalkers, &g, 5, &stale);
    }

    #[test]
    fn clean_scatter_passes() {
        let mut s = DenseScatter::new();
        s.begin(8);
        check_scatter_clean(&s);
        s.add(n(1), 0.5);
        assert!(!s.is_clean());
        s.begin(8);
        check_scatter_clean(&s);
    }
}
