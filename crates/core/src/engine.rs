//! Batched RWR signature engine: dense scatter workspaces.
//!
//! [`Rwr::occupancy`](crate::scheme::Rwr::occupancy) builds a fresh
//! hash-map-backed [`SparseVec`](crate::sparse::SparseVec) per hop; fine
//! for a single subject, but a full-population `signature_set` runs the
//! power iteration for thousands of subjects over the same graph, and the
//! hashing plus per-hop allocation dominates the runtime.
//!
//! This module replaces the inner loop with the classic *sparse
//! accumulator* (SPA) pattern from sparse matrix multiplication: a dense
//! `values` array indexed by node id, an `epoch` stamp per slot saying
//! whether the value belongs to the current iteration, and a `touched`
//! list of live node ids. Scatter-adds become two array reads and a
//! branch; clearing is O(touched) via an epoch bump rather than O(n).
//! One [`RwrWorkspace`] (two accumulators, flipped each hop) is reused
//! across all subjects handled by a worker thread — see the `map_init`
//! overrides of `signature_set` / `bipartite_signature_set` on
//! [`Rwr`](crate::scheme::Rwr).
//!
//! The arithmetic — transition probabilities, dangling-node resets,
//! per-hop pruning, steady-state convergence — deliberately mirrors the
//! `SparseVec` reference implementation, which stays in place as the
//! single-subject path and as the oracle for the equivalence property
//! tests; results agree within accumulation-order float noise.

use std::fmt;

use comsig_graph::{CommGraph, NodeId};

use crate::scheme::{RwrConfig, WalkDirection};
use crate::signature::SignatureSet;

/// Why one subject of a batch was dropped instead of signed.
///
/// Degradation is *per subject*: one poisoned occupancy vector or one
/// non-convergent iteration must never take the rest of the batch down
/// with it (the system-level analogue of the paper's Definition 2
/// robustness). Carried by [`BatchOutcome`].
#[derive(Debug, Clone, PartialEq)]
pub enum DegradeReason {
    /// The occupancy vector contained a NaN or infinite entry.
    NonFiniteOccupancy {
        /// Node whose occupancy entry was non-finite.
        node: NodeId,
        /// The offending value.
        value: f64,
    },
    /// The occupancy vector contained a negative entry.
    NegativeOccupancy {
        /// Node whose occupancy entry was negative.
        node: NodeId,
        /// The offending value.
        value: f64,
    },
    /// Total occupancy mass exceeded 1 beyond tolerance (pruning can
    /// only remove mass, so this means corrupted arithmetic).
    MassOverflow {
        /// The total mass observed.
        mass: f64,
    },
    /// A steady-state iteration ran out of its iteration budget without
    /// meeting the L1 convergence tolerance (the timeout analogue).
    IterationBudget {
        /// L1 residual after the final iteration.
        residual: f64,
        /// The configured `max_iterations`.
        budget: u32,
    },
    /// A forward-push run exhausted its push budget before draining the
    /// residual below epsilon.
    PushBudget {
        /// The configured maximum number of pushes.
        budget: usize,
    },
}

impl fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradeReason::NonFiniteOccupancy { node, value } => {
                write!(f, "occupancy of node {node} is non-finite ({value})")
            }
            DegradeReason::NegativeOccupancy { node, value } => {
                write!(f, "occupancy of node {node} is negative ({value})")
            }
            DegradeReason::MassOverflow { mass } => {
                write!(f, "occupancy mass {mass} exceeds 1")
            }
            DegradeReason::IterationBudget { residual, budget } => {
                write!(
                    f,
                    "no convergence after {budget} iterations (residual {residual})"
                )
            }
            DegradeReason::PushBudget { budget } => {
                write!(f, "push budget of {budget} pushes exhausted")
            }
        }
    }
}

/// Validates an occupancy vector as a (possibly pruned) probability
/// distribution, returning the degradation reason instead of panicking.
///
/// Unlike [`contract::check_occupancy`](crate::contract::check_occupancy)
/// this runs in **every** build — it is the recovery path, not a debug
/// assertion — and uses the same tolerance, so an occupancy it accepts
/// can never fire the contract checker afterwards.
#[must_use = "an ignored validation failure leaks NaN into every downstream distance"]
pub fn validate_occupancy(entries: &[(NodeId, f64)]) -> Result<(), DegradeReason> {
    let mut total = 0.0;
    for &(node, value) in entries {
        if !value.is_finite() {
            return Err(DegradeReason::NonFiniteOccupancy { node, value });
        }
        if value < 0.0 {
            return Err(DegradeReason::NegativeOccupancy { node, value });
        }
        total += value;
    }
    if total > 1.0 + crate::contract::TOLERANCE {
        return Err(DegradeReason::MassOverflow { mass: total });
    }
    Ok(())
}

/// The result of a fault-isolating batched signature run: the signatures
/// of the healthy subjects plus, for each degraded subject, why it was
/// dropped.
///
/// The constructor enforces (via the contract layer) that no degraded
/// subject leaks into the healthy set, so downstream property/eval
/// aggregates computed from [`BatchOutcome::set`] are automatically
/// restricted to healthy subjects.
#[derive(Debug)]
pub struct BatchOutcome {
    set: SignatureSet,
    degraded: Vec<(NodeId, DegradeReason)>,
}

impl BatchOutcome {
    /// Assembles an outcome, checking the healthy/degraded partition.
    #[must_use]
    pub fn new(set: SignatureSet, degraded: Vec<(NodeId, DegradeReason)>) -> Self {
        crate::contract::check_degraded_excluded(&set, &degraded);
        BatchOutcome { set, degraded }
    }

    /// Signatures of the healthy subjects.
    #[must_use]
    pub fn set(&self) -> &SignatureSet {
        &self.set
    }

    /// Subjects dropped from the batch, with reasons.
    #[must_use]
    pub fn degraded(&self) -> &[(NodeId, DegradeReason)] {
        &self.degraded
    }

    /// Whether every subject produced a signature.
    #[must_use]
    pub fn is_fully_healthy(&self) -> bool {
        self.degraded.is_empty()
    }

    /// Discards the degradation report, keeping the healthy signatures.
    #[must_use]
    pub fn into_set(self) -> SignatureSet {
        self.set
    }
}

/// Outcome of one power iteration run (see [`RwrWorkspace::iterate`]).
struct IterationStatus {
    /// Whether the steady-state tolerance was met (always `true` for
    /// hop-truncated walks, which have no convergence requirement).
    converged: bool,
    /// Last observed L1 residual (meaningful only for steady-state runs).
    residual: f64,
}

/// A dense sparse-accumulator: O(1) scatter-add, O(touched) iteration
/// and clearing.
///
/// A slot's value is meaningful only while its stamp equals the current
/// epoch; [`DenseScatter::begin`] invalidates every slot at once by
/// bumping the epoch.
#[derive(Debug, Default)]
pub struct DenseScatter {
    values: Vec<f64>,
    stamp: Vec<u32>,
    touched: Vec<NodeId>,
    epoch: u32,
}

impl DenseScatter {
    /// An empty accumulator; slots are allocated by the first
    /// [`begin`](DenseScatter::begin).
    #[must_use]
    pub fn new() -> Self {
        DenseScatter::default()
    }

    /// Starts a new accumulation over node ids `0..n`, logically
    /// clearing all slots in O(1) (amortised; grows storage on first use
    /// with a larger `n`).
    pub fn begin(&mut self, n: usize) {
        if self.values.len() < n {
            self.values.resize(n, 0.0);
            self.stamp.resize(n, 0);
        }
        self.touched.clear();
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrapped: stale stamps could collide, so pay one O(n)
            // reset every 2^32 generations.
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Adds `delta` to slot `u`, registering it as touched on first use
    /// this epoch.
    #[inline]
    pub fn add(&mut self, u: NodeId, delta: f64) {
        let i = u.index();
        if self.stamp[i] == self.epoch {
            self.values[i] += delta;
        } else {
            self.stamp[i] = self.epoch;
            self.values[i] = delta;
            self.touched.push(u);
        }
    }

    /// The value of slot `u` this epoch (0 if untouched).
    #[inline]
    #[must_use]
    pub fn get(&self, u: NodeId) -> f64 {
        let i = u.index();
        if self.stamp[i] == self.epoch {
            self.values[i]
        } else {
            0.0
        }
    }

    /// Whether slot `u` is live this epoch: touched by
    /// [`add`](DenseScatter::add) and not dropped by
    /// [`prune`](DenseScatter::prune). Unlike a `get(u) == 0.0` probe,
    /// this distinguishes a slot holding an exact zero from an absent one.
    #[inline]
    #[must_use]
    pub fn is_live(&self, u: NodeId) -> bool {
        self.stamp[u.index()] == self.epoch
    }

    /// Number of live (touched, unpruned) slots.
    #[must_use]
    pub fn live(&self) -> usize {
        self.touched.len()
    }

    /// Whether the accumulator carries no state for the current epoch —
    /// the contract every batch must re-establish via
    /// [`begin`](DenseScatter::begin). O(capacity); intended for the
    /// debug-gated contract layer, not hot paths.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.touched.is_empty() && self.stamp.iter().all(|&s| s != self.epoch)
    }

    /// Sum of absolute values over live slots.
    #[must_use]
    pub fn l1_norm(&self) -> f64 {
        self.touched
            .iter()
            .map(|&u| self.values[u.index()].abs())
            .sum()
    }

    /// Drops live slots whose absolute value is at most `threshold`
    /// (same retention rule as `SparseVec::prune`). Dropped slots read
    /// as 0 again.
    pub fn prune(&mut self, threshold: f64) {
        let values = &mut self.values;
        let stamp = &mut self.stamp;
        let epoch = self.epoch;
        self.touched.retain(|&u| {
            let i = u.index();
            if values[i].abs() > threshold {
                true
            } else {
                // Retract the stamp so the slot reads as absent; a later
                // add() this epoch then re-registers it in `touched`
                // instead of accumulating into an untracked slot.
                stamp[i] = epoch.wrapping_sub(1);
                values[i] = 0.0;
                false
            }
        });
    }

    /// Iterates `(node, value)` over live slots in touch order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.touched.iter().map(|&u| (u, self.values[u.index()]))
    }

    /// L1 distance to another accumulator (the steady-state convergence
    /// test). Costs O(touched(self) + touched(other)).
    #[must_use]
    pub fn l1_distance(&self, other: &DenseScatter) -> f64 {
        let mut d = 0.0;
        for (u, v) in self.iter() {
            d += (v - other.get(u)).abs();
        }
        for (u, v) in other.iter() {
            if !self.is_live(u) {
                d += v.abs();
            }
        }
        d
    }

    /// Extracts the live entries sorted by node id.
    #[must_use]
    pub fn sorted_entries(&self) -> Vec<(NodeId, f64)> {
        let mut v: Vec<(NodeId, f64)> = self.iter().collect();
        v.sort_unstable_by_key(|&(u, _)| u);
        v
    }
}

/// Reusable per-worker state for batched RWR power iterations: two
/// [`DenseScatter`] accumulators flipped between the current and next
/// occupancy vector each hop.
#[derive(Debug, Default)]
pub struct RwrWorkspace {
    cur: DenseScatter,
    nxt: DenseScatter,
}

impl RwrWorkspace {
    /// An empty workspace; storage is sized on first use.
    #[must_use]
    pub fn new() -> Self {
        RwrWorkspace::default()
    }

    /// Runs the RWR power iteration for one subject, reusing this
    /// workspace's storage, and returns the occupancy vector sorted by
    /// node id — the same vector (up to accumulation-order float noise)
    /// as `Rwr::occupancy(g, start).into_sorted_entries()`.
    pub fn occupancy(
        &mut self,
        config: &RwrConfig,
        g: &CommGraph,
        start: NodeId,
    ) -> Vec<(NodeId, f64)> {
        let _ = self.iterate(config, g, start);
        let entries = self.cur.sorted_entries();
        crate::contract::check_occupancy(&entries);
        entries
    }

    /// Fault-isolating variant of [`occupancy`](RwrWorkspace::occupancy):
    /// instead of handing a corrupt or non-convergent vector downstream
    /// (where the contract layer would panic), reports it as a
    /// [`DegradeReason`] so the caller can mark the subject degraded and
    /// continue the batch. On a healthy subject the returned entries are
    /// bit-identical to `occupancy`'s — both run the same iteration.
    pub fn try_occupancy(
        &mut self,
        config: &RwrConfig,
        g: &CommGraph,
        start: NodeId,
    ) -> Result<Vec<(NodeId, f64)>, DegradeReason> {
        let status = self.iterate(config, g, start);
        let entries = self.cur.sorted_entries();
        validate_occupancy(&entries)?;
        if !status.converged {
            return Err(DegradeReason::IterationBudget {
                residual: status.residual,
                budget: config.max_iterations,
            });
        }
        crate::contract::check_occupancy(&entries);
        Ok(entries)
    }

    /// The shared power iteration: leaves the final occupancy vector in
    /// `self.cur` and reports convergence. Extracted so the strict
    /// ([`occupancy`](RwrWorkspace::occupancy)) and degrading
    /// ([`try_occupancy`](RwrWorkspace::try_occupancy)) paths run
    /// identical arithmetic.
    fn iterate(&mut self, config: &RwrConfig, g: &CommGraph, start: NodeId) -> IterationStatus {
        let c = config.restart;
        let n = g.num_nodes();
        self.cur.begin(n);
        // Epoch discipline: begin() must leave no state from the
        // previous subject handled by this worker.
        crate::contract::check_scatter_clean(&self.cur);
        self.cur.add(start, 1.0);
        let iterations = match config.hops {
            Some(h) => h,
            None => config.max_iterations,
        };
        // Hop-truncated walks have no convergence requirement.
        let mut status = IterationStatus {
            converged: config.hops.is_some(),
            residual: f64::INFINITY,
        };
        for _ in 0..iterations {
            self.nxt.begin(n);
            let mut reset_mass = c * self.cur.l1_norm();
            // Split borrows: read `cur`, scatter into `nxt`.
            let nxt = &mut self.nxt;
            for (v, mass) in self.cur.iter() {
                let step = (1.0 - c) * mass;
                if step <= 0.0 {
                    continue;
                }
                let dangling = match config.direction {
                    WalkDirection::Directed => {
                        let sum = g.out_weight_sum(v);
                        if sum > 0.0 {
                            for (u, w) in g.out_neighbors(v) {
                                nxt.add(u, step * w / sum);
                            }
                            false
                        } else {
                            true
                        }
                    }
                    WalkDirection::Undirected => {
                        if let Some(row) = g.undirected_transition_row(v) {
                            for (u, p) in row {
                                nxt.add(u, step * p);
                            }
                            false
                        } else {
                            true
                        }
                    }
                };
                if dangling {
                    // Dangling node: the walker resets.
                    reset_mass += step;
                }
            }
            self.nxt.add(start, reset_mass);
            self.nxt.prune(config.prune_threshold);
            let mut converged = false;
            if config.hops.is_none() {
                status.residual = self.cur.l1_distance(&self.nxt);
                converged = status.residual < config.tolerance;
            }
            std::mem::swap(&mut self.cur, &mut self.nxt);
            if converged {
                status.converged = true;
                break;
            }
        }
        status
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Rwr;
    use comsig_graph::GraphBuilder;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn diamond() -> CommGraph {
        let mut b = GraphBuilder::new();
        b.add_event(n(0), n(1), 3.0);
        b.add_event(n(0), n(2), 1.0);
        b.add_event(n(1), n(3), 1.0);
        b.add_event(n(2), n(3), 1.0);
        b.build(4)
    }

    #[test]
    fn scatter_basic_ops() {
        let mut s = DenseScatter::new();
        s.begin(5);
        s.add(n(3), 0.5);
        s.add(n(1), 0.25);
        s.add(n(3), 0.5);
        assert_eq!(s.get(n(3)), 1.0);
        assert_eq!(s.get(n(0)), 0.0);
        assert_eq!(s.live(), 2);
        assert!((s.l1_norm() - 1.25).abs() < 1e-15);
        assert_eq!(s.sorted_entries(), vec![(n(1), 0.25), (n(3), 1.0)]);

        // A new epoch clears everything without touching storage.
        s.begin(5);
        assert_eq!(s.get(n(3)), 0.0);
        assert_eq!(s.live(), 0);
    }

    #[test]
    fn scatter_prune_drops_small_entries() {
        let mut s = DenseScatter::new();
        s.begin(4);
        s.add(n(0), 1.0);
        s.add(n(1), 1e-15);
        s.add(n(2), -2.0);
        s.prune(1e-12);
        assert_eq!(s.live(), 2);
        assert_eq!(s.get(n(1)), 0.0);
        assert!((s.l1_norm() - 3.0).abs() < 1e-15);
    }

    #[test]
    fn scatter_l1_distance_matches_manual() {
        let mut a = DenseScatter::new();
        a.begin(4);
        a.add(n(0), 1.0);
        a.add(n(1), 0.5);
        let mut b = DenseScatter::new();
        b.begin(4);
        b.add(n(1), 0.25);
        b.add(n(2), 0.25);
        assert!((a.l1_distance(&b) - 1.5).abs() < 1e-12);
        assert!((b.l1_distance(&a) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn workspace_matches_reference_truncated() {
        let g = diamond();
        let rwr = Rwr::truncated(0.1, 3);
        let mut ws = RwrWorkspace::new();
        for v in g.nodes() {
            let reference = rwr.occupancy(&g, v).into_sorted_entries();
            let batched = ws.occupancy(&rwr.config, &g, v);
            assert_eq!(reference.len(), batched.len(), "subject {v}");
            for (&(ru, rw), &(bu, bw)) in reference.iter().zip(batched.iter()) {
                assert_eq!(ru, bu);
                assert!((rw - bw).abs() < 1e-12, "subject {v} node {ru}");
            }
        }
    }

    #[test]
    fn workspace_matches_reference_full_and_undirected() {
        let g = diamond();
        let mut ws = RwrWorkspace::new();
        for rwr in [Rwr::full(0.15), Rwr::truncated(0.1, 5).undirected()] {
            for v in g.nodes() {
                let reference = rwr.occupancy(&g, v).into_sorted_entries();
                let batched = ws.occupancy(&rwr.config, &g, v);
                assert_eq!(reference.len(), batched.len());
                for (&(ru, rw), &(bu, bw)) in reference.iter().zip(batched.iter()) {
                    assert_eq!(ru, bu);
                    assert!((rw - bw).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn validate_occupancy_classifies_faults() {
        assert!(validate_occupancy(&[(n(0), 0.5), (n(1), 0.25)]).is_ok());
        assert!(validate_occupancy(&[]).is_ok());
        assert!(matches!(
            validate_occupancy(&[(n(0), f64::NAN)]),
            Err(DegradeReason::NonFiniteOccupancy { .. })
        ));
        assert!(matches!(
            validate_occupancy(&[(n(0), f64::INFINITY)]),
            Err(DegradeReason::NonFiniteOccupancy { .. })
        ));
        assert!(matches!(
            validate_occupancy(&[(n(0), -0.1)]),
            Err(DegradeReason::NegativeOccupancy { .. })
        ));
        assert!(matches!(
            validate_occupancy(&[(n(0), 0.9), (n(1), 0.2)]),
            Err(DegradeReason::MassOverflow { .. })
        ));
    }

    #[test]
    fn degrade_reason_displays() {
        let reasons = [
            DegradeReason::NonFiniteOccupancy {
                node: n(1),
                value: f64::NAN,
            },
            DegradeReason::NegativeOccupancy {
                node: n(2),
                value: -0.5,
            },
            DegradeReason::MassOverflow { mass: 1.5 },
            DegradeReason::IterationBudget {
                residual: 0.2,
                budget: 10,
            },
            DegradeReason::PushBudget { budget: 3 },
        ];
        for r in reasons {
            assert!(!r.to_string().is_empty());
        }
    }

    #[test]
    fn try_occupancy_is_bit_identical_to_occupancy_when_healthy() {
        let g = diamond();
        let mut ws = RwrWorkspace::new();
        for rwr in [Rwr::truncated(0.1, 3), Rwr::full(0.15)] {
            for v in g.nodes() {
                let strict = ws.occupancy(&rwr.config, &g, v);
                let degrading = ws.try_occupancy(&rwr.config, &g, v).unwrap();
                assert_eq!(strict.len(), degrading.len());
                for (&(su, sw), &(du, dw)) in strict.iter().zip(degrading.iter()) {
                    assert_eq!(su, du);
                    assert_eq!(sw.to_bits(), dw.to_bits(), "subject {v} node {su}");
                }
            }
        }
    }

    #[test]
    fn try_occupancy_reports_iteration_budget() {
        let g = diamond();
        let mut rwr = Rwr::full(0.05);
        rwr.config.max_iterations = 1;
        rwr.config.tolerance = 1e-15;
        let mut ws = RwrWorkspace::new();
        // Node 0 cannot converge in one iteration...
        let err = ws.try_occupancy(&rwr.config, &g, n(0)).unwrap_err();
        match err {
            DegradeReason::IterationBudget { residual, budget } => {
                assert_eq!(budget, 1);
                assert!(residual > 1e-15);
            }
            other => panic!("expected IterationBudget, got {other}"),
        }
        // ...but the dangling node 3 reaches its fixed point immediately.
        assert!(ws.try_occupancy(&rwr.config, &g, n(3)).is_ok());
    }

    #[test]
    fn batch_outcome_partitions_subjects() {
        use crate::signature::Signature;
        let sig = Signature::top_k(n(0), [(n(1), 0.5)], 4);
        let outcome = BatchOutcome::new(
            SignatureSet::new(vec![n(0)], vec![sig]),
            vec![(n(1), DegradeReason::MassOverflow { mass: 2.0 })],
        );
        assert_eq!(outcome.set().len(), 1);
        assert_eq!(outcome.degraded().len(), 1);
        assert!(!outcome.is_fully_healthy());
        assert_eq!(outcome.into_set().len(), 1);
    }

    #[test]
    fn workspace_reuse_across_graph_sizes() {
        // Reusing one workspace across graphs of different sizes (and
        // after many epochs) must not leak state between runs.
        let mut ws = RwrWorkspace::new();
        let small = diamond();
        let mut b = GraphBuilder::new();
        for i in 0..50 {
            b.add_event(n(i), n((i + 1) % 50), 1.0 + i as f64);
        }
        let big = b.build(60);
        let rwr = Rwr::truncated(0.2, 4);
        for _ in 0..3 {
            for (g, nn) in [(&small, 4), (&big, 60)] {
                for i in 0..nn {
                    let reference = rwr.occupancy(g, n(i)).into_sorted_entries();
                    let batched = ws.occupancy(&rwr.config, g, n(i));
                    assert_eq!(reference.len(), batched.len());
                    for (&(_, rw), &(_, bw)) in reference.iter().zip(batched.iter()) {
                        assert!((rw - bw).abs() < 1e-12);
                    }
                }
            }
        }
    }
}
