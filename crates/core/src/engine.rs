//! Batched RWR signature engine: dense scatter workspaces.
//!
//! [`Rwr::occupancy`](crate::scheme::Rwr::occupancy) builds a fresh
//! hash-map-backed [`SparseVec`](crate::sparse::SparseVec) per hop; fine
//! for a single subject, but a full-population `signature_set` runs the
//! power iteration for thousands of subjects over the same graph, and the
//! hashing plus per-hop allocation dominates the runtime.
//!
//! This module replaces the inner loop with the classic *sparse
//! accumulator* (SPA) pattern from sparse matrix multiplication: a dense
//! `values` array indexed by node id, an `epoch` stamp per slot saying
//! whether the value belongs to the current iteration, and a `touched`
//! list of live node ids. Scatter-adds become two array reads and a
//! branch; clearing is O(touched) via an epoch bump rather than O(n).
//! One [`RwrWorkspace`] (two accumulators, flipped each hop) is reused
//! across all subjects handled by a worker thread — see the `map_init`
//! overrides of `signature_set` / `bipartite_signature_set` on
//! [`Rwr`](crate::scheme::Rwr).
//!
//! The arithmetic — transition probabilities, dangling-node resets,
//! per-hop pruning, steady-state convergence — deliberately mirrors the
//! `SparseVec` reference implementation, which stays in place as the
//! single-subject path and as the oracle for the equivalence property
//! tests; results agree within accumulation-order float noise.

use comsig_graph::{CommGraph, NodeId};

use crate::scheme::{RwrConfig, WalkDirection};

/// A dense sparse-accumulator: O(1) scatter-add, O(touched) iteration
/// and clearing.
///
/// A slot's value is meaningful only while its stamp equals the current
/// epoch; [`DenseScatter::begin`] invalidates every slot at once by
/// bumping the epoch.
#[derive(Debug, Default)]
pub struct DenseScatter {
    values: Vec<f64>,
    stamp: Vec<u32>,
    touched: Vec<NodeId>,
    epoch: u32,
}

impl DenseScatter {
    /// An empty accumulator; slots are allocated by the first
    /// [`begin`](DenseScatter::begin).
    #[must_use]
    pub fn new() -> Self {
        DenseScatter::default()
    }

    /// Starts a new accumulation over node ids `0..n`, logically
    /// clearing all slots in O(1) (amortised; grows storage on first use
    /// with a larger `n`).
    pub fn begin(&mut self, n: usize) {
        if self.values.len() < n {
            self.values.resize(n, 0.0);
            self.stamp.resize(n, 0);
        }
        self.touched.clear();
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrapped: stale stamps could collide, so pay one O(n)
            // reset every 2^32 generations.
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Adds `delta` to slot `u`, registering it as touched on first use
    /// this epoch.
    #[inline]
    pub fn add(&mut self, u: NodeId, delta: f64) {
        let i = u.index();
        if self.stamp[i] == self.epoch {
            self.values[i] += delta;
        } else {
            self.stamp[i] = self.epoch;
            self.values[i] = delta;
            self.touched.push(u);
        }
    }

    /// The value of slot `u` this epoch (0 if untouched).
    #[inline]
    #[must_use]
    pub fn get(&self, u: NodeId) -> f64 {
        let i = u.index();
        if self.stamp[i] == self.epoch {
            self.values[i]
        } else {
            0.0
        }
    }

    /// Whether slot `u` is live this epoch: touched by
    /// [`add`](DenseScatter::add) and not dropped by
    /// [`prune`](DenseScatter::prune). Unlike a `get(u) == 0.0` probe,
    /// this distinguishes a slot holding an exact zero from an absent one.
    #[inline]
    #[must_use]
    pub fn is_live(&self, u: NodeId) -> bool {
        self.stamp[u.index()] == self.epoch
    }

    /// Number of live (touched, unpruned) slots.
    #[must_use]
    pub fn live(&self) -> usize {
        self.touched.len()
    }

    /// Whether the accumulator carries no state for the current epoch —
    /// the contract every batch must re-establish via
    /// [`begin`](DenseScatter::begin). O(capacity); intended for the
    /// debug-gated contract layer, not hot paths.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.touched.is_empty() && self.stamp.iter().all(|&s| s != self.epoch)
    }

    /// Sum of absolute values over live slots.
    #[must_use]
    pub fn l1_norm(&self) -> f64 {
        self.touched
            .iter()
            .map(|&u| self.values[u.index()].abs())
            .sum()
    }

    /// Drops live slots whose absolute value is at most `threshold`
    /// (same retention rule as `SparseVec::prune`). Dropped slots read
    /// as 0 again.
    pub fn prune(&mut self, threshold: f64) {
        let values = &mut self.values;
        let stamp = &mut self.stamp;
        let epoch = self.epoch;
        self.touched.retain(|&u| {
            let i = u.index();
            if values[i].abs() > threshold {
                true
            } else {
                // Retract the stamp so the slot reads as absent; a later
                // add() this epoch then re-registers it in `touched`
                // instead of accumulating into an untracked slot.
                stamp[i] = epoch.wrapping_sub(1);
                values[i] = 0.0;
                false
            }
        });
    }

    /// Iterates `(node, value)` over live slots in touch order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.touched.iter().map(|&u| (u, self.values[u.index()]))
    }

    /// L1 distance to another accumulator (the steady-state convergence
    /// test). Costs O(touched(self) + touched(other)).
    #[must_use]
    pub fn l1_distance(&self, other: &DenseScatter) -> f64 {
        let mut d = 0.0;
        for (u, v) in self.iter() {
            d += (v - other.get(u)).abs();
        }
        for (u, v) in other.iter() {
            if !self.is_live(u) {
                d += v.abs();
            }
        }
        d
    }

    /// Extracts the live entries sorted by node id.
    #[must_use]
    pub fn sorted_entries(&self) -> Vec<(NodeId, f64)> {
        let mut v: Vec<(NodeId, f64)> = self.iter().collect();
        v.sort_unstable_by_key(|&(u, _)| u);
        v
    }
}

/// Reusable per-worker state for batched RWR power iterations: two
/// [`DenseScatter`] accumulators flipped between the current and next
/// occupancy vector each hop.
#[derive(Debug, Default)]
pub struct RwrWorkspace {
    cur: DenseScatter,
    nxt: DenseScatter,
}

impl RwrWorkspace {
    /// An empty workspace; storage is sized on first use.
    #[must_use]
    pub fn new() -> Self {
        RwrWorkspace::default()
    }

    /// Runs the RWR power iteration for one subject, reusing this
    /// workspace's storage, and returns the occupancy vector sorted by
    /// node id — the same vector (up to accumulation-order float noise)
    /// as `Rwr::occupancy(g, start).into_sorted_entries()`.
    pub fn occupancy(
        &mut self,
        config: &RwrConfig,
        g: &CommGraph,
        start: NodeId,
    ) -> Vec<(NodeId, f64)> {
        let c = config.restart;
        let n = g.num_nodes();
        self.cur.begin(n);
        // Epoch discipline: begin() must leave no state from the
        // previous subject handled by this worker.
        crate::contract::check_scatter_clean(&self.cur);
        self.cur.add(start, 1.0);
        let iterations = match config.hops {
            Some(h) => h,
            None => config.max_iterations,
        };
        for _ in 0..iterations {
            self.nxt.begin(n);
            let mut reset_mass = c * self.cur.l1_norm();
            // Split borrows: read `cur`, scatter into `nxt`.
            let nxt = &mut self.nxt;
            for (v, mass) in self.cur.iter() {
                let step = (1.0 - c) * mass;
                if step <= 0.0 {
                    continue;
                }
                let dangling = match config.direction {
                    WalkDirection::Directed => {
                        let sum = g.out_weight_sum(v);
                        if sum > 0.0 {
                            for (u, w) in g.out_neighbors(v) {
                                nxt.add(u, step * w / sum);
                            }
                            false
                        } else {
                            true
                        }
                    }
                    WalkDirection::Undirected => {
                        if let Some(row) = g.undirected_transition_row(v) {
                            for (u, p) in row {
                                nxt.add(u, step * p);
                            }
                            false
                        } else {
                            true
                        }
                    }
                };
                if dangling {
                    // Dangling node: the walker resets.
                    reset_mass += step;
                }
            }
            self.nxt.add(start, reset_mass);
            self.nxt.prune(config.prune_threshold);
            let converged =
                config.hops.is_none() && self.cur.l1_distance(&self.nxt) < config.tolerance;
            std::mem::swap(&mut self.cur, &mut self.nxt);
            if converged {
                break;
            }
        }
        let entries = self.cur.sorted_entries();
        crate::contract::check_occupancy(&entries);
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Rwr;
    use comsig_graph::GraphBuilder;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn diamond() -> CommGraph {
        let mut b = GraphBuilder::new();
        b.add_event(n(0), n(1), 3.0);
        b.add_event(n(0), n(2), 1.0);
        b.add_event(n(1), n(3), 1.0);
        b.add_event(n(2), n(3), 1.0);
        b.build(4)
    }

    #[test]
    fn scatter_basic_ops() {
        let mut s = DenseScatter::new();
        s.begin(5);
        s.add(n(3), 0.5);
        s.add(n(1), 0.25);
        s.add(n(3), 0.5);
        assert_eq!(s.get(n(3)), 1.0);
        assert_eq!(s.get(n(0)), 0.0);
        assert_eq!(s.live(), 2);
        assert!((s.l1_norm() - 1.25).abs() < 1e-15);
        assert_eq!(s.sorted_entries(), vec![(n(1), 0.25), (n(3), 1.0)]);

        // A new epoch clears everything without touching storage.
        s.begin(5);
        assert_eq!(s.get(n(3)), 0.0);
        assert_eq!(s.live(), 0);
    }

    #[test]
    fn scatter_prune_drops_small_entries() {
        let mut s = DenseScatter::new();
        s.begin(4);
        s.add(n(0), 1.0);
        s.add(n(1), 1e-15);
        s.add(n(2), -2.0);
        s.prune(1e-12);
        assert_eq!(s.live(), 2);
        assert_eq!(s.get(n(1)), 0.0);
        assert!((s.l1_norm() - 3.0).abs() < 1e-15);
    }

    #[test]
    fn scatter_l1_distance_matches_manual() {
        let mut a = DenseScatter::new();
        a.begin(4);
        a.add(n(0), 1.0);
        a.add(n(1), 0.5);
        let mut b = DenseScatter::new();
        b.begin(4);
        b.add(n(1), 0.25);
        b.add(n(2), 0.25);
        assert!((a.l1_distance(&b) - 1.5).abs() < 1e-12);
        assert!((b.l1_distance(&a) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn workspace_matches_reference_truncated() {
        let g = diamond();
        let rwr = Rwr::truncated(0.1, 3);
        let mut ws = RwrWorkspace::new();
        for v in g.nodes() {
            let reference = rwr.occupancy(&g, v).into_sorted_entries();
            let batched = ws.occupancy(&rwr.config, &g, v);
            assert_eq!(reference.len(), batched.len(), "subject {v}");
            for (&(ru, rw), &(bu, bw)) in reference.iter().zip(batched.iter()) {
                assert_eq!(ru, bu);
                assert!((rw - bw).abs() < 1e-12, "subject {v} node {ru}");
            }
        }
    }

    #[test]
    fn workspace_matches_reference_full_and_undirected() {
        let g = diamond();
        let mut ws = RwrWorkspace::new();
        for rwr in [Rwr::full(0.15), Rwr::truncated(0.1, 5).undirected()] {
            for v in g.nodes() {
                let reference = rwr.occupancy(&g, v).into_sorted_entries();
                let batched = ws.occupancy(&rwr.config, &g, v);
                assert_eq!(reference.len(), batched.len());
                for (&(ru, rw), &(bu, bw)) in reference.iter().zip(batched.iter()) {
                    assert_eq!(ru, bu);
                    assert!((rw - bw).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn workspace_reuse_across_graph_sizes() {
        // Reusing one workspace across graphs of different sizes (and
        // after many epochs) must not leak state between runs.
        let mut ws = RwrWorkspace::new();
        let small = diamond();
        let mut b = GraphBuilder::new();
        for i in 0..50 {
            b.add_event(n(i), n((i + 1) % 50), 1.0 + i as f64);
        }
        let big = b.build(60);
        let rwr = Rwr::truncated(0.2, 4);
        for _ in 0..3 {
            for (g, nn) in [(&small, 4), (&big, 60)] {
                for i in 0..nn {
                    let reference = rwr.occupancy(g, n(i)).into_sorted_entries();
                    let batched = ws.occupancy(&rwr.config, g, n(i));
                    assert_eq!(reference.len(), batched.len());
                    for (&(_, rw), &(_, bw)) in reference.iter().zip(batched.iter()) {
                        assert!((rw - bw).abs() < 1e-12);
                    }
                }
            }
        }
    }
}
