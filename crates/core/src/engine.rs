//! Batched RWR signature engine: dense scatter workspaces.
//!
//! [`Rwr::occupancy`](crate::scheme::Rwr::occupancy) builds a fresh
//! hash-map-backed [`SparseVec`](crate::sparse::SparseVec) per hop; fine
//! for a single subject, but a full-population `signature_set` runs the
//! power iteration for thousands of subjects over the same graph, and the
//! hashing plus per-hop allocation dominates the runtime.
//!
//! This module replaces the inner loop with the classic *sparse
//! accumulator* (SPA) pattern from sparse matrix multiplication: a dense
//! `values` array indexed by node id, an `epoch` stamp per slot saying
//! whether the value belongs to the current iteration, and a `touched`
//! list of live node ids. Scatter-adds become two array reads and a
//! branch; clearing is O(touched) via an epoch bump rather than O(n).
//! One [`RwrWorkspace`] (two accumulators, flipped each hop) is reused
//! across all subjects handled by a worker thread — see the `map_init`
//! overrides of `signature_set` / `bipartite_signature_set` on
//! [`Rwr`](crate::scheme::Rwr).
//!
//! The arithmetic — transition probabilities, dangling-node resets,
//! per-hop pruning, steady-state convergence — deliberately mirrors the
//! `SparseVec` reference implementation, which stays in place as the
//! single-subject path and as the oracle for the equivalence property
//! tests; results agree within accumulation-order float noise.

use std::fmt;

use comsig_graph::{CommGraph, NodeId};

use crate::scheme::{RwrConfig, WalkDirection};
use crate::signature::SignatureSet;

/// Why one subject of a batch was dropped instead of signed.
///
/// Degradation is *per subject*: one poisoned occupancy vector or one
/// non-convergent iteration must never take the rest of the batch down
/// with it (the system-level analogue of the paper's Definition 2
/// robustness). Carried by [`BatchOutcome`].
#[derive(Debug, Clone, PartialEq)]
pub enum DegradeReason {
    /// The occupancy vector contained a NaN or infinite entry.
    NonFiniteOccupancy {
        /// Node whose occupancy entry was non-finite.
        node: NodeId,
        /// The offending value.
        value: f64,
    },
    /// The occupancy vector contained a negative entry.
    NegativeOccupancy {
        /// Node whose occupancy entry was negative.
        node: NodeId,
        /// The offending value.
        value: f64,
    },
    /// Total occupancy mass exceeded 1 beyond tolerance (pruning can
    /// only remove mass, so this means corrupted arithmetic).
    MassOverflow {
        /// The total mass observed.
        mass: f64,
    },
    /// A steady-state iteration ran out of its iteration budget without
    /// meeting the L1 convergence tolerance (the timeout analogue).
    IterationBudget {
        /// L1 residual after the final iteration.
        residual: f64,
        /// The configured `max_iterations`.
        budget: u32,
    },
    /// A forward-push run exhausted its push budget before draining the
    /// residual below epsilon.
    PushBudget {
        /// The configured maximum number of pushes.
        budget: usize,
    },
    /// An event referenced a node outside the declared node space (the
    /// sketch tier's analogue of [`GraphError::NodeOutOfRange`]: the
    /// exact path rejects the whole delta, the sketch tier degrades only
    /// the subject whose stream carried the phantom).
    ///
    /// [`GraphError::NodeOutOfRange`]: comsig_graph::GraphError::NodeOutOfRange
    PhantomNode {
        /// The out-of-range node index.
        node: NodeId,
        /// The declared number of nodes.
        space: usize,
    },
}

impl fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradeReason::NonFiniteOccupancy { node, value } => {
                write!(f, "occupancy of node {node} is non-finite ({value})")
            }
            DegradeReason::NegativeOccupancy { node, value } => {
                write!(f, "occupancy of node {node} is negative ({value})")
            }
            DegradeReason::MassOverflow { mass } => {
                write!(f, "occupancy mass {mass} exceeds 1")
            }
            DegradeReason::IterationBudget { residual, budget } => {
                write!(
                    f,
                    "no convergence after {budget} iterations (residual {residual})"
                )
            }
            DegradeReason::PushBudget { budget } => {
                write!(f, "push budget of {budget} pushes exhausted")
            }
            DegradeReason::PhantomNode { node, space } => {
                write!(f, "node {node} outside the declared space of {space} nodes")
            }
        }
    }
}

/// Validates an occupancy vector as a (possibly pruned) probability
/// distribution, returning the degradation reason instead of panicking.
///
/// Unlike [`contract::check_occupancy`](crate::contract::check_occupancy)
/// this runs in **every** build — it is the recovery path, not a debug
/// assertion — and uses the same tolerance, so an occupancy it accepts
/// can never fire the contract checker afterwards.
#[must_use = "an ignored validation failure leaks NaN into every downstream distance"]
pub fn validate_occupancy(entries: &[(NodeId, f64)]) -> Result<(), DegradeReason> {
    let mut total = 0.0;
    for &(node, value) in entries {
        if !value.is_finite() {
            return Err(DegradeReason::NonFiniteOccupancy { node, value });
        }
        if value < 0.0 {
            return Err(DegradeReason::NegativeOccupancy { node, value });
        }
        total += value;
    }
    if total > 1.0 + crate::contract::TOLERANCE {
        return Err(DegradeReason::MassOverflow { mass: total });
    }
    Ok(())
}

/// The result of a fault-isolating batched signature run: the signatures
/// of the healthy subjects plus, for each degraded subject, why it was
/// dropped.
///
/// The constructor enforces (via the contract layer) that no degraded
/// subject leaks into the healthy set, so downstream property/eval
/// aggregates computed from [`BatchOutcome::set`] are automatically
/// restricted to healthy subjects.
#[derive(Debug)]
pub struct BatchOutcome {
    set: SignatureSet,
    degraded: Vec<(NodeId, DegradeReason)>,
}

impl BatchOutcome {
    /// Assembles an outcome, checking the healthy/degraded partition.
    #[must_use]
    pub fn new(set: SignatureSet, degraded: Vec<(NodeId, DegradeReason)>) -> Self {
        crate::contract::check_degraded_excluded(&set, &degraded);
        BatchOutcome { set, degraded }
    }

    /// Signatures of the healthy subjects.
    #[must_use]
    pub fn set(&self) -> &SignatureSet {
        &self.set
    }

    /// Subjects dropped from the batch, with reasons.
    #[must_use]
    pub fn degraded(&self) -> &[(NodeId, DegradeReason)] {
        &self.degraded
    }

    /// Whether every subject produced a signature.
    #[must_use]
    pub fn is_fully_healthy(&self) -> bool {
        self.degraded.is_empty()
    }

    /// Discards the degradation report, keeping the healthy signatures.
    #[must_use]
    pub fn into_set(self) -> SignatureSet {
        self.set
    }
}

/// Outcome of one power iteration run (see [`RwrWorkspace::iterate`]).
struct IterationStatus {
    /// Whether the steady-state tolerance was met (always `true` for
    /// hop-truncated walks, which have no convergence requirement).
    converged: bool,
    /// Last observed L1 residual (meaningful only for steady-state runs).
    residual: f64,
}

/// A dense sparse-accumulator: O(1) scatter-add, O(touched) iteration
/// and clearing.
///
/// A slot's value is meaningful only while its stamp equals the current
/// epoch; [`DenseScatter::begin`] invalidates every slot at once by
/// bumping the epoch.
#[derive(Debug, Default)]
pub struct DenseScatter {
    values: Vec<f64>,
    stamp: Vec<u32>,
    touched: Vec<NodeId>,
    epoch: u32,
}

impl DenseScatter {
    /// An empty accumulator; slots are allocated by the first
    /// [`begin`](DenseScatter::begin).
    #[must_use]
    pub fn new() -> Self {
        DenseScatter::default()
    }

    /// Starts a new accumulation over node ids `0..n`, logically
    /// clearing all slots in O(1) (amortised; grows storage on first use
    /// with a larger `n`).
    pub fn begin(&mut self, n: usize) {
        if self.values.len() < n {
            self.values.resize(n, 0.0);
            self.stamp.resize(n, 0);
        }
        self.touched.clear();
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrapped: stale stamps could collide, so pay one O(n)
            // reset every 2^32 generations.
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Adds `delta` to slot `u`, registering it as touched on first use
    /// this epoch.
    #[inline]
    pub fn add(&mut self, u: NodeId, delta: f64) {
        let i = u.index();
        if self.stamp[i] == self.epoch {
            self.values[i] += delta;
        } else {
            self.stamp[i] = self.epoch;
            self.values[i] = delta;
            self.touched.push(u);
        }
    }

    /// Blocked scatter-add of one CSR row: adds `scale * weights[j]` to
    /// slot `targets[j]` for every `j`, walking both unit-stride slices
    /// in 4-wide lane chunks. The scaled deltas of a chunk are computed
    /// first into a `[f64; 4]` strip (branch-free, register-resident),
    /// then applied in entry order — so each slot receives exactly the
    /// additions, in exactly the order, of a scalar
    /// `for j { add(targets[j], scale * weights[j]) }` loop, and the
    /// touch order (hence downstream iteration order) is unchanged.
    /// Row targets are distinct by CSR construction.
    pub fn scatter_row(&mut self, targets: &[NodeId], weights: &[f64], scale: f64) {
        debug_assert_eq!(targets.len(), weights.len());
        let mut t = targets.chunks_exact(4);
        let mut w = weights.chunks_exact(4);
        for (ts, wv) in (&mut t).zip(&mut w) {
            let d = [scale * wv[0], scale * wv[1], scale * wv[2], scale * wv[3]];
            self.add(ts[0], d[0]);
            self.add(ts[1], d[1]);
            self.add(ts[2], d[2]);
            self.add(ts[3], d[3]);
        }
        for (&u, &wv) in t.remainder().iter().zip(w.remainder()) {
            self.add(u, scale * wv);
        }
    }

    /// The value of slot `u` this epoch (0 if untouched).
    #[inline]
    #[must_use]
    pub fn get(&self, u: NodeId) -> f64 {
        let i = u.index();
        if self.stamp[i] == self.epoch {
            self.values[i]
        } else {
            0.0
        }
    }

    /// Whether slot `u` is live this epoch: touched by
    /// [`add`](DenseScatter::add) and not dropped by
    /// [`prune`](DenseScatter::prune). Unlike a `get(u) == 0.0` probe,
    /// this distinguishes a slot holding an exact zero from an absent one.
    #[inline]
    #[must_use]
    pub fn is_live(&self, u: NodeId) -> bool {
        self.stamp[u.index()] == self.epoch
    }

    /// Number of live (touched, unpruned) slots.
    #[must_use]
    pub fn live(&self) -> usize {
        self.touched.len()
    }

    /// Whether the accumulator carries no state for the current epoch —
    /// the contract every batch must re-establish via
    /// [`begin`](DenseScatter::begin). O(capacity); intended for the
    /// debug-gated contract layer, not hot paths.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.touched.is_empty() && self.stamp.iter().all(|&s| s != self.epoch)
    }

    /// Sum of absolute values over live slots, gathered in 4 independent
    /// lanes reduced in a fixed order (`(l0+l1) + (l2+l3) + tail`) — the
    /// blessed lane-chunked idiom: deterministic for any input, so every
    /// thread count produces the same bits, while the four accumulation
    /// chains run without a loop-carried dependency.
    #[must_use]
    pub fn l1_norm(&self) -> f64 {
        let mut lanes = [0.0f64; 4];
        let mut chunks = self.touched.chunks_exact(4);
        for ch in &mut chunks {
            lanes[0] += self.values[ch[0].index()].abs();
            lanes[1] += self.values[ch[1].index()].abs();
            lanes[2] += self.values[ch[2].index()].abs();
            lanes[3] += self.values[ch[3].index()].abs();
        }
        let mut tail = 0.0;
        for &u in chunks.remainder() {
            tail += self.values[u.index()].abs();
        }
        (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail
    }

    /// Drops live slots whose absolute value is at most `threshold`
    /// (same retention rule as `SparseVec::prune`). Dropped slots read
    /// as 0 again. The scan tests 4 slots per strip into a keep-mask
    /// before compacting, keeping the comparison strip branch-free;
    /// the compaction itself is stable, so survivor order is identical
    /// to an element-by-element `retain`.
    pub fn prune(&mut self, threshold: f64) {
        let values = &mut self.values;
        let stamp = &mut self.stamp;
        let epoch = self.epoch;
        let touched = &mut self.touched;
        let n = touched.len();
        let mut keep = [false; 4];
        let mut write = 0usize;
        let mut read = 0usize;
        while read < n {
            let strip = (n - read).min(4);
            for (lane, k) in keep.iter_mut().take(strip).enumerate() {
                *k = values[touched[read + lane].index()].abs() > threshold;
            }
            for (lane, &k) in keep.iter().take(strip).enumerate() {
                let u = touched[read + lane];
                if k {
                    touched[write] = u;
                    write += 1;
                } else {
                    // Retract the stamp so the slot reads as absent; a
                    // later add() this epoch then re-registers it in
                    // `touched` instead of accumulating into an
                    // untracked slot.
                    let i = u.index();
                    stamp[i] = epoch.wrapping_sub(1);
                    values[i] = 0.0;
                }
            }
            read += strip;
        }
        touched.truncate(write);
    }

    /// Iterates `(node, value)` over live slots in touch order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.touched.iter().map(|&u| (u, self.values[u.index()]))
    }

    /// L1 distance to another accumulator (the steady-state convergence
    /// test). Costs O(touched(self) + touched(other)). The self-side
    /// gather runs in the same 4-lane chunked form as
    /// [`l1_norm`](DenseScatter::l1_norm); the other-side pass stays
    /// scalar (its contribution is branch-gated on liveness).
    #[must_use]
    pub fn l1_distance(&self, other: &DenseScatter) -> f64 {
        let mut lanes = [0.0f64; 4];
        let mut chunks = self.touched.chunks_exact(4);
        for ch in &mut chunks {
            lanes[0] += (self.values[ch[0].index()] - other.get(ch[0])).abs();
            lanes[1] += (self.values[ch[1].index()] - other.get(ch[1])).abs();
            lanes[2] += (self.values[ch[2].index()] - other.get(ch[2])).abs();
            lanes[3] += (self.values[ch[3].index()] - other.get(ch[3])).abs();
        }
        let mut tail = 0.0;
        for &u in chunks.remainder() {
            tail += (self.values[u.index()] - other.get(u)).abs();
        }
        let mut d = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail;
        for (u, v) in other.iter() {
            if !self.is_live(u) {
                d += v.abs();
            }
        }
        d
    }

    /// Extracts the live entries sorted by node id into a caller-owned
    /// buffer (cleared first) — the allocation-free form of
    /// [`sorted_entries`](DenseScatter::sorted_entries) the batched
    /// per-subject loop runs on.
    pub fn sorted_entries_into(&self, out: &mut Vec<(NodeId, f64)>) {
        out.clear();
        out.extend(self.iter());
        out.sort_unstable_by_key(|&(u, _)| u);
    }

    /// Extracts the live entries sorted by node id.
    #[must_use]
    pub fn sorted_entries(&self) -> Vec<(NodeId, f64)> {
        let mut v = Vec::new();
        self.sorted_entries_into(&mut v);
        v
    }

    /// Extracts the live entries in accumulator **touch order** into a
    /// caller-owned buffer (cleared first). Same multiset of
    /// `(node, mass)` pairs as [`sorted_entries_into`](DenseScatter::sorted_entries_into),
    /// bit for bit — only the order differs. Consumers that immediately
    /// run a top-`k` selection (which id-sorts just the `k` survivors)
    /// use this to skip the O(t log t) sort of the full vector.
    pub fn entries_into(&self, out: &mut Vec<(NodeId, f64)>) {
        out.clear();
        out.extend(self.iter());
    }
}

/// Reusable per-worker state for batched RWR power iterations: two
/// [`DenseScatter`] accumulators flipped between the current and next
/// occupancy vector each hop, plus a workspace-owned sorted-entries
/// scratch so extracting a subject's occupancy allocates nothing.
#[derive(Debug, Default)]
pub struct RwrWorkspace {
    cur: DenseScatter,
    nxt: DenseScatter,
    entries: Vec<(NodeId, f64)>,
}

impl RwrWorkspace {
    /// An empty workspace; storage is sized on first use.
    #[must_use]
    pub fn new() -> Self {
        RwrWorkspace::default()
    }

    /// Runs the RWR power iteration for one subject, reusing this
    /// workspace's storage, and returns the occupancy vector sorted by
    /// node id — the same vector (up to accumulation-order float noise)
    /// as `Rwr::occupancy(g, start).into_sorted_entries()`.
    ///
    /// The returned buffer is the workspace-owned scratch: it is valid
    /// until the next `occupancy`/`try_occupancy` call, and handing it
    /// out `&mut` lets `Signature::top_k_scratch` run its top-`k`
    /// selection in place without a transient allocation.
    pub fn occupancy(
        &mut self,
        config: &RwrConfig,
        g: &CommGraph,
        start: NodeId,
    ) -> &mut Vec<(NodeId, f64)> {
        let _ = self.iterate(config, g, start);
        self.cur.sorted_entries_into(&mut self.entries);
        crate::contract::check_occupancy(&self.entries);
        &mut self.entries
    }

    /// [`occupancy`](RwrWorkspace::occupancy) without the id-sort: the
    /// entries come back in accumulator touch order. Same `(node, mass)`
    /// pairs, bit for bit — only the order differs (and
    /// [`contract::check_occupancy`](crate::contract::check_occupancy)
    /// is order-independent). This is the extraction the batched
    /// signature paths use: `Signature::top_k_scratch` id-sorts only
    /// the `k` survivors, so sorting all `t` touched entries per
    /// subject would be wasted work.
    pub fn occupancy_unsorted(
        &mut self,
        config: &RwrConfig,
        g: &CommGraph,
        start: NodeId,
    ) -> &mut Vec<(NodeId, f64)> {
        let _ = self.iterate(config, g, start);
        self.cur.entries_into(&mut self.entries);
        crate::contract::check_occupancy(&self.entries);
        &mut self.entries
    }

    /// Fault-isolating variant of [`occupancy`](RwrWorkspace::occupancy):
    /// instead of handing a corrupt or non-convergent vector downstream
    /// (where the contract layer would panic), reports it as a
    /// [`DegradeReason`] so the caller can mark the subject degraded and
    /// continue the batch. On a healthy subject the returned entries are
    /// bit-identical to `occupancy`'s — both run the same iteration.
    /// Returns the workspace-owned scratch, mutable so fault-injection
    /// seams can corrupt it in place (see
    /// `Rwr::signature_set_outcome_injected`).
    pub fn try_occupancy(
        &mut self,
        config: &RwrConfig,
        g: &CommGraph,
        start: NodeId,
    ) -> Result<&mut Vec<(NodeId, f64)>, DegradeReason> {
        let status = self.iterate(config, g, start);
        self.cur.sorted_entries_into(&mut self.entries);
        validate_occupancy(&self.entries)?;
        if !status.converged {
            return Err(DegradeReason::IterationBudget {
                residual: status.residual,
                budget: config.max_iterations,
            });
        }
        crate::contract::check_occupancy(&self.entries);
        Ok(&mut self.entries)
    }

    /// The shared power iteration: leaves the final occupancy vector in
    /// `self.cur` and reports convergence. Extracted so the strict
    /// ([`occupancy`](RwrWorkspace::occupancy)) and degrading
    /// ([`try_occupancy`](RwrWorkspace::try_occupancy)) paths run
    /// identical arithmetic.
    fn iterate(&mut self, config: &RwrConfig, g: &CommGraph, start: NodeId) -> IterationStatus {
        let c = config.restart;
        let n = g.num_nodes();
        self.cur.begin(n);
        // Epoch discipline: begin() must leave no state from the
        // previous subject handled by this worker.
        crate::contract::check_scatter_clean(&self.cur);
        self.cur.add(start, 1.0);
        let iterations = match config.hops {
            Some(h) => h,
            None => config.max_iterations,
        };
        // Hop-truncated walks have no convergence requirement.
        let mut status = IterationStatus {
            converged: config.hops.is_some(),
            residual: f64::INFINITY,
        };
        for _ in 0..iterations {
            self.nxt.begin(n);
            let mut reset_mass = c * self.cur.l1_norm();
            // Split borrows: read `cur`, scatter into `nxt`. Each live
            // node's CSR row is scattered as raw unit-stride slices by
            // the blocked [`DenseScatter::scatter_row`] kernel; for
            // directed walks the per-row normaliser is folded into the
            // scale once (one divide per row instead of one per edge).
            let nxt = &mut self.nxt;
            for (v, mass) in self.cur.iter() {
                let step = (1.0 - c) * mass;
                if step <= 0.0 {
                    continue;
                }
                let dangling = match config.direction {
                    WalkDirection::Directed => {
                        let sum = g.out_weight_sum(v);
                        if sum > 0.0 {
                            let (targets, weights) = g.out_row(v);
                            nxt.scatter_row(targets, weights, step / sum);
                            false
                        } else {
                            true
                        }
                    }
                    WalkDirection::Undirected => {
                        if let Some((neighbors, probs)) = g.undirected_row(v) {
                            nxt.scatter_row(neighbors, probs, step);
                            false
                        } else {
                            true
                        }
                    }
                };
                if dangling {
                    // Dangling node: the walker resets.
                    reset_mass += step;
                }
            }
            self.nxt.add(start, reset_mass);
            self.nxt.prune(config.prune_threshold);
            let mut converged = false;
            if config.hops.is_none() {
                status.residual = self.cur.l1_distance(&self.nxt);
                converged = status.residual < config.tolerance;
            }
            std::mem::swap(&mut self.cur, &mut self.nxt);
            if converged {
                status.converged = true;
                break;
            }
        }
        status
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Rwr;
    use comsig_graph::GraphBuilder;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn diamond() -> CommGraph {
        let mut b = GraphBuilder::new();
        b.add_event(n(0), n(1), 3.0);
        b.add_event(n(0), n(2), 1.0);
        b.add_event(n(1), n(3), 1.0);
        b.add_event(n(2), n(3), 1.0);
        b.build(4)
    }

    #[test]
    fn scatter_basic_ops() {
        let mut s = DenseScatter::new();
        s.begin(5);
        s.add(n(3), 0.5);
        s.add(n(1), 0.25);
        s.add(n(3), 0.5);
        assert_eq!(s.get(n(3)), 1.0);
        assert_eq!(s.get(n(0)), 0.0);
        assert_eq!(s.live(), 2);
        assert!((s.l1_norm() - 1.25).abs() < 1e-15);
        assert_eq!(s.sorted_entries(), vec![(n(1), 0.25), (n(3), 1.0)]);

        // A new epoch clears everything without touching storage.
        s.begin(5);
        assert_eq!(s.get(n(3)), 0.0);
        assert_eq!(s.live(), 0);
    }

    #[test]
    fn scatter_row_matches_scalar_adds_at_every_remainder() {
        // Lane-remainder sweep: rows of length n ≡ 0..3 (mod 4) must be
        // bit-identical to the scalar add loop, in values and in touch
        // order.
        for len in 0..=9usize {
            let targets: Vec<NodeId> = (0..len).map(|i| n((i * 3) % 11)).collect();
            let weights: Vec<f64> = (0..len).map(|i| 0.125 + i as f64 * 0.37).collect();
            let scale = 0.71;
            let mut blocked = DenseScatter::new();
            blocked.begin(16);
            blocked.scatter_row(&targets, &weights, scale);
            let mut scalar = DenseScatter::new();
            scalar.begin(16);
            for (&u, &w) in targets.iter().zip(&weights) {
                scalar.add(u, scale * w);
            }
            let (b, s) = (blocked.sorted_entries(), scalar.sorted_entries());
            assert_eq!(b.len(), s.len(), "len {len}");
            for (&(bu, bw), &(su, sw)) in b.iter().zip(s.iter()) {
                assert_eq!(bu, su, "len {len}");
                assert_eq!(bw.to_bits(), sw.to_bits(), "len {len} node {bu}");
            }
            let touched_b: Vec<NodeId> = blocked.iter().map(|(u, _)| u).collect();
            let touched_s: Vec<NodeId> = scalar.iter().map(|(u, _)| u).collect();
            assert_eq!(touched_b, touched_s, "len {len}");
        }
    }

    #[test]
    fn l1_kernels_match_reference_at_every_remainder() {
        // n ≡ 0..3 (mod 4) live slots: the lane-chunked l1_norm /
        // l1_distance / prune passes must agree with scalar references.
        for len in 0..=9usize {
            let mut s = DenseScatter::new();
            s.begin(32);
            for i in 0..len {
                s.add(
                    n(i * 2),
                    (i as f64 + 1.0) * if i % 2 == 0 { 0.25 } else { -0.5 },
                );
            }
            let scalar_l1: f64 = s.iter().map(|(_, v)| v.abs()).sum();
            assert!((s.l1_norm() - scalar_l1).abs() < 1e-12, "len {len}");

            let mut o = DenseScatter::new();
            o.begin(32);
            for i in 0..len / 2 {
                o.add(n(i * 3), 0.125 * (i as f64 + 1.0));
            }
            let mut scalar_d: f64 = s.iter().map(|(u, v)| (v - o.get(u)).abs()).sum();
            for (u, v) in o.iter() {
                if !s.is_live(u) {
                    scalar_d += v.abs();
                }
            }
            assert!((s.l1_distance(&o) - scalar_d).abs() < 1e-12, "len {len}");

            let expect: Vec<NodeId> = s
                .iter()
                .filter(|&(_, v)| v.abs() > 0.6)
                .map(|(u, _)| u)
                .collect();
            s.prune(0.6);
            let kept: Vec<NodeId> = s.iter().map(|(u, _)| u).collect();
            assert_eq!(kept, expect, "len {len}");
            assert_eq!(s.live(), expect.len(), "len {len}");
        }
    }

    #[test]
    fn scatter_prune_drops_small_entries() {
        let mut s = DenseScatter::new();
        s.begin(4);
        s.add(n(0), 1.0);
        s.add(n(1), 1e-15);
        s.add(n(2), -2.0);
        s.prune(1e-12);
        assert_eq!(s.live(), 2);
        assert_eq!(s.get(n(1)), 0.0);
        assert!((s.l1_norm() - 3.0).abs() < 1e-15);
    }

    #[test]
    fn scatter_l1_distance_matches_manual() {
        let mut a = DenseScatter::new();
        a.begin(4);
        a.add(n(0), 1.0);
        a.add(n(1), 0.5);
        let mut b = DenseScatter::new();
        b.begin(4);
        b.add(n(1), 0.25);
        b.add(n(2), 0.25);
        assert!((a.l1_distance(&b) - 1.5).abs() < 1e-12);
        assert!((b.l1_distance(&a) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn workspace_matches_reference_truncated() {
        let g = diamond();
        let rwr = Rwr::truncated(0.1, 3);
        let mut ws = RwrWorkspace::new();
        for v in g.nodes() {
            let reference = rwr.occupancy(&g, v).into_sorted_entries();
            let batched = ws.occupancy(&rwr.config, &g, v);
            assert_eq!(reference.len(), batched.len(), "subject {v}");
            for (&(ru, rw), &(bu, bw)) in reference.iter().zip(batched.iter()) {
                assert_eq!(ru, bu);
                assert!((rw - bw).abs() < 1e-12, "subject {v} node {ru}");
            }
        }
    }

    #[test]
    fn workspace_matches_reference_full_and_undirected() {
        let g = diamond();
        let mut ws = RwrWorkspace::new();
        for rwr in [Rwr::full(0.15), Rwr::truncated(0.1, 5).undirected()] {
            for v in g.nodes() {
                let reference = rwr.occupancy(&g, v).into_sorted_entries();
                let batched = ws.occupancy(&rwr.config, &g, v);
                assert_eq!(reference.len(), batched.len());
                for (&(ru, rw), &(bu, bw)) in reference.iter().zip(batched.iter()) {
                    assert_eq!(ru, bu);
                    assert!((rw - bw).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn validate_occupancy_classifies_faults() {
        assert!(validate_occupancy(&[(n(0), 0.5), (n(1), 0.25)]).is_ok());
        assert!(validate_occupancy(&[]).is_ok());
        assert!(matches!(
            validate_occupancy(&[(n(0), f64::NAN)]),
            Err(DegradeReason::NonFiniteOccupancy { .. })
        ));
        assert!(matches!(
            validate_occupancy(&[(n(0), f64::INFINITY)]),
            Err(DegradeReason::NonFiniteOccupancy { .. })
        ));
        assert!(matches!(
            validate_occupancy(&[(n(0), -0.1)]),
            Err(DegradeReason::NegativeOccupancy { .. })
        ));
        assert!(matches!(
            validate_occupancy(&[(n(0), 0.9), (n(1), 0.2)]),
            Err(DegradeReason::MassOverflow { .. })
        ));
    }

    #[test]
    fn degrade_reason_displays() {
        let reasons = [
            DegradeReason::NonFiniteOccupancy {
                node: n(1),
                value: f64::NAN,
            },
            DegradeReason::NegativeOccupancy {
                node: n(2),
                value: -0.5,
            },
            DegradeReason::MassOverflow { mass: 1.5 },
            DegradeReason::IterationBudget {
                residual: 0.2,
                budget: 10,
            },
            DegradeReason::PushBudget { budget: 3 },
        ];
        for r in reasons {
            assert!(!r.to_string().is_empty());
        }
    }

    #[test]
    fn try_occupancy_is_bit_identical_to_occupancy_when_healthy() {
        let g = diamond();
        let mut ws = RwrWorkspace::new();
        for rwr in [Rwr::truncated(0.1, 3), Rwr::full(0.15)] {
            for v in g.nodes() {
                let strict = ws.occupancy(&rwr.config, &g, v).clone();
                let degrading = ws.try_occupancy(&rwr.config, &g, v).unwrap();
                assert_eq!(strict.len(), degrading.len());
                for (&(su, sw), &(du, dw)) in strict.iter().zip(degrading.iter()) {
                    assert_eq!(su, du);
                    assert_eq!(sw.to_bits(), dw.to_bits(), "subject {v} node {su}");
                }
            }
        }
    }

    #[test]
    fn try_occupancy_reports_iteration_budget() {
        let g = diamond();
        let mut rwr = Rwr::full(0.05);
        rwr.config.max_iterations = 1;
        rwr.config.tolerance = 1e-15;
        let mut ws = RwrWorkspace::new();
        // Node 0 cannot converge in one iteration...
        let err = ws.try_occupancy(&rwr.config, &g, n(0)).unwrap_err();
        match err {
            DegradeReason::IterationBudget { residual, budget } => {
                assert_eq!(budget, 1);
                assert!(residual > 1e-15);
            }
            other => panic!("expected IterationBudget, got {other}"),
        }
        // ...but the dangling node 3 reaches its fixed point immediately.
        assert!(ws.try_occupancy(&rwr.config, &g, n(3)).is_ok());
    }

    #[test]
    fn batch_outcome_partitions_subjects() {
        use crate::signature::Signature;
        let sig = Signature::top_k(n(0), [(n(1), 0.5)], 4);
        let outcome = BatchOutcome::new(
            SignatureSet::new(vec![n(0)], vec![sig]),
            vec![(n(1), DegradeReason::MassOverflow { mass: 2.0 })],
        );
        assert_eq!(outcome.set().len(), 1);
        assert_eq!(outcome.degraded().len(), 1);
        assert!(!outcome.is_fully_healthy());
        assert_eq!(outcome.into_set().len(), 1);
    }

    #[test]
    fn workspace_reuse_across_graph_sizes() {
        // Reusing one workspace across graphs of different sizes (and
        // after many epochs) must not leak state between runs.
        let mut ws = RwrWorkspace::new();
        let small = diamond();
        let mut b = GraphBuilder::new();
        for i in 0..50 {
            b.add_event(n(i), n((i + 1) % 50), 1.0 + i as f64);
        }
        let big = b.build(60);
        let rwr = Rwr::truncated(0.2, 4);
        for _ in 0..3 {
            for (g, nn) in [(&small, 4), (&big, 60)] {
                for i in 0..nn {
                    let reference = rwr.occupancy(g, n(i)).into_sorted_entries();
                    let batched = ws.occupancy(&rwr.config, g, n(i));
                    assert_eq!(reference.len(), batched.len());
                    for (&(_, rw), &(_, bw)) in reference.iter().zip(batched.iter()) {
                        assert!((rw - bw).abs() < 1e-12);
                    }
                }
            }
        }
    }
}
