//! Batch distance kernels: the scalars + intersection decomposition.
//!
//! Signatures are top-`k` sparse sets (`k = 10` in the paper), so in an
//! all-pairs or ranking sweep almost every pair is *disjoint* and scores
//! distance exactly 1. An inverted index (`comsig_eval::index`) can
//! therefore skip the non-overlapping pairs entirely — but only if every
//! distance is computable from
//!
//! 1. **per-signature scalars** ([`SigScalars`]: `|S|`, `Σw`, `Σw²`) that
//!    are precomputed once per candidate, and
//! 2. **intersection statistics** ([`InterAcc`]) accumulated over the
//!    shared members only, in ascending node-id order.
//!
//! [`BatchDistance`] is that decomposition: [`accumulate`]
//! (per shared member) plus [`finish`] (combine with the scalars). Every
//! implemented distance provides it, and — crucially — the plain
//! pairwise [`distance_raw`](super::SignatureDistance::distance_raw) of
//! each distance is implemented *through* [`merge_score`], which runs the
//! identical `accumulate`/`finish` arithmetic over the `O(k)` merge-join.
//! Brute-force matching and index-backed matching therefore produce
//! **bit-identical** `f64`s: same terms, same order, same rounding.
//!
//! [`accumulate`]: BatchDistance::accumulate
//! [`finish`]: BatchDistance::finish

use super::SignatureDistance;
use crate::signature::Signature;

/// Per-signature scalars sufficient (together with [`InterAcc`]) to
/// evaluate every implemented distance: member count, weight sum and
/// squared-weight sum, each accumulated left-to-right over the
/// signature's id-sorted entries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SigScalars {
    /// `|S|` — number of signature members.
    pub len: usize,
    /// `Σ w` over the members, in entry (ascending node id) order.
    pub weight_sum: f64,
    /// `Σ w²` over the members, in entry order.
    pub sq_sum: f64,
}

impl SigScalars {
    /// Computes the scalars of one signature. The summation order (the
    /// signature's own entry order) is part of the bit-identity contract
    /// between the brute-force and index-backed matchers.
    #[must_use]
    pub fn of(sig: &Signature) -> SigScalars {
        let mut weight_sum = 0.0;
        let mut sq_sum = 0.0;
        for (_, w) in sig.iter() {
            weight_sum += w;
            sq_sum += w * w;
        }
        SigScalars {
            len: sig.len(),
            weight_sum,
            sq_sum,
        }
    }

    /// Whether the underlying signature was empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Intersection statistics for one `(query, candidate)` pair: the number
/// of shared members plus two distance-specific sums (see
/// [`BatchDistance::accumulate`]), each accumulated over the shared
/// members in ascending node-id order.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct InterAcc {
    /// `|S₁ ∩ S₂|` — number of shared members.
    pub count: usize,
    /// First distance-specific sum (e.g. `Σ min(w₁, w₂)`).
    pub a: f64,
    /// Second distance-specific sum (e.g. `Σ √(w₁·w₂)`); 0 for
    /// distances that need only one.
    pub b: f64,
}

impl InterAcc {
    /// An empty accumulator (the state of every disjoint pair).
    #[must_use]
    pub fn new() -> InterAcc {
        InterAcc::default()
    }

    /// Folds one shared member's [`accumulate`](BatchDistance::accumulate)
    /// contribution into the sums.
    #[inline]
    pub fn push(&mut self, (a, b): (f64, f64)) {
        self.count += 1;
        self.a += a;
        self.b += b;
    }
}

/// A distance expressible as per-signature scalars plus intersection
/// sums — the contract the inverted-index matcher needs to score a query
/// against only the candidates it overlaps, while every skipped
/// (disjoint) candidate is emitted as distance exactly 1.
///
/// Implementations must satisfy, for non-empty `σ₁, σ₂`:
///
/// * `finish(s₁, s₂, ∅) == 1.0` **exactly** — the disjoint shortcut;
/// * `distance_raw(σ₁, σ₂)` equals `finish` over the merge-join
///   bit-for-bit (guaranteed by implementing `distance_raw` via
///   [`merge_score`]).
///
/// The provided methods [`accumulate_list`] and [`finish_touched`] are
/// the index matcher's kernels. They are *provided* deliberately: a
/// default trait body is instantiated once per implementing type, so a
/// single `dyn BatchDistance` dispatch per posting list (or per scoring
/// epilogue) lands in a monomorphized loop whose inner
/// `accumulate`/`finish` calls are static and inlinable — instead of one
/// virtual call per posting entry.
///
/// [`accumulate_list`]: BatchDistance::accumulate_list
/// [`finish_touched`]: BatchDistance::finish_touched
pub trait BatchDistance: SignatureDistance {
    /// The contribution of one shared member with weights `(wq, wc)` to
    /// the two intersection sums. Called in ascending node-id order of
    /// the shared members.
    #[must_use]
    fn accumulate(&self, wq: f64, wc: f64) -> (f64, f64);

    /// Combines the precomputed scalars of both signatures with the
    /// intersection sums into the distance. Must not be called for
    /// empty signatures (the [`empty_rule`](super::empty_rule) runs
    /// first on both matching paths).
    #[must_use]
    fn finish(&self, q: &SigScalars, c: &SigScalars, inter: &InterAcc) -> f64;

    /// Sweeps one posting list for one query member of weight `wq`,
    /// folding every `(candidate position, candidate weight)` entry into
    /// `ws`. Entries are processed in 4-wide lane chunks: the four pure
    /// `accumulate` contributions of a chunk are computed first (a
    /// branch-free strip the autovectorizer can keep in registers), then
    /// applied in entry order — so the per-candidate fold sequence, and
    /// with it the bit-identity to the brute-force merge-join, is
    /// exactly that of a scalar entry-by-entry loop.
    fn accumulate_list(&self, wq: f64, postings: &[(u32, f64)], ws: &mut MatchWorkspace) {
        let mut chunks = postings.chunks_exact(4);
        for lane in &mut chunks {
            let c0 = self.accumulate(wq, lane[0].1);
            let c1 = self.accumulate(wq, lane[1].1);
            let c2 = self.accumulate(wq, lane[2].1);
            let c3 = self.accumulate(wq, lane[3].1);
            ws.add(lane[0].0, c0);
            ws.add(lane[1].0, c1);
            ws.add(lane[2].0, c2);
            ws.add(lane[3].0, c3);
        }
        for &(pos, wc) in chunks.remainder() {
            ws.add(pos, self.accumulate(wq, wc));
        }
    }

    /// Batched scoring epilogue: finishes every candidate touched in
    /// `ws` this epoch against its precomputed scalars, pushing
    /// `(position, distance)` pairs onto `out` in first-touch order.
    /// One virtual dispatch covers the whole epilogue; the per-candidate
    /// `finish` calls inside are static.
    fn finish_touched(
        &self,
        q: &SigScalars,
        scalars: &[SigScalars],
        ws: &MatchWorkspace,
        out: &mut Vec<(u32, f64)>,
    ) {
        for &p in ws.touched() {
            out.push((p, self.finish(q, &scalars[p as usize], &ws.inter(p))));
        }
    }
}

/// The shared brute-force evaluation: scalars of both sides, one `O(k)`
/// merge-join accumulating the intersection sums in ascending node-id
/// order, then [`BatchDistance::finish`]. Every `distance_raw` delegates
/// here (after the empty rule), so the reference path and the
/// index-backed path are the same arithmetic by construction.
#[must_use]
pub fn merge_score<D: BatchDistance + ?Sized>(dist: &D, a: &Signature, b: &Signature) -> f64 {
    let qs = SigScalars::of(a);
    let cs = SigScalars::of(b);
    let mut inter = InterAcc::new();
    for (_, w1, w2) in a.union_weights(b) {
        if w1 > 0.0 && w2 > 0.0 {
            inter.push(dist.accumulate(w1, w2));
        }
    }
    dist.finish(&qs, &cs, &inter)
}

/// Reusable per-worker accumulation state for index sweeps: dense
/// per-candidate [`InterAcc`] slots with an epoch stamp per slot and a
/// touched list — the same sparse-accumulator pattern as
/// `comsig_core::engine::DenseScatter`, keyed by candidate position
/// instead of node id. Lives here (rather than in `comsig_eval`) so the
/// [`BatchDistance`] kernels can sweep it without a per-entry virtual
/// call; `comsig_eval::index` re-exports it.
#[derive(Debug, Default)]
pub struct MatchWorkspace {
    count: Vec<u32>,
    acc_a: Vec<f64>,
    acc_b: Vec<f64>,
    stamp: Vec<u32>,
    touched: Vec<u32>,
    epoch: u32,
    scored: Vec<(u32, f64)>,
}

impl MatchWorkspace {
    /// An empty workspace; slots are allocated by the first
    /// [`begin`](MatchWorkspace::begin).
    #[must_use]
    pub fn new() -> MatchWorkspace {
        MatchWorkspace::default()
    }

    /// Starts a new accumulation over candidate positions `0..n`,
    /// logically clearing all slots in O(1) via an epoch bump.
    pub fn begin(&mut self, n: usize) {
        if self.count.len() < n {
            self.count.resize(n, 0);
            self.acc_a.resize(n, 0.0);
            self.acc_b.resize(n, 0.0);
            self.stamp.resize(n, 0);
        }
        self.touched.clear();
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrapped: stale stamps could collide, so pay one O(n)
            // reset every 2^32 generations.
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Folds one shared-member contribution into candidate `pos`,
    /// registering the slot as touched on first use this epoch.
    #[inline]
    pub fn add(&mut self, pos: u32, (a, b): (f64, f64)) {
        let i = pos as usize;
        if self.stamp[i] == self.epoch {
            self.count[i] += 1;
            self.acc_a[i] += a;
            self.acc_b[i] += b;
        } else {
            self.stamp[i] = self.epoch;
            self.count[i] = 1;
            self.acc_a[i] = a;
            self.acc_b[i] = b;
            self.touched.push(pos);
        }
    }

    /// Whether candidate `pos` shares at least one member with the
    /// query swept this epoch.
    #[inline]
    #[must_use]
    pub fn is_touched(&self, pos: u32) -> bool {
        self.stamp[pos as usize] == self.epoch
    }

    /// The intersection statistics of candidate `pos` this epoch.
    /// Meaningless (zeroed or stale) unless
    /// [`is_touched`](MatchWorkspace::is_touched).
    #[inline]
    #[must_use]
    pub fn inter(&self, pos: u32) -> InterAcc {
        let i = pos as usize;
        InterAcc {
            count: self.count[i] as usize,
            a: self.acc_a[i],
            b: self.acc_b[i],
        }
    }

    /// Candidate positions touched this epoch, in first-touch order.
    #[must_use]
    pub fn touched(&self) -> &[u32] {
        &self.touched
    }

    /// Detaches the workspace-owned `(position, distance)` scoring
    /// scratch, cleared and ready to fill. Return it with
    /// [`put_scored`](MatchWorkspace::put_scored) after use so the
    /// allocation is reused across queries. (Detaching sidesteps the
    /// aliasing conflict between `&self` sweep reads and `&mut` pushes.)
    #[must_use]
    pub fn take_scored(&mut self) -> Vec<(u32, f64)> {
        let mut scored = std::mem::take(&mut self.scored);
        scored.clear();
        scored
    }

    /// Returns the scoring scratch taken by
    /// [`take_scored`](MatchWorkspace::take_scored), keeping its
    /// capacity for the next query.
    pub fn put_scored(&mut self, scored: Vec<(u32, f64)>) {
        self.scored = scored;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::all_distances;
    use comsig_graph::NodeId;

    fn sig(pairs: &[(usize, f64)]) -> Signature {
        Signature::top_k(
            NodeId::new(999_999),
            pairs.iter().map(|&(i, w)| (NodeId::new(i), w)),
            pairs.len().max(1),
        )
    }

    #[test]
    fn scalars_of_signature() {
        let s = SigScalars::of(&sig(&[(1, 2.0), (2, 3.0)]));
        assert_eq!(s.len, 2);
        assert!((s.weight_sum - 5.0).abs() < 1e-15);
        assert!((s.sq_sum - 13.0).abs() < 1e-15);
        assert!(SigScalars::of(&Signature::empty()).is_empty());
    }

    #[test]
    fn disjoint_shortcut_is_exactly_one_for_every_distance() {
        // The index never visits a candidate sharing no member with the
        // query and emits literal 1.0 instead; `finish` over an empty
        // intersection must agree exactly for every kernel.
        let a = sig(&[(1, 0.25), (2, 7.5)]);
        let b = sig(&[(3, 1e-9), (4, 3e12), (5, 0.125)]);
        for d in all_distances() {
            let via_finish = d.finish(&SigScalars::of(&a), &SigScalars::of(&b), &InterAcc::new());
            assert_eq!(via_finish.to_bits(), 1.0f64.to_bits(), "{}", d.name());
            assert_eq!(
                d.distance(&a, &b).to_bits(),
                1.0f64.to_bits(),
                "{}",
                d.name()
            );
        }
    }

    #[test]
    fn accumulate_list_matches_scalar_adds_at_every_remainder() {
        // The 4-lane chunked posting sweep must be bit-identical to the
        // scalar entry-order loop at every length mod 4 — including the
        // touch order the scoring epilogue iterates in.
        for d in all_distances() {
            for len in 0..=9usize {
                let postings: Vec<(u32, f64)> = (0..len)
                    .map(|i| ((i as u32 * 7) % 13, 0.125 + i as f64 * 0.375))
                    .collect();
                let wq = 0.625;
                let mut blocked = MatchWorkspace::new();
                blocked.begin(16);
                d.accumulate_list(wq, &postings, &mut blocked);
                let mut scalar = MatchWorkspace::new();
                scalar.begin(16);
                for &(pos, wc) in &postings {
                    scalar.add(pos, d.accumulate(wq, wc));
                }
                assert_eq!(
                    blocked.touched(),
                    scalar.touched(),
                    "{} len {len}",
                    d.name()
                );
                for &p in blocked.touched() {
                    let a = blocked.inter(p);
                    let b = scalar.inter(p);
                    assert_eq!(a.count, b.count, "{} len {len} pos {p}", d.name());
                    assert_eq!(
                        a.a.to_bits(),
                        b.a.to_bits(),
                        "{} len {len} pos {p}",
                        d.name()
                    );
                    assert_eq!(
                        a.b.to_bits(),
                        b.b.to_bits(),
                        "{} len {len} pos {p}",
                        d.name()
                    );
                }
            }
        }
    }

    #[test]
    fn merge_score_is_distance_raw_for_every_distance() {
        let cases = [
            (
                sig(&[(1, 0.5), (2, 0.3), (9, 4.0)]),
                sig(&[(2, 0.7), (9, 0.1)]),
            ),
            (sig(&[(1, 1.0)]), sig(&[(1, 1.0)])),
            (sig(&[(3, 2.0), (4, 2.0)]), sig(&[(3, 2.0), (5, 1.0)])),
        ];
        for d in all_distances() {
            for (a, b) in &cases {
                assert_eq!(
                    d.distance_raw(a, b).to_bits(),
                    merge_score(d.as_ref(), a, b).to_bits(),
                    "{}",
                    d.name()
                );
            }
        }
    }
}
