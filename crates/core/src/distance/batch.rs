//! Batch distance kernels: the scalars + intersection decomposition.
//!
//! Signatures are top-`k` sparse sets (`k = 10` in the paper), so in an
//! all-pairs or ranking sweep almost every pair is *disjoint* and scores
//! distance exactly 1. An inverted index (`comsig_eval::index`) can
//! therefore skip the non-overlapping pairs entirely — but only if every
//! distance is computable from
//!
//! 1. **per-signature scalars** ([`SigScalars`]: `|S|`, `Σw`, `Σw²`) that
//!    are precomputed once per candidate, and
//! 2. **intersection statistics** ([`InterAcc`]) accumulated over the
//!    shared members only, in ascending node-id order.
//!
//! [`BatchDistance`] is that decomposition: [`accumulate`]
//! (per shared member) plus [`finish`] (combine with the scalars). Every
//! implemented distance provides it, and — crucially — the plain
//! pairwise [`distance_raw`](super::SignatureDistance::distance_raw) of
//! each distance is implemented *through* [`merge_score`], which runs the
//! identical `accumulate`/`finish` arithmetic over the `O(k)` merge-join.
//! Brute-force matching and index-backed matching therefore produce
//! **bit-identical** `f64`s: same terms, same order, same rounding.
//!
//! [`accumulate`]: BatchDistance::accumulate
//! [`finish`]: BatchDistance::finish

use super::SignatureDistance;
use crate::signature::Signature;

/// Per-signature scalars sufficient (together with [`InterAcc`]) to
/// evaluate every implemented distance: member count, weight sum and
/// squared-weight sum, each accumulated left-to-right over the
/// signature's id-sorted entries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SigScalars {
    /// `|S|` — number of signature members.
    pub len: usize,
    /// `Σ w` over the members, in entry (ascending node id) order.
    pub weight_sum: f64,
    /// `Σ w²` over the members, in entry order.
    pub sq_sum: f64,
}

impl SigScalars {
    /// Computes the scalars of one signature. The summation order (the
    /// signature's own entry order) is part of the bit-identity contract
    /// between the brute-force and index-backed matchers.
    #[must_use]
    pub fn of(sig: &Signature) -> SigScalars {
        let mut weight_sum = 0.0;
        let mut sq_sum = 0.0;
        for (_, w) in sig.iter() {
            weight_sum += w;
            sq_sum += w * w;
        }
        SigScalars {
            len: sig.len(),
            weight_sum,
            sq_sum,
        }
    }

    /// Whether the underlying signature was empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Intersection statistics for one `(query, candidate)` pair: the number
/// of shared members plus two distance-specific sums (see
/// [`BatchDistance::accumulate`]), each accumulated over the shared
/// members in ascending node-id order.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct InterAcc {
    /// `|S₁ ∩ S₂|` — number of shared members.
    pub count: usize,
    /// First distance-specific sum (e.g. `Σ min(w₁, w₂)`).
    pub a: f64,
    /// Second distance-specific sum (e.g. `Σ √(w₁·w₂)`); 0 for
    /// distances that need only one.
    pub b: f64,
}

impl InterAcc {
    /// An empty accumulator (the state of every disjoint pair).
    #[must_use]
    pub fn new() -> InterAcc {
        InterAcc::default()
    }

    /// Folds one shared member's [`accumulate`](BatchDistance::accumulate)
    /// contribution into the sums.
    #[inline]
    pub fn push(&mut self, (a, b): (f64, f64)) {
        self.count += 1;
        self.a += a;
        self.b += b;
    }
}

/// A distance expressible as per-signature scalars plus intersection
/// sums — the contract the inverted-index matcher needs to score a query
/// against only the candidates it overlaps, while every skipped
/// (disjoint) candidate is emitted as distance exactly 1.
///
/// Implementations must satisfy, for non-empty `σ₁, σ₂`:
///
/// * `finish(s₁, s₂, ∅) == 1.0` **exactly** — the disjoint shortcut;
/// * `distance_raw(σ₁, σ₂)` equals `finish` over the merge-join
///   bit-for-bit (guaranteed by implementing `distance_raw` via
///   [`merge_score`]).
pub trait BatchDistance: SignatureDistance {
    /// The contribution of one shared member with weights `(wq, wc)` to
    /// the two intersection sums. Called in ascending node-id order of
    /// the shared members.
    #[must_use]
    fn accumulate(&self, wq: f64, wc: f64) -> (f64, f64);

    /// Combines the precomputed scalars of both signatures with the
    /// intersection sums into the distance. Must not be called for
    /// empty signatures (the [`empty_rule`](super::empty_rule) runs
    /// first on both matching paths).
    #[must_use]
    fn finish(&self, q: &SigScalars, c: &SigScalars, inter: &InterAcc) -> f64;
}

/// The shared brute-force evaluation: scalars of both sides, one `O(k)`
/// merge-join accumulating the intersection sums in ascending node-id
/// order, then [`BatchDistance::finish`]. Every `distance_raw` delegates
/// here (after the empty rule), so the reference path and the
/// index-backed path are the same arithmetic by construction.
#[must_use]
pub fn merge_score<D: BatchDistance + ?Sized>(dist: &D, a: &Signature, b: &Signature) -> f64 {
    let qs = SigScalars::of(a);
    let cs = SigScalars::of(b);
    let mut inter = InterAcc::new();
    for (_, w1, w2) in a.union_weights(b) {
        if w1 > 0.0 && w2 > 0.0 {
            inter.push(dist.accumulate(w1, w2));
        }
    }
    dist.finish(&qs, &cs, &inter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::all_distances;
    use comsig_graph::NodeId;

    fn sig(pairs: &[(usize, f64)]) -> Signature {
        Signature::top_k(
            NodeId::new(999_999),
            pairs.iter().map(|&(i, w)| (NodeId::new(i), w)),
            pairs.len().max(1),
        )
    }

    #[test]
    fn scalars_of_signature() {
        let s = SigScalars::of(&sig(&[(1, 2.0), (2, 3.0)]));
        assert_eq!(s.len, 2);
        assert!((s.weight_sum - 5.0).abs() < 1e-15);
        assert!((s.sq_sum - 13.0).abs() < 1e-15);
        assert!(SigScalars::of(&Signature::empty()).is_empty());
    }

    #[test]
    fn disjoint_shortcut_is_exactly_one_for_every_distance() {
        // The index never visits a candidate sharing no member with the
        // query and emits literal 1.0 instead; `finish` over an empty
        // intersection must agree exactly for every kernel.
        let a = sig(&[(1, 0.25), (2, 7.5)]);
        let b = sig(&[(3, 1e-9), (4, 3e12), (5, 0.125)]);
        for d in all_distances() {
            let via_finish = d.finish(&SigScalars::of(&a), &SigScalars::of(&b), &InterAcc::new());
            assert_eq!(via_finish.to_bits(), 1.0f64.to_bits(), "{}", d.name());
            assert_eq!(
                d.distance(&a, &b).to_bits(),
                1.0f64.to_bits(),
                "{}",
                d.name()
            );
        }
    }

    #[test]
    fn merge_score_is_distance_raw_for_every_distance() {
        let cases = [
            (
                sig(&[(1, 0.5), (2, 0.3), (9, 4.0)]),
                sig(&[(2, 0.7), (9, 0.1)]),
            ),
            (sig(&[(1, 1.0)]), sig(&[(1, 1.0)])),
            (sig(&[(3, 2.0), (4, 2.0)]), sig(&[(3, 2.0), (5, 1.0)])),
        ];
        for d in all_distances() {
            for (a, b) in &cases {
                assert_eq!(
                    d.distance_raw(a, b).to_bits(),
                    merge_score(d.as_ref(), a, b).to_bits(),
                    "{}",
                    d.name()
                );
            }
        }
    }
}
