//! Scaled Hellinger distance.

use super::{empty_rule, merge_score, BatchDistance, InterAcc, SigScalars, SignatureDistance};
use crate::signature::Signature;

/// `Dist_SHel(σ₁, σ₂) = 1 − Σ_{j∈S₁∩S₂} √(w₁ⱼ·w₂ⱼ) / Σ_{j∈S₁∪S₂} max(w₁ⱼ, w₂ⱼ)`.
///
/// Based on the Hellinger distance: the geometric mean `√(w₁·w₂)` in the
/// numerator softens [`SDice`](super::SDice)'s `min`, so moderately
/// unequal weights on shared nodes are penalised less harshly while
/// disjoint membership still costs the full `max`. This is the distance
/// the paper uses for its headline ROC curves (Figure 2).
#[derive(Debug, Clone, Copy, Default)]
pub struct SHel;

impl SignatureDistance for SHel {
    fn name(&self) -> &'static str {
        "SHel"
    }

    fn distance_raw(&self, a: &Signature, b: &Signature) -> f64 {
        if let Some(d) = empty_rule(a, b) {
            return d;
        }
        merge_score(self, a, b)
    }
}

impl BatchDistance for SHel {
    fn accumulate(&self, wq: f64, wc: f64) -> (f64, f64) {
        // Both intersection sums are needed: the min-sum rebuilds the
        // union max-sum denominator, the √-sum is the numerator.
        (wq.min(wc), (wq * wc).sqrt())
    }

    fn finish(&self, q: &SigScalars, c: &SigScalars, inter: &InterAcc) -> f64 {
        // Same denominator decomposition as SDice:
        // `Σ_{∪} max = Σ w₁ + Σ w₂ − Σ_{∩} min`. Disjoint pairs score
        // exactly 1; the clamp guards against √ rounding pushing the
        // ratio a hair past 1.
        let den = q.weight_sum + c.weight_sum - inter.a;
        if den <= 0.0 {
            return 0.0;
        }
        (1.0 - inter.b / den).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::super::SDice;
    use super::*;
    use comsig_graph::NodeId;

    fn sig(pairs: &[(usize, f64)]) -> Signature {
        Signature::top_k(
            NodeId::new(999_999),
            pairs.iter().map(|&(i, w)| (NodeId::new(i), w)),
            pairs.len().max(1),
        )
    }

    #[test]
    fn geometric_mean_numerator() {
        let a = sig(&[(1, 4.0)]);
        let b = sig(&[(1, 1.0)]);
        // √(4·1)/max(4,1) = 2/4 -> dist = 0.5
        let d = SHel.distance(&a, &b);
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn softer_than_sdice_on_unequal_weights() {
        let a = sig(&[(1, 9.0), (2, 1.0)]);
        let b = sig(&[(1, 1.0), (2, 1.0)]);
        assert!(SHel.distance(&a, &b) < SDice.distance(&a, &b));
    }

    #[test]
    fn agrees_with_sdice_on_equal_weights() {
        let a = sig(&[(1, 2.0), (2, 3.0)]);
        let b = sig(&[(1, 2.0), (2, 3.0), (3, 1.0)]);
        let hel = SHel.distance(&a, &b);
        let sd = SDice.distance(&a, &b);
        assert!((hel - sd).abs() < 1e-12);
    }
}
