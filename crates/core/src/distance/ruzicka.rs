//! Ruzicka (weighted Jaccard) distance (extension).

use super::{empty_rule, merge_score, BatchDistance, InterAcc, SigScalars, SignatureDistance};
use crate::signature::Signature;

/// `Dist_Ruz(σ₁, σ₂) = 1 − Σ_j min(w₁ⱼ, w₂ⱼ) / Σ_j max(w₁ⱼ, w₂ⱼ)`
/// over the *union* (weights default to 0 on the absent side).
///
/// The weighted generalisation of Jaccard. It differs from
/// [`SDice`](super::SDice) only in dropping the intersection restriction
/// in the numerator — which is vacuous for non-negative weights, making
/// Ruzicka and SDice *identical on signatures*. It is included (a) to
/// document that identity with a test, and (b) because it is the measure
/// MinHash-style consistent weighted sampling approximates, connecting
/// the exact and sketched comparison paths.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ruzicka;

impl SignatureDistance for Ruzicka {
    fn name(&self) -> &'static str {
        "Ruz"
    }

    fn distance_raw(&self, a: &Signature, b: &Signature) -> f64 {
        if let Some(d) = empty_rule(a, b) {
            return d;
        }
        merge_score(self, a, b)
    }
}

impl BatchDistance for Ruzicka {
    fn accumulate(&self, wq: f64, wc: f64) -> (f64, f64) {
        (wq.min(wc), 0.0)
    }

    fn finish(&self, q: &SigScalars, c: &SigScalars, inter: &InterAcc) -> f64 {
        // Identical to SDice's kernel (the documented identity): the
        // union min-sum equals the intersection min-sum because one-sided
        // members contribute min(w, 0) = 0, and the union max-sum
        // decomposes as `Σ w₁ + Σ w₂ − Σ_{∩} min`.
        let den = q.weight_sum + c.weight_sum - inter.a;
        if den <= 0.0 {
            return 0.0;
        }
        (1.0 - inter.a / den).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::super::SDice;
    use super::*;
    use comsig_graph::NodeId;

    fn sig(pairs: &[(usize, f64)]) -> Signature {
        Signature::top_k(
            NodeId::new(999_999),
            pairs.iter().map(|&(i, w)| (NodeId::new(i), w)),
            pairs.len().max(1),
        )
    }

    #[test]
    fn identical_to_sdice_on_signatures() {
        let cases = [
            (sig(&[(1, 2.0), (2, 5.0)]), sig(&[(1, 3.0), (3, 1.0)])),
            (sig(&[(1, 1.0)]), sig(&[(2, 1.0)])),
            (sig(&[(1, 4.0), (2, 2.0)]), sig(&[(1, 4.0), (2, 2.0)])),
        ];
        for (a, b) in cases {
            assert!(
                (Ruzicka.distance(&a, &b) - SDice.distance(&a, &b)).abs() < 1e-12,
                "Ruzicka and SDice must coincide on non-negative signatures"
            );
        }
    }

    #[test]
    fn weighted_jaccard_values() {
        // min-sum = 2, max-sum = 5 -> 1 - 2/5.
        let a = sig(&[(1, 2.0), (2, 1.0)]);
        let b = sig(&[(1, 3.0), (2, 1.0)]);
        // mins: 2 + 1 = 3; maxes: 3 + 1 = 4.
        assert!((Ruzicka.distance(&a, &b) - 0.25).abs() < 1e-12);
    }
}
