//! Overlap (Szymkiewicz–Simpson) distance (extension).

use super::{empty_rule, merge_score, BatchDistance, InterAcc, SigScalars, SignatureDistance};
use crate::signature::Signature;

/// `Dist_Ovl(σ₁, σ₂) = 1 − |S₁ ∩ S₂| / min(|S₁|, |S₂|)`.
///
/// An extension useful when signatures have very different lengths (the
/// paper truncates signatures of low-degree nodes below `k`): a short
/// signature fully contained in a long one scores distance 0, whereas
/// Jaccard would penalise the length difference.
#[derive(Debug, Clone, Copy, Default)]
pub struct Overlap;

impl SignatureDistance for Overlap {
    fn name(&self) -> &'static str {
        "Ovl"
    }

    fn distance_raw(&self, a: &Signature, b: &Signature) -> f64 {
        if let Some(d) = empty_rule(a, b) {
            return d;
        }
        merge_score(self, a, b)
    }
}

impl BatchDistance for Overlap {
    fn accumulate(&self, _wq: f64, _wc: f64) -> (f64, f64) {
        (0.0, 0.0)
    }

    fn finish(&self, q: &SigScalars, c: &SigScalars, inter: &InterAcc) -> f64 {
        // Pure integer arithmetic; an empty intersection gives 1 exactly.
        1.0 - inter.count as f64 / q.len.min(c.len) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comsig_graph::NodeId;

    fn sig(ids: &[usize]) -> Signature {
        Signature::top_k(
            NodeId::new(999_999),
            ids.iter().map(|&i| (NodeId::new(i), 1.0)),
            ids.len().max(1),
        )
    }

    #[test]
    fn containment_is_zero() {
        let short = sig(&[1, 2]);
        let long = sig(&[1, 2, 3, 4]);
        assert_eq!(Overlap.distance(&short, &long), 0.0);
        // Jaccard would say 0.5 here.
        assert!(super::super::Jaccard.distance(&short, &long) > 0.0);
    }

    #[test]
    fn partial_overlap() {
        // |∩| = 1, min = 2 -> 0.5
        let d = Overlap.distance(&sig(&[1, 2]), &sig(&[2, 3]));
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn disjoint_is_one() {
        assert_eq!(Overlap.distance(&sig(&[1]), &sig(&[2])), 1.0);
    }
}
