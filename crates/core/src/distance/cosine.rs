//! Cosine distance (extension; not in the paper's four).

use super::{empty_rule, merge_score, BatchDistance, InterAcc, SigScalars, SignatureDistance};
use crate::signature::Signature;

/// `Dist_Cos(σ₁, σ₂) = 1 − (σ₁ · σ₂) / (‖σ₁‖·‖σ₂‖)`.
///
/// Included as an extension because signatures are sparse non-negative
/// vectors, making cosine the de-facto baseline in neighbouring
/// literature (collaborative filtering, document similarity). With
/// non-negative weights the value stays in `[0, 1]`. Scale-invariant,
/// unlike [`SDice`](super::SDice)/[`SHel`](super::SHel).
#[derive(Debug, Clone, Copy, Default)]
pub struct Cosine;

impl SignatureDistance for Cosine {
    fn name(&self) -> &'static str {
        "Cos"
    }

    fn distance_raw(&self, a: &Signature, b: &Signature) -> f64 {
        if let Some(d) = empty_rule(a, b) {
            return d;
        }
        merge_score(self, a, b)
    }
}

impl BatchDistance for Cosine {
    fn accumulate(&self, wq: f64, wc: f64) -> (f64, f64) {
        (wq * wc, 0.0)
    }

    fn finish(&self, q: &SigScalars, c: &SigScalars, inter: &InterAcc) -> f64 {
        // The dot product only collects intersection terms (absent-side
        // weights are 0) and each squared norm is a pure per-signature
        // scalar. Disjoint pairs score 1 − 0 = 1 exactly.
        if q.sq_sum <= 0.0 || c.sq_sum <= 0.0 {
            return 1.0;
        }
        (1.0 - inter.a / (q.sq_sum.sqrt() * c.sq_sum.sqrt())).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comsig_graph::NodeId;

    fn sig(pairs: &[(usize, f64)]) -> Signature {
        Signature::top_k(
            NodeId::new(999_999),
            pairs.iter().map(|&(i, w)| (NodeId::new(i), w)),
            pairs.len().max(1),
        )
    }

    #[test]
    fn scale_invariant() {
        let a = sig(&[(1, 1.0), (2, 2.0)]);
        let b = sig(&[(1, 10.0), (2, 20.0)]);
        assert!(Cosine.distance(&a, &b) < 1e-12);
    }

    #[test]
    fn orthogonal_is_one() {
        let a = sig(&[(1, 1.0)]);
        let b = sig(&[(2, 1.0)]);
        assert_eq!(Cosine.distance(&a, &b), 1.0);
    }

    #[test]
    fn partial_overlap_in_between() {
        let a = sig(&[(1, 1.0), (2, 1.0)]);
        let b = sig(&[(2, 1.0), (3, 1.0)]);
        let d = Cosine.distance(&a, &b);
        assert!((d - 0.5).abs() < 1e-12);
    }
}
