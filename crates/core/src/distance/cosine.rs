//! Cosine distance (extension; not in the paper's four).

use super::{empty_rule, SignatureDistance};
use crate::signature::Signature;

/// `Dist_Cos(σ₁, σ₂) = 1 − (σ₁ · σ₂) / (‖σ₁‖·‖σ₂‖)`.
///
/// Included as an extension because signatures are sparse non-negative
/// vectors, making cosine the de-facto baseline in neighbouring
/// literature (collaborative filtering, document similarity). With
/// non-negative weights the value stays in `[0, 1]`. Scale-invariant,
/// unlike [`SDice`](super::SDice)/[`SHel`](super::SHel).
#[derive(Debug, Clone, Copy, Default)]
pub struct Cosine;

impl SignatureDistance for Cosine {
    fn name(&self) -> &'static str {
        "Cos"
    }

    fn distance_raw(&self, a: &Signature, b: &Signature) -> f64 {
        if let Some(d) = empty_rule(a, b) {
            return d;
        }
        let mut dot = 0.0;
        let mut na = 0.0;
        let mut nb = 0.0;
        for (_, w1, w2) in a.union_weights(b) {
            dot += w1 * w2;
            na += w1 * w1;
            nb += w2 * w2;
        }
        if na <= 0.0 || nb <= 0.0 {
            return 1.0;
        }
        (1.0 - dot / (na.sqrt() * nb.sqrt())).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comsig_graph::NodeId;

    fn sig(pairs: &[(usize, f64)]) -> Signature {
        Signature::top_k(
            NodeId::new(999_999),
            pairs.iter().map(|&(i, w)| (NodeId::new(i), w)),
            pairs.len().max(1),
        )
    }

    #[test]
    fn scale_invariant() {
        let a = sig(&[(1, 1.0), (2, 2.0)]);
        let b = sig(&[(1, 10.0), (2, 20.0)]);
        assert!(Cosine.distance(&a, &b) < 1e-12);
    }

    #[test]
    fn orthogonal_is_one() {
        let a = sig(&[(1, 1.0)]);
        let b = sig(&[(2, 1.0)]);
        assert_eq!(Cosine.distance(&a, &b), 1.0);
    }

    #[test]
    fn partial_overlap_in_between() {
        let a = sig(&[(1, 1.0), (2, 1.0)]);
        let b = sig(&[(2, 1.0), (3, 1.0)]);
        let d = Cosine.distance(&a, &b);
        assert!((d - 0.5).abs() < 1e-12);
    }
}
