//! Signature distance functions (Section IV-B of the paper).
//!
//! All distances map a pair of signatures into `[0, 1]`, with 0 meaning
//! identical and 1 meaning disjoint. The paper's four measures are
//! implemented exactly as printed:
//!
//! * [`Jaccard`] — `1 − |S₁∩S₂| / |S₁∪S₂|` (set overlap, weights ignored);
//! * [`Dice`] — `1 − Σ_{j∈∩}(w₁ⱼ+w₂ⱼ) / Σ_{j∈∪}(w₁ⱼ+w₂ⱼ)`;
//! * [`SDice`] — `1 − Σ_{j∈∩} min(w₁ⱼ,w₂ⱼ) / Σ_{j∈∪} max(w₁ⱼ,w₂ⱼ)`
//!   (scaled Dice: rewards *similar* weights, not just co-occurrence);
//! * [`SHel`] — `1 − Σ_{j∈∩} √(w₁ⱼ·w₂ⱼ) / Σ_{j∈∪} max(w₁ⱼ,w₂ⱼ)`
//!   (Hellinger-style: softer than `min` on unequal weights).
//!
//! Two extensions round out the library: [`Cosine`] and [`Overlap`].
//!
//! **Empty-signature convention**: two empty signatures are identical
//! (distance 0); an empty vs a non-empty signature are maximally far
//! (distance 1). The paper never divides 0 by 0 because it only evaluates
//! nodes with non-empty signatures; the convention makes the functions
//! total without affecting those evaluations.

mod batch;
mod cosine;
mod dice;
mod jaccard;
mod overlap;
mod ruzicka;
mod sdice;
mod shel;

pub use batch::{merge_score, BatchDistance, InterAcc, MatchWorkspace, SigScalars};
pub use cosine::Cosine;
pub use dice::Dice;
pub use jaccard::Jaccard;
pub use overlap::Overlap;
pub use ruzicka::Ruzicka;
pub use sdice::SDice;
pub use shel::SHel;

use crate::signature::Signature;

/// A bounded distance between two signatures.
pub trait SignatureDistance: Sync {
    /// Name used in reports (e.g. `"SHel"`).
    #[must_use]
    fn name(&self) -> &'static str;

    /// The distance formula itself, without the Definition 2 contract
    /// check. Implementors provide this; callers use
    /// [`distance`](SignatureDistance::distance), which wraps it with
    /// the `[0, 1]`-boundedness contract.
    #[must_use]
    fn distance_raw(&self, a: &Signature, b: &Signature) -> f64;

    /// The distance `Dist(σ₁, σ₂) ∈ [0, 1]`, contract-checked in debug
    /// builds (and under the `contracts` feature).
    #[must_use]
    fn distance(&self, a: &Signature, b: &Signature) -> f64 {
        let d = self.distance_raw(a, b);
        crate::contract::check_unit_interval(self.name(), d);
        d
    }

    /// The similarity `1 − Dist(σ₁, σ₂)`.
    #[must_use]
    fn similarity(&self, a: &Signature, b: &Signature) -> f64 {
        1.0 - self.distance(a, b)
    }
}

/// Resolves the empty-signature edge cases shared by every measure;
/// returns `None` when the regular formula should run.
pub(crate) fn empty_rule(a: &Signature, b: &Signature) -> Option<f64> {
    match (a.is_empty(), b.is_empty()) {
        (true, true) => Some(0.0),
        (true, false) | (false, true) => Some(1.0),
        (false, false) => None,
    }
}

/// The paper's four distance functions, boxed, in presentation order —
/// convenient for experiments that sweep "all distances". Boxed as
/// [`BatchDistance`] (every implemented distance is one) so the same
/// registry drives both per-pair calls and the index-backed matchers.
#[must_use]
pub fn paper_distances() -> Vec<Box<dyn BatchDistance>> {
    vec![
        Box::new(Jaccard),
        Box::new(Dice),
        Box::new(SDice),
        Box::new(SHel),
    ]
}

/// All implemented distance functions (the paper's four plus extensions).
#[must_use]
pub fn all_distances() -> Vec<Box<dyn BatchDistance>> {
    vec![
        Box::new(Jaccard),
        Box::new(Dice),
        Box::new(SDice),
        Box::new(SHel),
        Box::new(Cosine),
        Box::new(Overlap),
        Box::new(Ruzicka),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use comsig_graph::NodeId;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn sig(pairs: &[(usize, f64)]) -> Signature {
        Signature::top_k(
            n(999_999),
            pairs.iter().map(|&(i, w)| (n(i), w)),
            pairs.len().max(1),
        )
    }

    #[test]
    fn all_distances_identity_and_bounds() {
        let a = sig(&[(1, 0.5), (2, 0.3), (3, 0.2)]);
        let b = sig(&[(3, 0.1), (4, 0.9)]);
        let disjoint = sig(&[(7, 1.0)]);
        for d in all_distances() {
            assert!(
                d.distance(&a, &a) < 1e-12,
                "{}: self-distance not 0",
                d.name()
            );
            let x = d.distance(&a, &b);
            assert!((0.0..=1.0).contains(&x), "{}: out of range", d.name());
            assert!(
                (d.distance(&a, &disjoint) - 1.0).abs() < 1e-12,
                "{}: disjoint not 1",
                d.name()
            );
            // symmetry
            assert!(
                (d.distance(&a, &b) - d.distance(&b, &a)).abs() < 1e-12,
                "{}: asymmetric",
                d.name()
            );
            // similarity complements distance
            assert!((d.similarity(&a, &b) + x - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_conventions_hold_for_all() {
        let a = sig(&[(1, 0.5)]);
        let e = Signature::empty();
        for d in all_distances() {
            assert_eq!(d.distance(&e, &e), 0.0, "{}", d.name());
            assert_eq!(d.distance(&a, &e), 1.0, "{}", d.name());
            assert_eq!(d.distance(&e, &a), 1.0, "{}", d.name());
        }
    }

    #[test]
    fn registries() {
        assert_eq!(paper_distances().len(), 4);
        assert_eq!(all_distances().len(), 7);
        let names: Vec<_> = paper_distances().iter().map(|d| d.name()).collect();
        assert_eq!(names, vec!["Jac", "Dice", "SDice", "SHel"]);
    }
}
