//! Jaccard set distance.

use super::{empty_rule, merge_score, BatchDistance, InterAcc, SigScalars, SignatureDistance};
use crate::signature::Signature;

/// `Dist_Jac(σ₁, σ₂) = 1 − |S₁ ∩ S₂| / |S₁ ∪ S₂|`.
///
/// Pure set overlap of the signature node sets; weights are ignored. It is
/// 0 exactly when the node sets coincide and 1 when they are disjoint.
/// Because it discards weights it is the natural target for MinHash/LSH
/// acceleration (Section VI).
#[derive(Debug, Clone, Copy, Default)]
pub struct Jaccard;

impl SignatureDistance for Jaccard {
    fn name(&self) -> &'static str {
        "Jac"
    }

    fn distance_raw(&self, a: &Signature, b: &Signature) -> f64 {
        if let Some(d) = empty_rule(a, b) {
            return d;
        }
        merge_score(self, a, b)
    }
}

impl BatchDistance for Jaccard {
    fn accumulate(&self, _wq: f64, _wc: f64) -> (f64, f64) {
        (0.0, 0.0)
    }

    fn finish(&self, q: &SigScalars, c: &SigScalars, inter: &InterAcc) -> f64 {
        // `|S₁ ∪ S₂| = |S₁| + |S₂| − |S₁ ∩ S₂|` in exact integer
        // arithmetic; an empty intersection gives 1 − 0 = 1 exactly.
        let union = q.len + c.len - inter.count;
        1.0 - inter.count as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comsig_graph::NodeId;

    fn sig(ids: &[usize]) -> Signature {
        Signature::top_k(
            NodeId::new(999_999),
            ids.iter().map(|&i| (NodeId::new(i), 1.0)),
            ids.len().max(1),
        )
    }

    #[test]
    fn half_overlap() {
        // |∩| = 1, |∪| = 3 -> dist = 2/3
        let d = Jaccard.distance(&sig(&[1, 2]), &sig(&[2, 3]));
        assert!((d - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn weights_ignored() {
        let a = Signature::top_k(NodeId::new(99), vec![(NodeId::new(1), 0.9)], 1);
        let b = Signature::top_k(NodeId::new(99), vec![(NodeId::new(1), 0.1)], 1);
        assert_eq!(Jaccard.distance(&a, &b), 0.0);
    }

    #[test]
    fn subset_distance() {
        // |∩| = 2, |∪| = 3 -> 1/3
        let d = Jaccard.distance(&sig(&[1, 2]), &sig(&[1, 2, 3]));
        assert!((d - 1.0 / 3.0).abs() < 1e-12);
    }
}
