//! Scaled Dice distance.

use super::{empty_rule, merge_score, BatchDistance, InterAcc, SigScalars, SignatureDistance};
use crate::signature::Signature;

/// `Dist_SDice(σ₁, σ₂) = 1 − Σ_{j∈S₁∩S₂} min(w₁ⱼ, w₂ⱼ) / Σ_{j∈S₁∪S₂} max(w₁ⱼ, w₂ⱼ)`.
///
/// A scaled version of [`Dice`](super::Dice): it "gives an added premium
/// if the individual weights in S₁ and S₂ are similar". Taking `min` in
/// the numerator may over-penalise unequal weights — the motivation for
/// [`SHel`](super::SHel).
///
/// For nodes present on one side only, `max(w, 0) = w` contributes to the
/// denominator, exactly as the paper's union sum prescribes.
#[derive(Debug, Clone, Copy, Default)]
pub struct SDice;

impl SignatureDistance for SDice {
    fn name(&self) -> &'static str {
        "SDice"
    }

    fn distance_raw(&self, a: &Signature, b: &Signature) -> f64 {
        if let Some(d) = empty_rule(a, b) {
            return d;
        }
        merge_score(self, a, b)
    }
}

impl BatchDistance for SDice {
    fn accumulate(&self, wq: f64, wc: f64) -> (f64, f64) {
        (wq.min(wc), 0.0)
    }

    fn finish(&self, q: &SigScalars, c: &SigScalars, inter: &InterAcc) -> f64 {
        // `max(w₁, w₂) = w₁ + w₂ − min(w₁, w₂)` member-wise, so the union
        // max-sum decomposes as `Σ w₁ + Σ w₂ − Σ_{∩} min` (one-sided
        // members contribute their full weight). Disjoint pairs score
        // 1 − 0/(Σw₁ + Σw₂) = 1 exactly.
        let den = q.weight_sum + c.weight_sum - inter.a;
        if den <= 0.0 {
            return 0.0;
        }
        (1.0 - inter.a / den).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comsig_graph::NodeId;

    fn sig(pairs: &[(usize, f64)]) -> Signature {
        Signature::top_k(
            NodeId::new(999_999),
            pairs.iter().map(|&(i, w)| (NodeId::new(i), w)),
            pairs.len().max(1),
        )
    }

    #[test]
    fn unequal_weights_penalised() {
        let a = sig(&[(1, 9.0)]);
        let b = sig(&[(1, 1.0)]);
        // min/max = 1/9 -> dist = 8/9; Dice would say 0.
        let d = SDice.distance(&a, &b);
        assert!((d - 8.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn equal_weights_rewarded() {
        let a = sig(&[(1, 5.0), (2, 5.0)]);
        let b = sig(&[(1, 5.0), (2, 5.0)]);
        assert_eq!(SDice.distance(&a, &b), 0.0);
    }

    #[test]
    fn mixed_membership() {
        let a = sig(&[(1, 4.0), (2, 2.0)]);
        let b = sig(&[(1, 2.0), (3, 6.0)]);
        // num = min(4,2) = 2; den = max(4,2) + 2 + 6 = 12 -> 1 - 2/12
        let d = SDice.distance(&a, &b);
        assert!((d - (1.0 - 2.0 / 12.0)).abs() < 1e-12);
    }
}
