//! Weighted Dice distance.

use super::{empty_rule, merge_score, BatchDistance, InterAcc, SigScalars, SignatureDistance};
use crate::signature::Signature;

/// `Dist_Dice(σ₁, σ₂) = 1 − Σ_{j∈S₁∩S₂}(w₁ⱼ + w₂ⱼ) / Σ_{j∈S₁∪S₂}(w₁ⱼ + w₂ⱼ)`.
///
/// An extension of the Dice criterion used in the repetitive-debtor work:
/// shared nodes contribute both sides' weights, so heavily weighted common
/// members dominate, but the *relationship between* `w₁ⱼ` and `w₂ⱼ` is not
/// examined (contrast [`SDice`](super::SDice)).
#[derive(Debug, Clone, Copy, Default)]
pub struct Dice;

impl SignatureDistance for Dice {
    fn name(&self) -> &'static str {
        "Dice"
    }

    fn distance_raw(&self, a: &Signature, b: &Signature) -> f64 {
        if let Some(d) = empty_rule(a, b) {
            return d;
        }
        merge_score(self, a, b)
    }
}

impl BatchDistance for Dice {
    fn accumulate(&self, wq: f64, wc: f64) -> (f64, f64) {
        (wq + wc, 0.0)
    }

    fn finish(&self, q: &SigScalars, c: &SigScalars, inter: &InterAcc) -> f64 {
        // The union sum decomposes per side:
        // `Σ_{j∈∪}(w₁ⱼ + w₂ⱼ) = Σ w₁ + Σ w₂` (absent-side weights are 0).
        // An empty intersection gives 1 − 0/den = 1 exactly; the clamp
        // only absorbs the ulp where the reordered numerator rounds past
        // the denominator on (near-)identical signatures.
        let den = q.weight_sum + c.weight_sum;
        if den <= 0.0 {
            return 0.0;
        }
        (1.0 - inter.a / den).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comsig_graph::NodeId;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn sig(pairs: &[(usize, f64)]) -> Signature {
        Signature::top_k(
            n(999_999),
            pairs.iter().map(|&(i, w)| (n(i), w)),
            pairs.len().max(1),
        )
    }

    #[test]
    fn shared_heavy_node_dominates() {
        let a = sig(&[(1, 10.0), (2, 1.0)]);
        let b = sig(&[(1, 10.0), (3, 1.0)]);
        // num = 20, den = 22 -> dist = 2/22
        let d = Dice.distance(&a, &b);
        assert!((d - 2.0 / 22.0).abs() < 1e-12);
    }

    #[test]
    fn identical_sets_different_weights_still_zero() {
        // Dice only checks membership; same node set -> distance 0 even
        // with different weights (this is what SDice improves on).
        let a = sig(&[(1, 9.0)]);
        let b = sig(&[(1, 1.0)]);
        assert_eq!(Dice.distance(&a, &b), 0.0);
    }

    #[test]
    fn light_shared_node_contributes_little() {
        let a = sig(&[(1, 1.0), (2, 10.0)]);
        let b = sig(&[(1, 1.0), (3, 10.0)]);
        // num = 2, den = 22 -> dist = 20/22
        let d = Dice.distance(&a, &b);
        assert!((d - 20.0 / 22.0).abs() < 1e-12);
    }
}
