//! The `comsig` binary: thin wrapper over [`comsig_cli::run`].

#![forbid(unsafe_code)]

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    match comsig_cli::run(&args, &mut out) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
