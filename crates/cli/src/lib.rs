//! # comsig-cli
//!
//! The `comsig` command-line tool: the workspace's functionality on
//! plain-text edge-list files (`time src dst [weight]` per line, the
//! format of [`comsig_graph::io`]).
//!
//! ```text
//! comsig gen flow --locals 100 --out events.txt     # synthetic workload
//! comsig stats --input events.txt                   # per-window stats
//! comsig sign --input events.txt --scheme rwr:h=3,c=0.1,undirected \
//!             --node local0 --k 10                  # one signature
//! comsig match --input events.txt --windows 0 1     # who-is-who ranking
//! comsig detect multiusage --input events.txt --threshold 0.5
//! comsig detect anomaly --input events.txt --windows 0 1 --top 10
//! comsig advise masquerading                        # scheme selection
//! ```
//!
//! The library layer ([`run`]) takes an argument vector and a writer, so
//! the whole surface is unit-testable without spawning processes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod commands;
pub mod spec;

pub use commands::run;
pub use spec::{parse_distance, parse_scheme};

/// CLI errors: bad usage or I/O/parse failures, both rendered to the user.
#[derive(Debug)]
pub enum CliError {
    /// The command line itself is invalid; the string is the usage hint.
    Usage(String),
    /// The command failed while running.
    Failed(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Failed(msg) => write!(f, "error: {msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Failed(e.to_string())
    }
}

impl From<comsig_graph::GraphError> for CliError {
    fn from(e: comsig_graph::GraphError) -> Self {
        CliError::Failed(e.to_string())
    }
}
