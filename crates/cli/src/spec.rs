//! Parsing of scheme/distance specifications and flag maps.

use rustc_hash::FxHashMap;

use comsig_core::distance::{BatchDistance, Cosine, Dice, Jaccard, Overlap, SDice, SHel};
use comsig_core::pipeline::DeltaScheme;
use comsig_core::scheme::{PushRwr, Rwr, Scaling, SignatureScheme, TopTalkers, UnexpectedTalkers};

use crate::CliError;

/// A parsed concrete scheme, before boxing behind a trait object —
/// every variant implements both [`SignatureScheme`] and [`DeltaScheme`].
enum ConcreteScheme {
    Tt(TopTalkers),
    Ut(UnexpectedTalkers),
    Rwr(Rwr),
    Push(PushRwr),
}

impl ConcreteScheme {
    fn into_scheme(self) -> Box<dyn SignatureScheme> {
        match self {
            ConcreteScheme::Tt(s) => Box::new(s),
            ConcreteScheme::Ut(s) => Box::new(s),
            ConcreteScheme::Rwr(s) => Box::new(s),
            ConcreteScheme::Push(s) => Box::new(s),
        }
    }

    fn into_delta_scheme(self) -> Box<dyn DeltaScheme> {
        match self {
            ConcreteScheme::Tt(s) => Box::new(s),
            ConcreteScheme::Ut(s) => Box::new(s),
            ConcreteScheme::Rwr(s) => Box::new(s),
            ConcreteScheme::Push(s) => Box::new(s),
        }
    }
}

fn parse_concrete(spec: &str) -> Result<ConcreteScheme, CliError> {
    let (head, rest) = match spec.split_once(':') {
        Some((h, r)) => (h, r),
        None => (spec, ""),
    };
    match head {
        "tt" => Ok(ConcreteScheme::Tt(TopTalkers)),
        "ut" => match rest {
            "" | "ratio" => Ok(ConcreteScheme::Ut(UnexpectedTalkers::new())),
            "tfidf" => Ok(ConcreteScheme::Ut(UnexpectedTalkers::with_scaling(
                Scaling::TfIdf,
            ))),
            "log" => Ok(ConcreteScheme::Ut(UnexpectedTalkers::with_scaling(
                Scaling::LogNovelty,
            ))),
            other => Err(CliError::Usage(format!(
                "unknown UT scaling `{other}` (ratio|tfidf|log)"
            ))),
        },
        "rwr" => {
            let opts = parse_kv(rest)?;
            let c = get_f64(&opts, "c")?.unwrap_or(0.1);
            let mut scheme = match get_f64(&opts, "h")? {
                Some(h) if h >= 1.0 => Rwr::truncated(c, h as u32),
                Some(h) => {
                    return Err(CliError::Usage(format!("h must be >= 1, got {h}")));
                }
                None => Rwr::full(c),
            };
            if opts.contains_key("undirected") {
                scheme = scheme.undirected();
            }
            Ok(ConcreteScheme::Rwr(scheme))
        }
        "push" => {
            let opts = parse_kv(rest)?;
            let c = get_f64(&opts, "c")?.unwrap_or(0.1);
            let eps = get_f64(&opts, "eps")?.unwrap_or(1e-4);
            let mut scheme = PushRwr::new(c, eps);
            if opts.contains_key("undirected") {
                scheme = scheme.undirected();
            }
            Ok(ConcreteScheme::Push(scheme))
        }
        other => Err(CliError::Usage(format!(
            "unknown scheme `{other}` (tt|ut|rwr|push)"
        ))),
    }
}

/// Parses a scheme specification:
///
/// * `tt`
/// * `ut`, `ut:tfidf`, `ut:log`
/// * `rwr:h=3,c=0.1[,undirected]` (omit `h` for the steady state)
/// * `push:c=0.1,eps=1e-4[,undirected]`
pub fn parse_scheme(spec: &str) -> Result<Box<dyn SignatureScheme>, CliError> {
    parse_concrete(spec).map(ConcreteScheme::into_scheme)
}

/// Parses the same scheme grammar as [`parse_scheme`], but as a
/// [`DeltaScheme`] for the streaming pipeline (`comsig stream`). Every
/// scheme is accepted; RWR^∞ and PushRWR advance by full recompute.
pub fn parse_delta_scheme(spec: &str) -> Result<Box<dyn DeltaScheme>, CliError> {
    parse_concrete(spec).map(ConcreteScheme::into_delta_scheme)
}

/// Parses a distance name: `jac|dice|sdice|shel|cos|ovl`.
pub fn parse_distance(name: &str) -> Result<Box<dyn BatchDistance>, CliError> {
    match name {
        "jac" | "jaccard" => Ok(Box::new(Jaccard)),
        "dice" => Ok(Box::new(Dice)),
        "sdice" => Ok(Box::new(SDice)),
        "shel" => Ok(Box::new(SHel)),
        "cos" | "cosine" => Ok(Box::new(Cosine)),
        "ovl" | "overlap" => Ok(Box::new(Overlap)),
        other => Err(CliError::Usage(format!(
            "unknown distance `{other}` (jac|dice|sdice|shel|cos|ovl)"
        ))),
    }
}

fn parse_kv(rest: &str) -> Result<FxHashMap<String, String>, CliError> {
    let mut map = FxHashMap::default();
    if rest.is_empty() {
        return Ok(map);
    }
    for part in rest.split(',') {
        match part.split_once('=') {
            Some((k, v)) => {
                map.insert(k.trim().to_owned(), v.trim().to_owned());
            }
            None => {
                map.insert(part.trim().to_owned(), String::new());
            }
        }
    }
    Ok(map)
}

fn get_f64(opts: &FxHashMap<String, String>, key: &str) -> Result<Option<f64>, CliError> {
    match opts.get(key) {
        None => Ok(None),
        Some(v) => v
            .parse::<f64>()
            .map(Some)
            .map_err(|_| CliError::Usage(format!("`{key}` must be a number, got `{v}`"))),
    }
}

/// A parsed command line: positional arguments plus `--flag [value]`
/// options (a flag immediately followed by another flag is boolean).
#[derive(Debug, Default)]
pub struct Parsed {
    /// Positional arguments in order.
    pub positional: Vec<String>,
    /// Flag map: `--k 10` becomes `("k", "10")`; bare flags map to `""`.
    pub flags: FxHashMap<String, String>,
}

impl Parsed {
    /// Splits an argument vector into positionals and flags.
    pub fn from_args(args: &[String]) -> Parsed {
        let mut parsed = Parsed::default();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            if let Some(name) = arg.strip_prefix("--") {
                let value = args
                    .get(i + 1)
                    .filter(|v| !v.starts_with("--"))
                    .cloned()
                    .unwrap_or_default();
                if !value.is_empty() {
                    i += 1;
                }
                parsed.flags.insert(name.to_owned(), value);
            } else {
                parsed.positional.push(arg.clone());
            }
            i += 1;
        }
        parsed
    }

    /// A flag value, if present and non-empty.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .get(name)
            .map(String::as_str)
            .filter(|s| !s.is_empty())
    }

    /// Whether a (possibly bare) flag is present.
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// A required flag.
    pub fn require(&self, name: &str) -> Result<&str, CliError> {
        self.get(name)
            .ok_or_else(|| CliError::Usage(format!("missing --{name}")))
    }

    /// A flag parsed as a number, with a default.
    pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse::<T>()
                .map_err(|_| CliError::Usage(format!("--{name} must be a number, got `{v}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_specs_parse() {
        assert_eq!(parse_scheme("tt").unwrap().name(), "TT");
        assert_eq!(parse_scheme("ut").unwrap().name(), "UT");
        assert_eq!(parse_scheme("ut:tfidf").unwrap().name(), "UT-tfidf");
        assert_eq!(parse_scheme("rwr:h=3,c=0.1").unwrap().name(), "RWR^3_0.1");
        assert_eq!(
            parse_scheme("rwr:h=5,c=0.2,undirected").unwrap().name(),
            "RWR^5_0.2"
        );
        assert_eq!(parse_scheme("rwr:c=0.3").unwrap().name(), "RWR_0.3");
        assert!(parse_scheme("push:eps=1e-5")
            .unwrap()
            .name()
            .starts_with("PushRWR"));
    }

    #[test]
    fn delta_scheme_specs_parse() {
        for spec in [
            "tt",
            "ut:log",
            "rwr:h=3,c=0.1,undirected",
            "rwr:c=0.2",
            "push",
        ] {
            assert!(parse_delta_scheme(spec).is_ok(), "{spec}");
        }
        assert_eq!(parse_delta_scheme("tt").unwrap().name(), "TT");
        assert!(parse_delta_scheme("bogus").is_err());
    }

    #[test]
    fn bad_specs_rejected() {
        assert!(parse_scheme("bogus").is_err());
        assert!(parse_scheme("ut:wat").is_err());
        assert!(parse_scheme("rwr:h=abc").is_err());
        assert!(parse_scheme("rwr:h=0").is_err());
        assert!(parse_distance("nope").is_err());
    }

    #[test]
    fn distance_names_parse() {
        for name in ["jac", "dice", "sdice", "shel", "cos", "ovl"] {
            assert!(parse_distance(name).is_ok(), "{name}");
        }
        assert_eq!(parse_distance("jaccard").unwrap().name(), "Jac");
    }

    #[test]
    fn arg_splitting() {
        let args: Vec<String> = ["gen", "flow", "--locals", "50", "--quiet", "--out", "x.txt"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let p = Parsed::from_args(&args);
        assert_eq!(p.positional, vec!["gen", "flow"]);
        assert_eq!(p.get("locals"), Some("50"));
        assert_eq!(p.get("out"), Some("x.txt"));
        assert!(p.has("quiet"));
        assert_eq!(p.get("quiet"), None); // bare flag has no value
        assert_eq!(p.num::<usize>("locals", 1).unwrap(), 50);
        assert_eq!(p.num::<usize>("missing", 7).unwrap(), 7);
        assert!(p.require("nope").is_err());
        assert!(p.num::<usize>("out", 1).is_err());
    }
}
