//! Command implementations.

use std::fs::File;
use std::io::{BufReader, BufWriter, Write};

use comsig_apps::advisor::{self, Application};
use comsig_apps::anomaly::{anomaly_scores, Alarm};
use comsig_apps::masquerade::{detect_label_masquerading, DetectorConfig};
use comsig_apps::measure::{measure, rank_levels, MeasureConfig};
use comsig_apps::multiusage;
use comsig_core::scheme::SignatureScheme;
use comsig_datagen::flownet::{self, AnomalyConfig, FlowNetConfig, MultiusageConfig};
use comsig_datagen::querylog::{self, QueryLogConfig};
use comsig_eval::ranking::Ranking;
use comsig_eval::roc::self_identification;
use comsig_graph::io::{read_events_with_policy, write_events};
use comsig_graph::stats::graph_stats;
use comsig_graph::window::{GraphSequence, WindowSpec};
use comsig_graph::{CommGraph, EdgeEvent, IngestPolicy, Interner, NodeId, ShardPlan};

use crate::spec::{parse_delta_scheme, parse_distance, parse_scheme, Parsed};
use crate::CliError;

const USAGE: &str = "\
comsig — signatures for communication graphs

commands:
  gen flow|querylog   generate a synthetic workload (edge-list events)
  stats               per-window graph statistics of an event file
  sign                print node signatures
  match               cross-window identity matching (self-ID ranking/AUC)
  detect multiusage   similar-signature label pairs within one window
  detect masquerade   Algorithm 1 across two windows
  detect anomaly      persistence-based anomaly scores
  stream              online window-over-window detection: slide a window
                      across the event stream and advance signatures
                      incrementally (--task anomaly|masquerade;
                      --slide S for overlapping/gapped windows;
                      --threads N shard the advance over N workers —
                      output is bit-identical for every N;
                      --tier exact|sketch picks the maintenance tier:
                      sketch folds deltas into bounded per-node sketches
                      [tt|ut only] and fronts matching with banded LSH —
                      --cm-width/--cm-depth/--budget/--fm/--indeg-cells/
                      --indeg-depth size the sketches, --bands/--rows
                      tune LSH recall, --sketch-seed seeds both)
  compare             measure persistence/uniqueness/robustness of the
                      standard schemes on an event file (derived Table IV)
  advise              recommend a scheme for an application (Tables I-III)
  serve               run the crash-safe signature service: ingest events
                      and answer queries over a loopback JSONL socket,
                      with snapshot + WAL durability in --data-dir
                      (--seed-events FILE fixes the label space;
                      --listen ADDR, --addr-file FILE, --snapshot-every N,
                      --threads N; --tier exact|sketch with the same
                      sketch/LSH sizing flags as stream — the tier is
                      stamped into the store and checked on reopen;
                      scheme/dist/k/window flags as below)
  call                send JSONL request lines to a running service
                      (--addr ADDR or --addr-file FILE; requests as
                      positional args, or stdin when none given)
  chaos               run the fault-injection scenario corpus
                      (--list | --scenario NAME; --seed N)
  lint                run the in-tree static-analysis pass over the
                      workspace sources (--json for machine-readable
                      diagnostics; nonzero exit on any finding)
  help                this message

common flags:
  --input FILE        event file (`time src dst [weight]` per line)
  --ingest MODE       strict|quarantine|repair fault handling (default
                      strict); quarantine/repair report skipped records
  --max-bad-fraction F  abort quarantine mode when more than this fraction
                      of records is bad (default 0.05)
  --window-width W    window width in time units (default 1)
  --scheme SPEC       tt | ut[:ratio|tfidf|log] | rwr:h=3,c=0.1[,undirected]
                      | push:c=0.1,eps=1e-4[,undirected]   (default tt)
  --dist NAME         jac|dice|sdice|shel|cos|ovl (default shel)
  --k K               signature length (default 10)
";

/// Runs the CLI with `args` (excluding the program name), writing human
/// output to `out`.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let parsed = Parsed::from_args(args);
    let command = parsed.positional.first().map(String::as_str);
    match command {
        Some("gen") => cmd_gen(&parsed, out),
        Some("stats") => cmd_stats(&parsed, out),
        Some("sign") => cmd_sign(&parsed, out),
        Some("match") => cmd_match(&parsed, out),
        Some("detect") => cmd_detect(&parsed, out),
        Some("stream") => cmd_stream(&parsed, out),
        Some("compare") => cmd_compare(&parsed, out),
        Some("advise") => cmd_advise(&parsed, out),
        Some("serve") => cmd_serve(&parsed, out),
        Some("call") => cmd_call(&parsed, out),
        Some("chaos") => cmd_chaos(&parsed, out),
        Some("lint") => cmd_lint(&parsed, out),
        Some("help") | None => {
            write!(out, "{USAGE}")?;
            Ok(())
        }
        Some(other) => Err(CliError::Usage(format!(
            "unknown command `{other}`; run `comsig help`"
        ))),
    }
}

// --- shared loading ------------------------------------------------------

struct Loaded {
    interner: Interner,
    windows: GraphSequence,
}

fn ingest_policy(parsed: &Parsed) -> Result<IngestPolicy, CliError> {
    match parsed.get("ingest").unwrap_or("strict") {
        "strict" => Ok(IngestPolicy::Strict),
        "quarantine" => Ok(IngestPolicy::Quarantine {
            max_bad_fraction: parsed.num("max-bad-fraction", 0.05)?,
        }),
        "repair" => Ok(IngestPolicy::Repair),
        other => Err(CliError::Usage(format!(
            "unknown ingest mode `{other}` (strict|quarantine|repair)"
        ))),
    }
}

fn load_events(
    parsed: &Parsed,
    out: &mut dyn Write,
) -> Result<(Interner, Vec<EdgeEvent>), CliError> {
    let path = parsed.require("input")?;
    let file =
        File::open(path).map_err(|e| CliError::Failed(format!("cannot open {path}: {e}")))?;
    let mut interner = Interner::new();
    let (events, report) =
        read_events_with_policy(BufReader::new(file), &mut interner, ingest_policy(parsed)?)?;
    // Under Strict the report is always clean, so default output is
    // unchanged; tolerant modes account for every skipped/patched record.
    if !report.is_clean() {
        writeln!(
            out,
            "ingest: kept {} of {} records ({} quarantined, {} repaired)",
            report.events,
            report.records,
            report.quarantined.len(),
            report.repaired.len()
        )?;
        for q in report.quarantined.iter().take(5) {
            writeln!(out, "  quarantined line {}: {}", q.line, q.reason)?;
        }
        if report.quarantined.len() > 5 {
            writeln!(out, "  ... and {} more", report.quarantined.len() - 5)?;
        }
    }
    if events.is_empty() {
        return Err(CliError::Failed(format!("{path} contains no events")));
    }
    Ok((interner, events))
}

fn window_width(parsed: &Parsed) -> Result<u64, CliError> {
    let width: u64 = parsed.num("window-width", 1)?;
    if width == 0 {
        return Err(CliError::Usage("--window-width must be >= 1".into()));
    }
    Ok(width)
}

fn load(parsed: &Parsed, out: &mut dyn Write) -> Result<Loaded, CliError> {
    let (interner, events) = load_events(parsed, out)?;
    let width = window_width(parsed)?;
    let start = events.iter().map(|e| e.time).min().unwrap_or(0);
    let windows =
        GraphSequence::from_events(interner.len(), WindowSpec::new(start, width), &events);
    Ok(Loaded { interner, windows })
}

fn window(loaded: &Loaded, idx: usize) -> Result<&CommGraph, CliError> {
    loaded.windows.window(idx).ok_or_else(|| {
        CliError::Usage(format!(
            "window {idx} out of range (have {})",
            loaded.windows.len()
        ))
    })
}

fn active_sources(g: &CommGraph) -> Vec<NodeId> {
    g.active_sources().collect()
}

fn resolve_node(loaded: &Loaded, label: &str) -> Result<NodeId, CliError> {
    loaded
        .interner
        .get(label)
        .ok_or_else(|| CliError::Failed(format!("unknown node label `{label}`")))
}

fn scheme_of(parsed: &Parsed) -> Result<Box<dyn SignatureScheme>, CliError> {
    parse_scheme(parsed.get("scheme").unwrap_or("tt"))
}

fn dist_of(parsed: &Parsed) -> Result<Box<dyn comsig_core::distance::BatchDistance>, CliError> {
    parse_distance(parsed.get("dist").unwrap_or("shel"))
}

// --- gen ------------------------------------------------------------------

fn cmd_gen(parsed: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    let kind = parsed
        .positional
        .get(1)
        .map(String::as_str)
        .ok_or_else(|| CliError::Usage("gen needs `flow` or `querylog`".into()))?;
    let out_path = parsed.require("out")?;
    let seed: u64 = parsed.num("seed", 42)?;

    let (interner, events, truth_json): (Interner, Vec<EdgeEvent>, Option<String>) = match kind {
        "flow" => {
            let cfg = FlowNetConfig {
                num_locals: parsed.num("locals", 300)?,
                num_externals: parsed.num("externals", 20_000)?,
                num_windows: parsed.num("windows", 6)?,
                num_groups: parsed.num("groups", 30)?,
                multiusage: MultiusageConfig {
                    individuals: parsed.num("multiusage", 0)?,
                    min_labels: 2,
                    max_labels: 3,
                },
                anomaly: AnomalyConfig {
                    count: parsed.num("anomalies", 0)?,
                    window: parsed.num("anomaly-window", 1)?,
                },
                seed,
                ..FlowNetConfig::default()
            };
            let data = flownet::generate(&cfg);
            let truth = if cfg.multiusage.individuals > 0 || cfg.anomaly.count > 0 {
                let groups: Vec<Vec<String>> = data
                    .truth
                    .multiusage_groups
                    .iter()
                    .map(|g| {
                        g.iter()
                            .map(|&l| data.interner.label(l).unwrap_or("?").to_owned())
                            .collect()
                    })
                    .collect();
                let anomalous: Vec<String> = data
                    .truth
                    .anomalous
                    .iter()
                    .map(|&l| data.interner.label(l).unwrap_or("?").to_owned())
                    .collect();
                Some(
                    serde_json::json!({
                        "multiusage_groups": groups,
                        "anomalous": anomalous,
                        "anomaly_window": data.truth.anomaly_window,
                    })
                    .to_string(),
                )
            } else {
                None
            };
            let events = graphs_to_events(&data.windows);
            (data.interner, events, truth)
        }
        "querylog" => {
            let cfg = QueryLogConfig {
                num_users: parsed.num("users", 851)?,
                num_tables: parsed.num("tables", 979)?,
                num_windows: parsed.num("windows", 5)?,
                seed,
                ..QueryLogConfig::default()
            };
            let data = querylog::generate(&cfg);
            let events = graphs_to_events(&data.windows);
            (data.interner, events, None)
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown generator `{other}` (flow|querylog)"
            )));
        }
    };

    let file = File::create(out_path)
        .map_err(|e| CliError::Failed(format!("cannot create {out_path}: {e}")))?;
    let mut writer = BufWriter::new(file);
    write_events(&mut writer, &interner, &events)?;
    writer.flush()?;
    writeln!(
        out,
        "wrote {} events over {} nodes to {out_path}",
        events.len(),
        interner.len()
    )?;

    if let Some(json) = truth_json {
        if let Some(truth_path) = parsed.get("truth") {
            std::fs::write(truth_path, &json)
                .map_err(|e| CliError::Failed(format!("cannot write {truth_path}: {e}")))?;
            writeln!(out, "wrote ground truth to {truth_path}")?;
        } else {
            writeln!(out, "ground truth: {json}")?;
        }
    }
    Ok(())
}

/// Re-serialises window graphs as aggregated events (one per edge, with
/// the window index as the timestamp) — the exchange format of the tool.
fn graphs_to_events(seq: &GraphSequence) -> Vec<EdgeEvent> {
    let mut events = Vec::new();
    for (w, g) in seq.iter().enumerate() {
        for e in g.edges() {
            events.push(EdgeEvent {
                time: w as u64,
                src: e.src,
                dst: e.dst,
                weight: e.weight,
            });
        }
    }
    events
}

// --- stats ------------------------------------------------------------------

fn cmd_stats(parsed: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    let loaded = load(parsed, out)?;
    writeln!(
        out,
        "{} nodes, {} windows",
        loaded.interner.len(),
        loaded.windows.len()
    )?;
    writeln!(
        out,
        "{:>6} {:>9} {:>9} {:>12} {:>10} {:>10} {:>8}",
        "window", "active", "edges", "weight", "mean-out", "max-in", "gini-in"
    )?;
    for (w, g) in loaded.windows.iter().enumerate() {
        let s = graph_stats(g);
        writeln!(
            out,
            "{:>6} {:>9} {:>9} {:>12.1} {:>10.2} {:>10} {:>8.3}",
            w,
            s.active_nodes,
            s.num_edges,
            s.total_weight,
            s.mean_out_degree,
            s.max_in_degree,
            s.in_degree_gini
        )?;
    }
    Ok(())
}

// --- sign ------------------------------------------------------------------

fn cmd_sign(parsed: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    let loaded = load(parsed, out)?;
    let scheme = scheme_of(parsed)?;
    let k: usize = parsed.num("k", 10)?;
    let w: usize = parsed.num("window", 0)?;
    let g = window(&loaded, w)?;

    let nodes: Vec<NodeId> = match parsed.get("node") {
        Some(label) => vec![resolve_node(&loaded, label)?],
        None => active_sources(g),
    };
    for v in nodes {
        let sig = scheme.signature(g, v, k);
        let rendered: Vec<String> = sig
            .ranked()
            .into_iter()
            .map(|(u, weight)| format!("{}={weight:.4}", loaded.interner.label(u).unwrap_or("?")))
            .collect();
        writeln!(
            out,
            "{:16} {}",
            loaded.interner.label(v).unwrap_or("?"),
            rendered.join(" ")
        )?;
    }
    Ok(())
}

// --- match ------------------------------------------------------------------

fn cmd_match(parsed: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    let loaded = load(parsed, out)?;
    let scheme = scheme_of(parsed)?;
    let dist = dist_of(parsed)?;
    let k: usize = parsed.num("k", 10)?;
    let t: usize = parsed.num("from", 0)?;
    let t1: usize = parsed.num("to", t + 1)?;
    let g1 = window(&loaded, t)?;
    let g2 = window(&loaded, t1)?;

    let subjects = active_sources(g1);
    let sigs1 = scheme.signature_set(g1, &subjects, k);
    let sigs2 = scheme.signature_set(g2, &subjects, k);

    match parsed.get("query") {
        Some(label) => {
            let v = resolve_node(&loaded, label)?;
            let query = sigs1
                .get(v)
                .ok_or_else(|| CliError::Failed(format!("`{label}` has no signature")))?;
            let ranking = Ranking::rank(dist.as_ref(), query, &sigs2);
            let top: usize = parsed.num("top", 5)?;
            writeln!(out, "window-{t1} candidates closest to {label}@window-{t}:")?;
            for &(u, d) in ranking.top(top) {
                writeln!(
                    out,
                    "  {:16} dist = {d:.4}",
                    loaded.interner.label(u).unwrap_or("?")
                )?;
            }
        }
        None => {
            let result = self_identification(dist.as_ref(), &sigs1, &sigs2);
            writeln!(
                out,
                "self-identification over {} hosts ({} -> {}), scheme {}, dist {}:",
                result.per_query.len(),
                t,
                t1,
                scheme.name(),
                dist.name()
            )?;
            writeln!(out, "mean AUC = {:.4}", result.mean_auc)?;
            let mut worst = result.per_query.clone();
            worst.sort_by(|a, b| a.1.total_cmp(&b.1));
            writeln!(out, "hardest hosts:")?;
            for &(v, auc) in worst.iter().take(parsed.num("top", 5)?) {
                writeln!(
                    out,
                    "  {:16} AUC = {auc:.4}",
                    loaded.interner.label(v).unwrap_or("?")
                )?;
            }
        }
    }
    Ok(())
}

// --- detect ------------------------------------------------------------------

fn cmd_detect(parsed: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    let task = parsed
        .positional
        .get(1)
        .map(String::as_str)
        .ok_or_else(|| {
            CliError::Usage("detect needs `multiusage`, `masquerade` or `anomaly`".into())
        })?;
    if !matches!(task, "multiusage" | "masquerade" | "anomaly") {
        return Err(CliError::Usage(format!(
            "unknown detector `{task}` (multiusage|masquerade|anomaly)"
        )));
    }
    let loaded = load(parsed, out)?;
    let scheme = scheme_of(parsed)?;
    let dist = dist_of(parsed)?;
    let k: usize = parsed.num("k", 10)?;

    match task {
        "multiusage" => {
            let w: usize = parsed.num("window", 0)?;
            let g = window(&loaded, w)?;
            let subjects = active_sources(g);
            let sigs = scheme.signature_set(g, &subjects, k);
            let threshold: f64 = parsed.num("threshold", 0.5)?;
            let pairs = multiusage::detect_pairs(dist.as_ref(), &sigs, threshold);
            writeln!(
                out,
                "{} label pairs with {} distance <= {threshold}:",
                pairs.len(),
                dist.name()
            )?;
            for p in pairs {
                writeln!(
                    out,
                    "  {} <-> {}  dist = {:.4}",
                    loaded.interner.label(p.a).unwrap_or("?"),
                    loaded.interner.label(p.b).unwrap_or("?"),
                    p.distance
                )?;
            }
        }
        "masquerade" => {
            let t: usize = parsed.num("from", 0)?;
            let t1: usize = parsed.num("to", t + 1)?;
            let g1 = window(&loaded, t)?;
            let g2 = window(&loaded, t1)?;
            let subjects = active_sources(g1);
            let cfg = DetectorConfig {
                k,
                threshold_divisor: parsed.num("c", 5.0)?,
                top_l: parsed.num("l", 3)?,
            };
            let det =
                detect_label_masquerading(scheme.as_ref(), dist.as_ref(), g1, g2, &subjects, &cfg);
            writeln!(
                out,
                "delta = {:.4}; {} suspects re-paired, {} cleared:",
                det.delta,
                det.detected.len(),
                det.non_suspects.len()
            )?;
            for (v, u) in det.detected {
                writeln!(
                    out,
                    "  {} -> {}",
                    loaded.interner.label(v).unwrap_or("?"),
                    loaded.interner.label(u).unwrap_or("?")
                )?;
            }
        }
        "anomaly" => {
            let t: usize = parsed.num("from", 0)?;
            let t1: usize = parsed.num("to", t + 1)?;
            let g1 = window(&loaded, t)?;
            let g2 = window(&loaded, t1)?;
            let subjects = active_sources(g1);
            let scores = anomaly_scores(scheme.as_ref(), dist.as_ref(), g1, g2, &subjects, k);
            let top: usize = parsed.num("top", 10)?;
            writeln!(out, "top {top} anomaly scores ({} -> {}):", t, t1)?;
            for s in comsig_apps::anomaly::alarms(&scores, Alarm::TopN(top)) {
                writeln!(
                    out,
                    "  {:16} score = {:.4}",
                    loaded.interner.label(s.node).unwrap_or("?"),
                    s.score
                )?;
            }
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown detector `{other}` (multiusage|masquerade|anomaly)"
            )));
        }
    }
    Ok(())
}

// --- stream ------------------------------------------------------------------

fn cmd_stream(parsed: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    use comsig_apps::stream::{
        SketchAnomaly, SketchMasquerade, StreamingAnomaly, StreamingMasquerade, TieredAnomaly,
    };
    use comsig_eval::ann::AnnConfig;
    use comsig_graph::SlidingWindower;
    use comsig_sketch::stream::StreamConfig;
    use comsig_sketch::tier::{SketchScheme, SketchTier};

    let (interner, events) = load_events(parsed, out)?;
    let scheme_spec = parsed.get("scheme").unwrap_or("tt");
    let scheme = parse_delta_scheme(scheme_spec)?;
    let dist = dist_of(parsed)?;
    let k: usize = parsed.num("k", 10)?;
    let width = window_width(parsed)?;
    let slide: u64 = parsed.num("slide", width)?;
    if slide == 0 {
        return Err(CliError::Usage("--slide must be >= 1".into()));
    }
    let task = parsed.get("task").unwrap_or("anomaly");
    let top: usize = parsed.num("top", 5)?;
    // One config struct pins the worker count through the pipeline, the
    // index patching and the detector sweep. Every plan is bit-identical,
    // so the thread count is deliberately absent from the output.
    let threads: usize = parsed.num("threads", 0)?;
    let plan = if threads == 0 {
        ShardPlan::auto()
    } else {
        ShardPlan::new(threads)
    };
    // Tier choice: `exact` maintains the materialised graph and is
    // bit-identical to cold recomputes; `sketch` folds the deltas into
    // bounded per-node sketches (tt/ut only) and fronts matching with a
    // banded-LSH index — documented one-sided error, Θ(1) state/node.
    let tier = parsed.get("tier").unwrap_or("exact");
    let sketch_scheme = match tier {
        "exact" => None,
        "sketch" => Some(SketchScheme::parse(scheme_spec).ok_or_else(|| {
            CliError::Usage(format!(
                "--tier sketch supports tt|ut schemes, not `{scheme_spec}`"
            ))
        })?),
        other => {
            return Err(CliError::Usage(format!(
                "unknown tier `{other}` (exact|sketch)"
            )));
        }
    };
    let stream_cfg = StreamConfig {
        cm_width: parsed.num("cm-width", 128)?,
        cm_depth: parsed.num("cm-depth", 4)?,
        candidate_budget: parsed.num("budget", 64)?,
        fm_bitmaps: parsed.num("fm", 32)?,
        seed: parsed.num("sketch-seed", 1)?,
        indeg_cells: parsed.num("indeg-cells", 0)?,
        indeg_depth: parsed.num("indeg-depth", 2)?,
    };
    let ann = AnnConfig {
        bands: parsed.num("bands", AnnConfig::default().bands)?,
        rows: parsed.num("rows", AnnConfig::default().rows)?,
        seed: parsed.num("sketch-seed", AnnConfig::default().seed)?,
    };

    // Fixed subject population: every label that ever speaks.
    let mut subjects: Vec<NodeId> = {
        let set: std::collections::BTreeSet<NodeId> = events.iter().map(|e| e.src).collect();
        set.into_iter().collect()
    };
    subjects.sort_unstable();

    let start = events.iter().map(|e| e.time).min().unwrap_or(0);
    let mut windower = SlidingWindower::new(start, width, slide);
    for &e in &events {
        windower.push(e);
    }

    writeln!(
        out,
        "streaming {} over {} subjects, scheme {}, dist {} (width {width}, slide {slide})",
        task,
        subjects.len(),
        scheme.name(),
        dist.name()
    )?;
    let empty = CommGraph::empty(interner.len());

    // The per-window report lines are identical between tiers on
    // purpose: `--tier exact` output stays byte-for-byte what it was
    // before the tier seam existed.
    fn report_anomaly(
        out: &mut dyn Write,
        interner: &Interner,
        delta: &comsig_graph::WindowDelta,
        scores: &[comsig_apps::anomaly::AnomalyScore],
        report: &comsig_core::pipeline::AdvanceReport,
        top: usize,
    ) -> Result<(), CliError> {
        writeln!(
            out,
            "window [{}, {}): {} edge changes, {}/{} recomputed",
            delta.start,
            delta.end,
            report.changed_edges,
            report.dirty_subjects(),
            report.total_subjects
        )?;
        for s in scores.iter().take(top).filter(|s| s.score > 0.0) {
            writeln!(
                out,
                "  {:16} score = {:.4}",
                interner.label(s.node).unwrap_or("?"),
                s.score
            )?;
        }
        Ok(())
    }
    fn report_masquerade(
        out: &mut dyn Write,
        interner: &Interner,
        delta: &comsig_graph::WindowDelta,
        step: &comsig_apps::stream::StreamDetection,
    ) -> Result<(), CliError> {
        writeln!(
            out,
            "window [{}, {}): {} edge changes, {}/{} recomputed, delta = {:.4}, {} re-paired",
            delta.start,
            delta.end,
            step.report.changed_edges,
            step.report.dirty_subjects(),
            step.report.total_subjects,
            step.detection.delta,
            step.detection.detected.len()
        )?;
        for (v, u) in &step.detection.detected {
            writeln!(
                out,
                "  {} -> {}",
                interner.label(*v).unwrap_or("?"),
                interner.label(*u).unwrap_or("?")
            )?;
        }
        Ok(())
    }

    let mut sketch_memory = None;
    match (task, sketch_scheme) {
        ("anomaly", None) => {
            let mut det = StreamingAnomaly::with_plan(scheme.as_ref(), empty, &subjects, k, plan);
            while windower.pending_events() > 0 {
                let delta = windower.advance();
                let (scores, report) = det.advance(dist.as_ref(), &delta);
                report_anomaly(out, &interner, &delta, &scores, &report, top)?;
            }
        }
        ("anomaly", Some(s)) => {
            let tier = SketchTier::new(s, stream_cfg, &subjects, k, interner.len());
            let mut det: SketchAnomaly = TieredAnomaly::from_tier(tier);
            while windower.pending_events() > 0 {
                let delta = windower.advance();
                let (scores, report) = det.advance(dist.as_ref(), &delta);
                report_anomaly(out, &interner, &delta, &scores, &report, top)?;
            }
            sketch_memory = Some((det.tier_memory(), 0usize, det.tier().dropped_changes()));
        }
        ("masquerade", None) => {
            let cfg = DetectorConfig {
                k,
                threshold_divisor: parsed.num("c", 5.0)?,
                top_l: parsed.num("l", 3)?,
            };
            let mut det =
                StreamingMasquerade::with_plan(scheme.as_ref(), empty, &subjects, cfg, plan);
            while windower.pending_events() > 0 {
                let delta = windower.advance();
                let step = det.advance(dist.as_ref(), &delta);
                report_masquerade(out, &interner, &delta, &step)?;
            }
        }
        ("masquerade", Some(s)) => {
            use comsig_eval::ann::SubjectMatcher;
            let cfg = DetectorConfig {
                k,
                threshold_divisor: parsed.num("c", 5.0)?,
                top_l: parsed.num("l", 3)?,
            };
            let mut det = SketchMasquerade::new_sketch(
                s,
                stream_cfg,
                &subjects,
                interner.len(),
                cfg,
                ann,
                plan,
            );
            while windower.pending_events() > 0 {
                let delta = windower.advance();
                let step = det.advance(dist.as_ref(), &delta);
                report_masquerade(out, &interner, &delta, &step)?;
            }
            sketch_memory = Some((
                det.tier_memory(),
                det.matcher().memory_entries(),
                det.tier().dropped_changes(),
            ));
        }
        (other, _) => {
            return Err(CliError::Usage(format!(
                "unknown stream task `{other}` (anomaly|masquerade)"
            )));
        }
    }
    if let Some((mem, matcher_entries, dropped)) = sketch_memory {
        writeln!(
            out,
            "sketch tier: {} state entries (~{} KiB), {} matcher entries, {} dropped changes",
            mem.state_entries,
            mem.state_bytes / 1024,
            matcher_entries,
            dropped
        )?;
    }
    writeln!(
        out,
        "stream drained: {} invalid, {} late, {} gap-dropped events",
        windower.invalid_events(),
        windower.late_events(),
        windower.gap_events()
    )?;
    Ok(())
}

// --- compare ------------------------------------------------------------------

fn cmd_compare(parsed: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    let loaded = load(parsed, out)?;
    if loaded.windows.len() < 2 {
        return Err(CliError::Failed(
            "compare needs at least two windows".into(),
        ));
    }
    let dist = dist_of(parsed)?;
    let t: usize = parsed.num("from", 0)?;
    let t1: usize = parsed.num("to", t + 1)?;
    let g1 = window(&loaded, t)?;
    let g2 = window(&loaded, t1)?;
    let subjects = active_sources(g1);
    let cfg = MeasureConfig {
        k: parsed.num("k", 10)?,
        perturbation: parsed.num("perturbation", 0.4)?,
        seed: parsed.num("seed", 4242)?,
    };

    let schemes: Vec<Box<dyn SignatureScheme>> = vec![
        parse_scheme("tt")?,
        parse_scheme("ut")?,
        parse_scheme("rwr:h=3,c=0.1,undirected")?,
    ];
    let measured: Vec<_> = schemes
        .iter()
        .map(|s| measure(s.as_ref(), dist.as_ref(), g1, g2, &subjects, &cfg))
        .collect();

    writeln!(
        out,
        "{:12} {:>12} {:>11} {:>11}",
        "scheme", "persistence", "uniqueness", "robustness"
    )?;
    for m in &measured {
        writeln!(
            out,
            "{:12} {:>12.3} {:>11.3} {:>11.3}",
            m.scheme, m.persistence, m.uniqueness, m.robustness
        )?;
    }
    let p = rank_levels(&measured.iter().map(|m| m.persistence).collect::<Vec<_>>());
    let u = rank_levels(&measured.iter().map(|m| m.uniqueness).collect::<Vec<_>>());
    let r = rank_levels(&measured.iter().map(|m| m.robustness).collect::<Vec<_>>());
    writeln!(out, "derived levels (paper Table IV layout):")?;
    for (i, m) in measured.iter().enumerate() {
        writeln!(
            out,
            "{:12} {:>12} {:>11} {:>11}",
            m.scheme, p[i], u[i], r[i]
        )?;
    }
    Ok(())
}

// --- advise ------------------------------------------------------------------

fn cmd_advise(parsed: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    let app = match parsed.positional.get(1).map(String::as_str) {
        Some("multiusage") => Application::MultiusageDetection,
        Some("masquerading" | "masquerade") => Application::LabelMasquerading,
        Some("anomaly") => Application::AnomalyDetection,
        other => {
            return Err(CliError::Usage(format!(
                "advise needs multiusage|masquerading|anomaly, got {other:?}"
            )));
        }
    };
    writeln!(out, "requirements for {app} (paper Table I):")?;
    for (property, need) in app.requirements() {
        writeln!(out, "  {property:?}: {need:?}")?;
    }
    writeln!(out, "recommendations (paper Tables II & III):")?;
    for rec in advisor::recommend(app, &advisor::paper_profiles()) {
        let gaps = if rec.gaps.is_empty() {
            "covers all requirements".to_owned()
        } else {
            format!("missing {:?}", rec.gaps)
        };
        writeln!(out, "  {:6} score = {}  ({gaps})", rec.scheme, rec.score)?;
    }
    Ok(())
}

// --- serve ------------------------------------------------------------------

fn cmd_serve(parsed: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    use comsig_eval::ann::AnnConfig;
    use comsig_serve::config::TierSpec;
    use comsig_serve::{run_server, ServeConfig, ServerOpts};
    use comsig_sketch::stream::StreamConfig;
    use comsig_sketch::tier::SketchScheme;

    let data_dir = parsed.require("data-dir")?;
    let seed_path = parsed.require("seed-events")?;
    let file = File::open(seed_path)
        .map_err(|e| CliError::Failed(format!("cannot open {seed_path}: {e}")))?;
    let mut interner = Interner::new();
    let ingest = ingest_policy(parsed)?;
    let (seed_events, _report) =
        read_events_with_policy(BufReader::new(file), &mut interner, ingest)?;
    if seed_events.is_empty() {
        return Err(CliError::Failed(format!(
            "{seed_path} contains no events (the seed fixes the label space)"
        )));
    }
    let subjects = comsig_serve::state::subject_sources(&seed_events);

    let scheme_spec = parsed.get("scheme").unwrap_or("tt").to_owned();
    let dist_spec = parsed.get("dist").unwrap_or("shel").to_owned();
    let scheme = parse_delta_scheme(&scheme_spec)?;
    let dist = parse_distance(&dist_spec)?;
    let width = window_width(parsed)?;
    let slide: u64 = parsed.num("slide", width)?;
    if slide == 0 {
        return Err(CliError::Usage("--slide must be >= 1".into()));
    }
    let default_start = seed_events.iter().map(|e| e.time).min().unwrap_or(0);
    // Tier choice mirrors `comsig stream`: the sketch tier only covers
    // tt/ut schemes, so reject the combination before the server stamps
    // its config and the mistake becomes durable.
    let tier_spec = parsed.get("tier").unwrap_or("exact");
    let tier = TierSpec::parse(tier_spec)
        .ok_or_else(|| CliError::Usage(format!("unknown tier `{tier_spec}` (exact|sketch)")))?;
    if tier == TierSpec::Sketch && SketchScheme::parse(&scheme_spec).is_none() {
        return Err(CliError::Usage(format!(
            "--tier sketch supports tt|ut schemes, not `{scheme_spec}`"
        )));
    }
    let config = ServeConfig {
        scheme_spec,
        dist_spec,
        k: parsed.num("k", 10)?,
        width,
        slide,
        start: parsed.num("start", default_start)?,
        threshold_divisor: parsed.num("c", 5.0)?,
        top_l: parsed.num("l", 3)?,
        snapshot_every: parsed.num("snapshot-every", 0)?,
        threads: parsed.num("threads", 0)?,
        ingest,
        tier,
        sketch: StreamConfig {
            cm_width: parsed.num("cm-width", 128)?,
            cm_depth: parsed.num("cm-depth", 4)?,
            candidate_budget: parsed.num("budget", 64)?,
            fm_bitmaps: parsed.num("fm", 32)?,
            seed: parsed.num("sketch-seed", 1)?,
            indeg_cells: parsed.num("indeg-cells", 0)?,
            indeg_depth: parsed.num("indeg-depth", 2)?,
        },
        ann: AnnConfig {
            bands: parsed.num("bands", AnnConfig::default().bands)?,
            rows: parsed.num("rows", AnnConfig::default().rows)?,
            seed: parsed.num("sketch-seed", AnnConfig::default().seed)?,
        },
    };
    let opts = ServerOpts {
        listen: parsed.get("listen").unwrap_or("127.0.0.1:0").to_owned(),
        addr_file: parsed.get("addr-file").map(std::path::PathBuf::from),
    };
    run_server(
        scheme.as_ref(),
        dist.as_ref(),
        config,
        std::path::Path::new(data_dir),
        comsig_serve::state::GenesisSpace { interner, subjects },
        &opts,
        out,
    )
    .map_err(|e| CliError::Failed(e.to_string()))
}

fn cmd_call(parsed: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    let addr = match (parsed.get("addr"), parsed.get("addr-file")) {
        (Some(addr), _) => addr.to_owned(),
        (None, Some(path)) => std::fs::read_to_string(path)
            .map_err(|e| CliError::Failed(format!("cannot read {path}: {e}")))?
            .trim()
            .to_owned(),
        (None, None) => {
            return Err(CliError::Usage("call needs --addr or --addr-file".into()));
        }
    };
    let mut requests: Vec<String> = parsed.positional[1..].to_vec();
    if requests.is_empty() {
        for line in std::io::stdin().lines() {
            let line = line?;
            if !line.trim().is_empty() {
                requests.push(line);
            }
        }
    }
    if requests.is_empty() {
        return Err(CliError::Usage(
            "call needs at least one request line (argument or stdin)".into(),
        ));
    }
    let responses = comsig_serve::call(&addr, &requests)
        .map_err(|e| CliError::Failed(format!("call to {addr} failed: {e}")))?;
    for response in responses {
        writeln!(out, "{response}")?;
    }
    Ok(())
}

// --- chaos ------------------------------------------------------------------

fn cmd_lint(parsed: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    // The lint is an in-tree tool: resolve the workspace root relative to
    // this crate's manifest (crates/cli → root is two levels up), falling
    // back to the current directory for a relocated binary.
    let manifest_root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let root = if manifest_root.join("Cargo.toml").exists() {
        manifest_root
    } else {
        std::path::PathBuf::from(".")
    };
    let diags = comsig_lint::run(&root);
    if parsed.has("json") {
        write!(out, "{}", comsig_lint::json::render(&diags))?;
    } else if diags.is_empty() {
        writeln!(
            out,
            "comsig lint: clean ({} source files, vendor manifest verified)",
            comsig_lint::file_count(&root)
        )?;
    } else {
        write!(out, "{}", comsig_lint::render(&diags))?;
    }
    if diags.is_empty() {
        Ok(())
    } else {
        Err(CliError::Failed(format!(
            "{} lint violation(s)",
            diags.len()
        )))
    }
}

fn cmd_chaos(parsed: &Parsed, out: &mut dyn Write) -> Result<(), CliError> {
    use comsig_chaos::scenarios;

    if parsed.has("list") {
        for s in scenarios::all() {
            writeln!(out, "{:36} {}", s.name, s.description)?;
        }
        return Ok(());
    }
    let seed: u64 = parsed.num("seed", 42)?;
    let selected = match parsed.get("scenario") {
        Some(name) => vec![scenarios::find(name).ok_or_else(|| {
            CliError::Usage(format!(
                "unknown scenario `{name}`; run `comsig chaos --list`"
            ))
        })?],
        None => scenarios::all(),
    };
    let mut failures = 0usize;
    for s in &selected {
        match (s.run)(seed) {
            Ok(summary) => writeln!(out, "ok    {:36} {summary}", s.name)?,
            Err(e) => {
                failures += 1;
                writeln!(out, "FAIL  {:36} {e}", s.name)?;
            }
        }
    }
    writeln!(
        out,
        "{} scenarios run with seed {seed}, {failures} failed",
        selected.len()
    )?;
    if failures > 0 {
        return Err(CliError::Failed(format!(
            "{failures} chaos scenarios failed"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(args: &[&str]) -> Result<String, CliError> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        run(&args, &mut buf)?;
        Ok(String::from_utf8(buf).expect("utf8 output"))
    }

    fn temp_path(name: &str) -> String {
        let dir = std::env::temp_dir().join("comsig-cli-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn help_and_unknown_command() {
        let help = run_to_string(&["help"]).unwrap();
        assert!(help.contains("comsig"));
        assert!(run_to_string(&[]).unwrap().contains("commands:"));
        assert!(matches!(
            run_to_string(&["frobnicate"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn gen_stats_sign_match_pipeline() {
        let events = temp_path("pipeline.events");
        let msg = run_to_string(&[
            "gen",
            "flow",
            "--locals",
            "30",
            "--externals",
            "500",
            "--groups",
            "3",
            "--windows",
            "2",
            "--seed",
            "5",
            "--out",
            &events,
        ])
        .unwrap();
        assert!(msg.contains("wrote"), "{msg}");

        let stats = run_to_string(&["stats", "--input", &events]).unwrap();
        assert!(stats.contains("2 windows"), "{stats}");

        let sigs =
            run_to_string(&["sign", "--input", &events, "--node", "local0", "--k", "5"]).unwrap();
        assert!(sigs.starts_with("local0"), "{sigs}");

        let matched = run_to_string(&[
            "match",
            "--input",
            &events,
            "--scheme",
            "rwr:h=3,c=0.1,undirected",
            "--dist",
            "shel",
        ])
        .unwrap();
        assert!(matched.contains("mean AUC"), "{matched}");

        let query = run_to_string(&[
            "match", "--input", &events, "--query", "local1", "--top", "3",
        ])
        .unwrap();
        assert!(query.contains("closest to local1"), "{query}");

        let compared = run_to_string(&["compare", "--input", &events]).unwrap();
        assert!(compared.contains("derived levels"), "{compared}");
        assert!(compared.contains("RWR^3_0.1"), "{compared}");
    }

    #[test]
    fn gen_with_truth_and_detectors() {
        let events = temp_path("truth.events");
        let truth = temp_path("truth.json");
        run_to_string(&[
            "gen",
            "flow",
            "--locals",
            "30",
            "--externals",
            "500",
            "--groups",
            "3",
            "--windows",
            "2",
            "--multiusage",
            "3",
            "--seed",
            "6",
            "--out",
            &events,
            "--truth",
            &truth,
        ])
        .unwrap();
        let truth_text = std::fs::read_to_string(&truth).unwrap();
        assert!(truth_text.contains("multiusage_groups"));

        let pairs = run_to_string(&[
            "detect",
            "multiusage",
            "--input",
            &events,
            "--threshold",
            "0.8",
        ])
        .unwrap();
        assert!(pairs.contains("label pairs"), "{pairs}");

        let anomalies =
            run_to_string(&["detect", "anomaly", "--input", &events, "--top", "3"]).unwrap();
        assert!(anomalies.contains("anomaly scores"), "{anomalies}");

        let masq =
            run_to_string(&["detect", "masquerade", "--input", &events, "--l", "2"]).unwrap();
        assert!(masq.contains("delta"), "{masq}");
    }

    #[test]
    fn gen_querylog() {
        let events = temp_path("ql.events");
        let msg = run_to_string(&[
            "gen",
            "querylog",
            "--users",
            "40",
            "--tables",
            "60",
            "--windows",
            "2",
            "--out",
            &events,
        ])
        .unwrap();
        assert!(msg.contains("wrote"));
        let stats = run_to_string(&["stats", "--input", &events]).unwrap();
        assert!(stats.contains("2 windows"));
    }

    #[test]
    fn stream_anomaly_and_masquerade() {
        let path = temp_path("stream.events");
        // Three windows; host b swaps behaviour in window 2.
        std::fs::write(
            &path,
            "0 a x 3\n0 b y 2\n1 c z 1\n\
             10 a x 3\n10 b y 2\n11 c z 1\n\
             20 a x 3\n20 b q 2\n21 c z 1\n",
        )
        .unwrap();

        let anom = run_to_string(&[
            "stream",
            "--input",
            &path,
            "--window-width",
            "10",
            "--scheme",
            "rwr:h=2,c=0.1",
            "--top",
            "3",
        ])
        .unwrap();
        assert!(anom.contains("streaming anomaly"), "{anom}");
        assert!(anom.contains("window [20, 30)"), "{anom}");
        // The swap window must surface host b.
        let after_swap = anom.split("window [20, 30)").nth(1).unwrap();
        assert!(after_swap.contains('b'), "{anom}");
        assert!(anom.contains("stream drained: 0 invalid"), "{anom}");

        let masq = run_to_string(&[
            "stream",
            "--input",
            &path,
            "--window-width",
            "10",
            "--task",
            "masquerade",
        ])
        .unwrap();
        assert!(masq.contains("streaming masquerade"), "{masq}");
        assert!(masq.contains("re-paired"), "{masq}");

        // Sliding (overlapping) windows are accepted too.
        let slid = run_to_string(&[
            "stream",
            "--input",
            &path,
            "--window-width",
            "10",
            "--slide",
            "5",
        ])
        .unwrap();
        assert!(slid.contains("window [5, 15)"), "{slid}");

        assert!(matches!(
            run_to_string(&["stream", "--input", &path, "--task", "wat"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_to_string(&["stream", "--input", &path, "--slide", "0"]),
            Err(CliError::Usage(_))
        ));
    }

    /// `--tier sketch` runs both tasks end to end, reports its bounded
    /// state, and rejects schemes the sketch substrate cannot cover.
    #[test]
    fn stream_sketch_tier() {
        let path = temp_path("stream_sketch.events");
        std::fs::write(
            &path,
            "0 a x 3\n0 b y 2\n1 c z 1\n\
             10 a x 3\n10 b y 2\n11 c z 1\n\
             20 a x 3\n20 b q 2\n21 c z 1\n",
        )
        .unwrap();
        for task in ["anomaly", "masquerade"] {
            let got = run_to_string(&[
                "stream",
                "--input",
                &path,
                "--window-width",
                "10",
                "--task",
                task,
                "--tier",
                "sketch",
            ])
            .unwrap();
            assert!(got.contains("window [20, 30)"), "{got}");
            assert!(got.contains("sketch tier:"), "{got}");
            assert!(got.contains("state entries"), "{got}");
            assert!(got.contains("stream drained: 0 invalid"), "{got}");
        }
        // The exact tier must not print the sketch memory line.
        let exact = run_to_string(&[
            "stream",
            "--input",
            &path,
            "--window-width",
            "10",
            "--tier",
            "exact",
        ])
        .unwrap();
        assert!(!exact.contains("sketch tier:"), "{exact}");
        assert!(matches!(
            run_to_string(&[
                "stream",
                "--input",
                &path,
                "--tier",
                "sketch",
                "--scheme",
                "rwr:h=2,c=0.1",
            ]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_to_string(&["stream", "--input", &path, "--tier", "wat"]),
            Err(CliError::Usage(_))
        ));
    }

    /// `--threads N` must not change a single output byte: the sharded
    /// advance is bit-identical by construction, and nothing about the
    /// plan leaks into the report.
    #[test]
    fn stream_threads_output_byte_identical() {
        let path = temp_path("stream_threads.events");
        std::fs::write(
            &path,
            "0 a x 3\n0 b y 2\n1 c z 1\n\
             10 a x 3\n10 b y 2\n11 c z 1\n\
             20 a x 3\n20 b q 2\n21 c z 1\n",
        )
        .unwrap();
        for task in ["anomaly", "masquerade"] {
            let run = |threads: &str| {
                run_to_string(&[
                    "stream",
                    "--input",
                    &path,
                    "--window-width",
                    "10",
                    "--scheme",
                    "rwr:h=2,c=0.1",
                    "--task",
                    task,
                    "--threads",
                    threads,
                ])
                .unwrap()
            };
            let serial = run("1");
            for threads in ["2", "4", "8"] {
                assert_eq!(serial, run(threads), "task={task} threads={threads}");
            }
        }
    }

    #[test]
    fn advise_all_applications() {
        let m = run_to_string(&["advise", "multiusage"]).unwrap();
        assert!(m.lines().any(|l| l.contains("TT") && l.contains("covers")));
        let q = run_to_string(&["advise", "masquerading"]).unwrap();
        assert!(q.contains("RWR^h"));
        let a = run_to_string(&["advise", "anomaly"]).unwrap();
        assert!(a.contains("RWR"));
        assert!(run_to_string(&["advise", "nope"]).is_err());
    }

    #[test]
    fn chaos_list_and_single_scenario() {
        let list = run_to_string(&["chaos", "--list"]).unwrap();
        assert!(list.contains("clean-strict-baseline"), "{list}");
        assert!(list.lines().count() >= 20, "{list}");

        let one = run_to_string(&[
            "chaos",
            "--scenario",
            "nan-poisoned-subject-degrades",
            "--seed",
            "7",
        ])
        .unwrap();
        assert!(one.contains("ok"), "{one}");
        assert!(one.contains("0 failed"), "{one}");

        assert!(matches!(
            run_to_string(&["chaos", "--scenario", "not-a-scenario"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn chaos_full_corpus_passes() {
        let all = run_to_string(&["chaos", "--seed", "11"]).unwrap();
        assert!(all.contains("0 failed"), "{all}");
        assert!(!all.contains("FAIL"), "{all}");
    }

    #[test]
    fn ingest_flags_quarantine_bad_records() {
        let path = temp_path("dirty.events");
        std::fs::write(
            &path,
            "0 a b 1\nthis is not a record at all ok\n0 b c 2\n1 a b NaN\n1 c a 3\n",
        )
        .unwrap();

        // Strict (the default) fails on the malformed line.
        assert!(run_to_string(&["stats", "--input", &path]).is_err());

        // Quarantine keeps the 3 clean records and reports the rest.
        let stats = run_to_string(&[
            "stats",
            "--input",
            &path,
            "--ingest",
            "quarantine",
            "--max-bad-fraction",
            "0.5",
        ])
        .unwrap();
        assert!(stats.contains("kept 3 of 5 records"), "{stats}");
        assert!(stats.contains("quarantined line 2"), "{stats}");

        // A tight budget is a typed failure, not a panic.
        assert!(run_to_string(&[
            "stats",
            "--input",
            &path,
            "--ingest",
            "quarantine",
            "--max-bad-fraction",
            "0.1",
        ])
        .is_err());

        assert!(matches!(
            run_to_string(&["stats", "--input", &path, "--ingest", "wat"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn error_paths() {
        assert!(matches!(run_to_string(&["stats"]), Err(CliError::Usage(_))));
        assert!(matches!(
            run_to_string(&["stats", "--input", "/nonexistent/x.events"]),
            Err(CliError::Failed(_))
        ));
        assert!(matches!(
            run_to_string(&["gen", "wat", "--out", "/tmp/x"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_to_string(&["detect", "wat", "--input", "/tmp/x"]),
            Err(CliError::Usage(_))
        ));
    }
}
