//! End-to-end kill-and-resume smoke test for `comsig serve`.
//!
//! Drives the real binary over its TCP socket: one uninterrupted run
//! and one run that is SIGKILLed between windows and restarted on the
//! same data directory. The acceptance bar is byte-identical protocol
//! transcripts — every advance acknowledgement, signature, ranking and
//! state digest after the kill must match the uninterrupted run's.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use comsig_serve::call;

/// A spawned daemon, SIGKILLed on drop so a failing assertion never
/// leaks a process.
struct Daemon(Child);

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("comsig-serve-smoke")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// 40 events over 6 hosts: four aligned width-10 windows.
fn seed_lines() -> Vec<String> {
    (0..40u64)
        .map(|t| format!("{t} h{} h{} {}", t % 6, (t + 2) % 6, 1 + t % 5))
        .collect()
}

fn spawn_daemon(data_dir: &Path, seed_file: &Path, addr_file: &Path, extra: &[&str]) -> Daemon {
    let _ = std::fs::remove_file(addr_file);
    let child = Command::new(env!("CARGO_BIN_EXE_comsig"))
        .args([
            "serve",
            "--data-dir",
            data_dir.to_str().unwrap(),
            "--seed-events",
            seed_file.to_str().unwrap(),
            "--listen",
            "127.0.0.1:0",
            "--addr-file",
            addr_file.to_str().unwrap(),
            "--window-width",
            "10",
            "--k",
            "4",
        ])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn comsig serve");
    Daemon(child)
}

/// Waits for the daemon to publish its ephemeral address and answer a
/// `status` request with a ready phase.
fn wait_ready(addr_file: &Path) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        assert!(Instant::now() < deadline, "daemon did not become ready");
        if let Ok(text) = std::fs::read_to_string(addr_file) {
            let addr = text.trim().to_owned();
            if !addr.is_empty() {
                if let Ok(resp) = call(&addr, &[r#"{"op":"status"}"#.to_owned()]) {
                    if resp[0].contains(r#""phase":"ready"#) {
                        return addr;
                    }
                }
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The ingest+advance request pair for window `w` of the seed stream.
fn window_requests(lines: &[String], w: u64) -> Vec<String> {
    let batch: Vec<String> = lines
        .iter()
        .filter(|l| {
            let t: u64 = l.split_whitespace().next().unwrap().parse().unwrap();
            t / 10 == w
        })
        .cloned()
        .collect();
    vec![
        format!(r#"{{"op":"ingest","lines":"{}"}}"#, batch.join("\\n")),
        r#"{"op":"advance"}"#.to_owned(),
    ]
}

/// Query transcript run after the last window: the byte-compare corpus.
fn final_queries() -> Vec<String> {
    vec![
        r#"{"op":"digest"}"#.to_owned(),
        r#"{"op":"signature","node":"h0"}"#.to_owned(),
        r#"{"op":"rank","node":"h1","top":4}"#.to_owned(),
        r#"{"op":"masquerade"}"#.to_owned(),
        r#"{"op":"anomaly","top":3}"#.to_owned(),
    ]
}

/// Runs the uninterrupted-vs-SIGKILLed transcript comparison for one
/// tier's extra flags. The acceptance bar is identical for both tiers:
/// byte-identical transcripts after the crash.
fn kill_and_resume_case(name: &str, extra: &[&str]) {
    let dir = scratch(name);
    let seed_file = dir.join("seed.events");
    let lines = seed_lines();
    std::fs::write(&seed_file, format!("{}\n", lines.join("\n"))).unwrap();

    // Uninterrupted reference run: 4 windows, then the query corpus.
    let clean_data = dir.join("clean");
    let addr_file = dir.join("clean.addr");
    let mut reference = Vec::new();
    {
        let _daemon = spawn_daemon(&clean_data, &seed_file, &addr_file, extra);
        let addr = wait_ready(&addr_file);
        for w in 0..4 {
            reference.extend(call(&addr, &window_requests(&lines, w)).unwrap());
        }
        reference.extend(call(&addr, &final_queries()).unwrap());
        call(&addr, &[r#"{"op":"shutdown"}"#.to_owned()]).unwrap();
    }

    // Interrupted run: 2 windows, SIGKILL, restart, 2 more windows.
    let crash_data = dir.join("crash");
    let addr_file = dir.join("crash.addr");
    let mut transcript = Vec::new();
    {
        let daemon = spawn_daemon(&crash_data, &seed_file, &addr_file, extra);
        let addr = wait_ready(&addr_file);
        for w in 0..2 {
            transcript.extend(call(&addr, &window_requests(&lines, w)).unwrap());
        }
        drop(daemon); // SIGKILL, no shutdown handshake
    }
    {
        let _daemon = spawn_daemon(&crash_data, &seed_file, &addr_file, extra);
        let addr = wait_ready(&addr_file);
        for w in 2..4 {
            transcript.extend(call(&addr, &window_requests(&lines, w)).unwrap());
        }
        transcript.extend(call(&addr, &final_queries()).unwrap());
        call(&addr, &[r#"{"op":"shutdown"}"#.to_owned()]).unwrap();
    }

    assert_eq!(
        reference.len(),
        transcript.len(),
        "transcript lengths diverged"
    );
    for (i, (a, b)) in reference.iter().zip(transcript.iter()).enumerate() {
        assert_eq!(a, b, "response {i} diverged after kill-and-resume");
        assert!(a.contains(r#""ok":true"#), "response {i} not ok: {a}");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_and_resume_transcripts_are_byte_identical() {
    kill_and_resume_case("kill-resume", &[]);
}

#[test]
fn sketch_tier_kill_and_resume_transcripts_are_byte_identical() {
    kill_and_resume_case(
        "kill-resume-sketch",
        &["--tier", "sketch", "--cm-width", "64", "--budget", "16"],
    );
}
