//! Extension A8: exponential time-decay composition (Section III-A).
//!
//! The Communities-of-Interest line of work "created a signature from the
//! combination of multiple time-steps by using an exponential decay
//! function applied to older data"; the paper treats the choice as
//! orthogonal and drops it. Here we measure what it buys: signatures
//! built from a decayed history are compared across time the same way
//! single-window signatures are, and the AUC gain quantifies how much
//! history smooths the churn (disrupted windows in particular).

use comsig_core::distance::SHel;
use comsig_core::scheme::{decayed_combine, SignatureScheme, TopTalkers};
use comsig_core::SignatureSet;
use comsig_eval::report::{f4, Table};
use comsig_eval::roc::self_identification;
use comsig_graph::CommGraph;

use crate::datasets::{self, Scale};

fn decayed_sigs(
    windows: &[&CommGraph],
    lambda: f64,
    subjects: &[comsig_graph::NodeId],
    k: usize,
) -> SignatureSet {
    let combined = decayed_combine(windows, lambda);
    TopTalkers.signature_set(&combined, subjects, k)
}

/// Runs the experiment: TT over single windows vs decayed histories.
pub fn run(scale: Scale) -> Vec<Table> {
    let d = datasets::flow(scale, 99);
    let subjects = d.local_nodes();
    let k = scale.flow_k();
    let windows: Vec<&CommGraph> = d.windows.iter().collect();
    assert!(windows.len() >= 3, "need at least 3 windows");
    let t = windows.len() - 2; // predict window t+1 from history up to t

    let mut table = Table::new(
        "Extension A8: time-decayed histories (TT, Dist_SHel)",
        &["history", "lambda", "AUC"],
    );

    // Baseline: single-window signatures (the paper's setting).
    let single_q = TopTalkers.signature_set(windows[t], &subjects, k);
    let single_c = TopTalkers.signature_set(windows[t + 1], &subjects, k);
    table.push_row(vec![
        "1 window".into(),
        "-".into(),
        f4(self_identification(&SHel, &single_q, &single_c).mean_auc),
    ]);

    for &lambda in &[1.0f64, 0.6, 0.3] {
        for history in [2usize, 3] {
            if t + 1 < history {
                continue;
            }
            let q_windows = &windows[t + 1 - history..=t];
            let c_windows = &windows[t + 2 - history..=t + 1];
            let q = decayed_sigs(q_windows, lambda, &subjects, k);
            let c = decayed_sigs(c_windows, lambda, &subjects, k);
            table.push_row(vec![
                format!("{history} windows"),
                lambda.to_string(),
                f4(self_identification(&SHel, &q, &c).mean_auc),
            ]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_improves_over_single_window() {
        let tables = run(Scale::Small);
        let json = tables[0].to_json();
        let rows = json["rows"].as_array().unwrap();
        let single = rows[0]["AUC"].as_f64().unwrap();
        // The best decayed configuration must beat the single window.
        let best = rows[1..]
            .iter()
            .map(|r| r["AUC"].as_f64().unwrap())
            .fold(0.0f64, f64::max);
        assert!(
            best > single,
            "history best {best} should beat single-window {single}"
        );
    }
}
