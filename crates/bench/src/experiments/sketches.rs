//! Extension A5: semi-streaming signatures vs exact (Section VI,
//! "Scalable signature computation").
//!
//! How close do the sketch-based TT/UT signatures come to the exact ones,
//! as a function of the per-node memory budget?

use comsig_core::distance::{Jaccard, SignatureDistance};
use comsig_core::scheme::{SignatureScheme, TopTalkers, UnexpectedTalkers};
use comsig_eval::report::{f3, Table};
use comsig_sketch::stream::{SemiStream, StreamConfig};

use crate::datasets::{self, Scale};

/// Runs the experiment across Count-Min widths.
pub fn run(scale: Scale) -> Vec<Table> {
    let d = datasets::flow(scale, 99);
    let subjects = d.local_nodes();
    let g = d.windows.window(0).expect("window 0");
    let k = scale.flow_k();

    let exact_tt = TopTalkers.signature_set(g, &subjects, k);
    let exact_ut = UnexpectedTalkers::new().signature_set(g, &subjects, k);

    let mut table = Table::new(
        "Extension A5: streaming vs exact signatures (mean Jaccard distance)",
        &[
            "cm_width",
            "candidates",
            "fm_bitmaps",
            "TT dist",
            "UT dist",
            "counters/node",
        ],
    );
    for (cm_width, budget, fm_bitmaps) in [
        (16usize, 16usize, 8usize),
        (32, 32, 16),
        (128, 64, 32),
        (512, 128, 64),
    ] {
        let cfg = StreamConfig {
            cm_width,
            cm_depth: 4,
            candidate_budget: budget,
            fm_bitmaps,
            seed: 5,
        };
        let mut stream = SemiStream::new(cfg);
        stream.observe_graph(g);

        let mean_dist = |exact: &comsig_core::SignatureSet, ut: bool| -> f64 {
            let mut total = 0.0;
            for &v in &subjects {
                let approx = if ut {
                    stream.ut_signature(v, k)
                } else {
                    stream.tt_signature(v, k)
                };
                total += Jaccard.distance(exact.get(v).expect("sig"), &approx);
            }
            total / subjects.len().max(1) as f64
        };
        let tt_dist = mean_dist(&exact_tt, false);
        let ut_dist = mean_dist(&exact_ut, true);
        let per_node = stream.state_size() as f64 / stream.num_sources().max(1) as f64;
        table.push_row(vec![
            cm_width.to_string(),
            budget.to_string(),
            fm_bitmaps.to_string(),
            f3(tt_dist),
            f3(ut_dist),
            format!("{per_node:.0}"),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_sketches_are_more_accurate() {
        let tables = run(Scale::Small);
        let json = tables[0].to_json();
        let rows = json["rows"].as_array().unwrap();
        assert_eq!(rows.len(), 4);
        let first_tt = rows[0]["TT dist"].as_f64().unwrap();
        let last_tt = rows.last().unwrap()["TT dist"].as_f64().unwrap();
        assert!(last_tt <= first_tt + 1e-9);
        assert!(
            last_tt < 0.1,
            "largest sketch should be near-exact: {last_tt}"
        );
    }
}
