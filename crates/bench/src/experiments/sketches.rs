//! Extension A5: the sketch tier vs the exact tier at stream scale
//! (Section VI, "Scalable signature computation").
//!
//! Both tiers consume the same [`WindowDelta`] sequence through the
//! [`SignatureTier`] seam — the exact tier patches a materialised graph
//! and recomputes dirty subjects; the sketch tier folds every change
//! into bounded per-node sketches in one pass and never builds the
//! graph. The cell reports, per sketch sizing, how far the approximate
//! TT/UT signatures drift from the exact ones at the final window and
//! what each tier's resident state costs per subject.

use comsig_core::distance::{Jaccard, SignatureDistance};
use comsig_core::pipeline::DeltaScheme;
use comsig_core::scheme::{TopTalkers, UnexpectedTalkers};
use comsig_core::{SignaturePipeline, SignatureSet, SignatureTier};
use comsig_eval::report::{f3, Table};
use comsig_graph::{CommGraph, EdgeChange, NodeId, WindowDelta};
use comsig_sketch::stream::StreamConfig;
use comsig_sketch::tier::{SketchScheme, SketchTier};

use crate::datasets::Scale;
use crate::synth::{stream_workload, StreamWorkload};

/// Stream dimensions per scale: (locals, externals, out_degree, churn,
/// windows).
fn dims(scale: Scale) -> (usize, usize, usize, f64, usize) {
    match scale {
        Scale::Small => (400, 1_600, 8, 0.05, 4),
        Scale::Medium => (4_000, 16_000, 12, 0.02, 6),
        Scale::Full => (20_000, 80_000, 16, 0.01, 8),
    }
}

/// The initial graph replayed as one insertion-only delta, so a tier
/// starting from empty state sees window 0 the same way the windower
/// would deliver it. Shared with `bench_snapshot` and A6.
#[must_use]
pub fn genesis_delta(g: &CommGraph) -> WindowDelta {
    WindowDelta {
        start: 0,
        end: 1,
        changes: g
            .edges()
            .map(|e| EdgeChange {
                src: e.src,
                dst: e.dst,
                old: None,
                new: Some(e.weight),
            })
            .collect(),
    }
}

/// Drives an exact pipeline over the workload and returns its
/// final-window signatures plus the tier's resident state bytes.
fn exact_final(
    scheme: &dyn DeltaScheme,
    wl: &StreamWorkload,
    num_nodes: usize,
    k: usize,
) -> (SignatureSet, usize) {
    let mut pipeline = SignaturePipeline::new(scheme, CommGraph::empty(num_nodes), &wl.subjects, k);
    pipeline.advance(&genesis_delta(&wl.graph));
    for delta in &wl.deltas {
        pipeline.advance(delta);
    }
    let bytes = SignatureTier::memory(&pipeline).state_bytes;
    (pipeline.signatures().clone(), bytes)
}

/// Mean Jaccard distance between paired signature sets over `subjects`
/// — the accuracy axis `BENCH_sketch.json` records.
#[must_use]
pub fn mean_divergence(exact: &SignatureSet, approx: &SignatureSet, subjects: &[NodeId]) -> f64 {
    let total: f64 = subjects
        .iter()
        .map(|&v| {
            Jaccard.distance(
                exact.get(v).expect("exact signature"),
                approx.get(v).expect("approx signature"),
            )
        })
        .sum();
    total / subjects.len().max(1) as f64
}

/// Runs the experiment across Count-Min sizings.
pub fn run(scale: Scale) -> Vec<Table> {
    let (locals, externals, out_degree, churn, windows) = dims(scale);
    let wl = stream_workload(locals, externals, out_degree, churn, windows, 99);
    let num_nodes = locals + externals;
    let k = 10;

    let (exact_tt, exact_bytes) = exact_final(&TopTalkers, &wl, num_nodes, k);
    let (exact_ut, _) = exact_final(&UnexpectedTalkers::new(), &wl, num_nodes, k);

    let mut table = Table::new(
        "Extension A5: sketch tier vs exact tier at stream scale (mean Jaccard distance, final window)",
        &[
            "cm_width",
            "candidates",
            "fm_bitmaps",
            "TT dist",
            "UT dist",
            "sketch B/subject",
            "exact B/subject",
        ],
    );
    for (cm_width, budget, fm_bitmaps) in [
        (16usize, 16usize, 8usize),
        (32, 32, 16),
        (128, 64, 32),
        (512, 128, 64),
    ] {
        let cfg = StreamConfig {
            cm_width,
            cm_depth: 4,
            candidate_budget: budget,
            fm_bitmaps,
            seed: 5,
            indeg_cells: 0,
            indeg_depth: 2,
        };
        let run_tier = |scheme: SketchScheme| -> SketchTier {
            let mut tier = SketchTier::new(scheme, cfg, &wl.subjects, k, num_nodes);
            tier.advance_window(&genesis_delta(&wl.graph));
            for delta in &wl.deltas {
                tier.advance_window(delta);
            }
            tier
        };
        let tt_tier = run_tier(SketchScheme::TopTalkers);
        let ut_tier = run_tier(SketchScheme::UnexpectedTalkers);
        let tt_dist = mean_divergence(&exact_tt, tt_tier.signatures(), &wl.subjects);
        let ut_dist = mean_divergence(&exact_ut, ut_tier.signatures(), &wl.subjects);
        let sketch_bytes = tt_tier.memory().state_bytes;
        table.push_row(vec![
            cm_width.to_string(),
            budget.to_string(),
            fm_bitmaps.to_string(),
            f3(tt_dist),
            f3(ut_dist),
            format!("{:.0}", sketch_bytes as f64 / locals as f64),
            format!("{:.0}", exact_bytes as f64 / locals as f64),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_sketches_are_more_accurate() {
        let tables = run(Scale::Small);
        let json = tables[0].to_json();
        let rows = json["rows"].as_array().unwrap();
        assert_eq!(rows.len(), 4);
        let first_tt = rows[0]["TT dist"].as_f64().unwrap();
        let last_tt = rows.last().unwrap()["TT dist"].as_f64().unwrap();
        assert!(last_tt <= first_tt + 1e-9);
        assert!(
            last_tt < 0.1,
            "largest sketch should be near-exact: {last_tt}"
        );
    }

    #[test]
    fn sketch_state_grows_with_sizing_while_exact_is_fixed() {
        let tables = run(Scale::Small);
        let json = tables[0].to_json();
        let rows = json["rows"].as_array().unwrap();
        let first = rows[0]["sketch B/subject"].as_f64().unwrap();
        let last = rows.last().unwrap()["sketch B/subject"].as_f64().unwrap();
        assert!(last > first, "sizing sweep must move the memory axis");
        let exact_first = rows[0]["exact B/subject"].as_f64().unwrap();
        let exact_last = rows.last().unwrap()["exact B/subject"].as_f64().unwrap();
        assert!((exact_first - exact_last).abs() < 1e-9);
    }
}
