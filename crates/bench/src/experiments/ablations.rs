//! Ablations A1–A4: the parameter sensitivities the paper discusses in
//! prose (hop count, restart probability, signature length, UT scaling).

use comsig_core::distance::{SHel, SignatureDistance};
use comsig_core::scheme::{Rwr, Scaling, SignatureScheme, TopTalkers, UnexpectedTalkers};
use comsig_eval::property_eval::{persistence_values, uniqueness_values};
use comsig_eval::report::{f3, f4, Table};
use comsig_eval::roc::self_identification;
use comsig_eval::stats::Summary;

use crate::datasets::{self, Scale};

/// A1 — hop-count sweep: "having more than 5 hops does not bring in
/// drastically new information … for all h larger than the diameter of
/// the graph, RWR^h coincides with RWR^∞" (Section IV-C).
pub fn run_h_sweep(scale: Scale) -> Vec<Table> {
    let d = datasets::flow(scale, 99);
    let subjects = d.local_nodes();
    let g1 = d.windows.window(0).expect("window 0");
    let g2 = d.windows.window(1).expect("window 1");
    let k = scale.flow_k();
    let dist = SHel;

    let mut table = Table::new(
        "Ablation A1: RWR^h_0.1 hop sweep (Dist_SHel)",
        &["h", "AUC", "mu_p", "mu_u", "SHel to RWR^inf sigs"],
    );
    let full = Rwr::full(0.1).undirected();
    let full_sigs = full.signature_set(g1, &subjects, k);
    for h in [1u32, 2, 3, 4, 5, 6, 7, 9, 12] {
        let scheme = Rwr::truncated(0.1, h).undirected();
        let a = scheme.signature_set(g1, &subjects, k);
        let b = scheme.signature_set(g2, &subjects, k);
        let auc = self_identification(&dist, &a, &b).mean_auc;
        let mu_p = Summary::of(&persistence_values(&dist, &a, &b)).mean;
        let mu_u = Summary::of(&uniqueness_values(&dist, &a)).mean;
        // Convergence measured on weight mass (SHel): low-degree hosts
        // legitimately keep a few extra near-zero members at finite h,
        // which a set distance would over-count.
        let conv: f64 = subjects
            .iter()
            .map(|&v| {
                dist.distance(
                    &a.get(v).expect("signature").normalized(),
                    &full_sigs.get(v).expect("signature").normalized(),
                )
            })
            .sum::<f64>()
            / subjects.len().max(1) as f64;
        table.push_row(vec![h.to_string(), f4(auc), f3(mu_p), f3(mu_u), f3(conv)]);
    }
    vec![table]
}

/// A2 — restart-probability sweep: "when c is as large as 0.9, RWR_c
/// converges to TT" (footnote 7).
pub fn run_c_sweep(scale: Scale) -> Vec<Table> {
    let d = datasets::flow(scale, 99);
    let subjects = d.local_nodes();
    let g1 = d.windows.window(0).expect("window 0");
    let g2 = d.windows.window(1).expect("window 1");
    let k = scale.flow_k();
    let dist = SHel;

    let tt_sigs = TopTalkers.signature_set(g1, &subjects, k);
    let mut table = Table::new(
        "Ablation A2: RWR^3_c restart sweep (Dist_SHel)",
        &["c", "AUC", "mu_p", "SHel to TT sigs"],
    );
    for c in [0.05f64, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
        let scheme = Rwr::truncated(c, 3).undirected();
        let a = scheme.signature_set(g1, &subjects, k);
        let b = scheme.signature_set(g2, &subjects, k);
        let auc = self_identification(&dist, &a, &b).mean_auc;
        let mu_p = Summary::of(&persistence_values(&dist, &a, &b)).mean;
        // Normalised comparison: raw RWR weights shrink with c (the
        // start node hoards the occupancy mass), so only the *shape* of
        // the weight distribution is comparable to TT's.
        let to_tt: f64 = subjects
            .iter()
            .map(|&v| {
                dist.distance(
                    &a.get(v).expect("signature").normalized(),
                    &tt_sigs.get(v).expect("sig").normalized(),
                )
            })
            .sum::<f64>()
            / subjects.len().max(1) as f64;
        table.push_row(vec![c.to_string(), f4(auc), f3(mu_p), f3(to_tt)]);
    }
    vec![table]
}

/// A3 — signature-length sweep (the paper fixed `k` at half the average
/// out-degree and deferred the sensitivity question to prior work).
pub fn run_k_sweep(scale: Scale) -> Vec<Table> {
    let d = datasets::flow(scale, 99);
    let subjects = d.local_nodes();
    let g1 = d.windows.window(0).expect("window 0");
    let g2 = d.windows.window(1).expect("window 1");
    let dist = SHel;

    let schemes: Vec<Box<dyn SignatureScheme>> = vec![
        Box::new(TopTalkers),
        Box::new(UnexpectedTalkers::new()),
        Box::new(Rwr::truncated(0.1, 3).undirected()),
    ];
    let mut headers: Vec<String> = vec!["k".into()];
    headers.extend(schemes.iter().map(|s| format!("AUC {}", s.name())));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Ablation A3: signature length sweep (Dist_SHel)",
        &header_refs,
    );
    for k in [2usize, 5, 10, 20, 40] {
        let mut row = vec![k.to_string()];
        for scheme in &schemes {
            let a = scheme.signature_set(g1, &subjects, k);
            let b = scheme.signature_set(g2, &subjects, k);
            row.push(f4(self_identification(&dist, &a, &b).mean_auc));
        }
        table.push_row(row);
    }
    vec![table]
}

/// A4 — UT scaling functions: "we did not see much variation in results
/// for different scaling functions" (Section III-A).
pub fn run_ut_scalings(scale: Scale) -> Vec<Table> {
    let d = datasets::flow(scale, 99);
    let subjects = d.local_nodes();
    let g1 = d.windows.window(0).expect("window 0");
    let g2 = d.windows.window(1).expect("window 1");
    let k = scale.flow_k();
    let dist = SHel;

    let mut table = Table::new(
        "Ablation A4: UT novelty scaling functions (Dist_SHel)",
        &["scaling", "AUC", "mu_p", "mu_u"],
    );
    for scaling in [Scaling::Ratio, Scaling::TfIdf, Scaling::LogNovelty] {
        let scheme = UnexpectedTalkers::with_scaling(scaling);
        let a = scheme.signature_set(g1, &subjects, k);
        let b = scheme.signature_set(g2, &subjects, k);
        table.push_row(vec![
            scheme.name(),
            f4(self_identification(&dist, &a, &b).mean_auc),
            f3(Summary::of(&persistence_values(&dist, &a, &b)).mean),
            f3(Summary::of(&uniqueness_values(&dist, &a)).mean),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h_sweep_converges_to_unbounded_walk() {
        let tables = run_h_sweep(Scale::Small);
        let json = tables[0].to_json();
        let rows = json["rows"].as_array().unwrap();
        let conv_first = rows[0]["SHel to RWR^inf sigs"].as_f64().unwrap();
        let conv_last = rows.last().unwrap()["SHel to RWR^inf sigs"]
            .as_f64()
            .unwrap();
        assert!(conv_last < conv_first, "{conv_last} !< {conv_first}");
        // The paper's convergence claim is about *results*: "experiments
        // with RWR^h for h > 7 all converged to RWR^7". The truncated
        // occupancy itself still differs from the fixed point by
        // ~(1-c)^h in mass, so we assert AUC stabilisation.
        let auc_9 = rows[rows.len() - 2]["AUC"].as_f64().unwrap();
        let auc_12 = rows.last().unwrap()["AUC"].as_f64().unwrap();
        // At Small scale each query contributes 1/40 to the mean AUC, so
        // the stabilisation tolerance must absorb a couple of rank flips.
        assert!(
            (auc_12 - auc_9).abs() < 0.08,
            "AUC should stabilise beyond h = 7: {auc_9} vs {auc_12}"
        );
    }

    #[test]
    fn c_sweep_converges_to_tt() {
        let tables = run_c_sweep(Scale::Small);
        let json = tables[0].to_json();
        let rows = json["rows"].as_array().unwrap();
        let first = rows[0]["SHel to TT sigs"].as_f64().unwrap();
        let last = rows.last().unwrap()["SHel to TT sigs"].as_f64().unwrap();
        assert!(last < first, "large c must approach TT: {last} !< {first}");
        assert!(last < 0.1, "c = 0.99 should nearly equal TT, got {last}");
    }

    #[test]
    fn k_sweep_and_ut_scalings_materialise() {
        assert_eq!(run_k_sweep(Scale::Small)[0].num_rows(), 5);
        assert_eq!(run_ut_scalings(Scale::Small)[0].num_rows(), 3);
    }
}
