//! Extension A6: LSH-fronted matching vs the exact matcher at stream
//! scale (Section VI, "Scalable signature comparison").
//!
//! The banded-LSH front ([`rank_all_approx`]) proposes candidates and
//! re-scores the survivors exactly; everything the bands never surface
//! is reported at distance 1. The cell measures the matcher's operating
//! point on the cross-window self-identification workload the paper's
//! masquerade detector runs: queries are the previous window's
//! signatures, candidates the current window's, and recall is agreement
//! with the exact matcher's top-`l` per query.

use comsig_core::distance::Jaccard;
use comsig_core::scheme::TopTalkers;
use comsig_core::{SignaturePipeline, SignatureSet};
use comsig_eval::ann::{top_l_recall, AnnConfig, AnnIndex};
use comsig_eval::matcher::{rank_all, rank_all_approx};
use comsig_eval::report::{f3, Table};
use comsig_graph::CommGraph;

use super::sketches::genesis_delta;
use crate::datasets::Scale;
use crate::synth::stream_workload;

/// Stream dimensions per scale: (locals, externals, out_degree, churn,
/// windows).
fn dims(scale: Scale) -> (usize, usize, usize, f64, usize) {
    match scale {
        Scale::Small => (400, 1_600, 8, 0.05, 4),
        Scale::Medium => (4_000, 16_000, 12, 0.02, 6),
        Scale::Full => (20_000, 80_000, 16, 0.01, 8),
    }
}

/// Runs the experiment across band/row settings.
pub fn run(scale: Scale) -> Vec<Table> {
    let (locals, externals, out_degree, churn, windows) = dims(scale);
    let wl = stream_workload(locals, externals, out_degree, churn, windows, 99);
    let num_nodes = locals + externals;
    let k = 10;

    // The last two exact windows: queries from W-1, candidates from W.
    let mut pipeline =
        SignaturePipeline::new(&TopTalkers, CommGraph::empty(num_nodes), &wl.subjects, k);
    pipeline.advance(&genesis_delta(&wl.graph));
    let mut prev: SignatureSet = pipeline.signatures().clone();
    for delta in &wl.deltas {
        prev = pipeline.signatures().clone();
        pipeline.advance(delta);
    }
    let current = pipeline.signatures().clone();

    let exact = rank_all(&Jaccard, &prev, &current);

    let mut table = Table::new(
        "Extension A6: LSH-fronted rank_all vs exact matcher (cross-window self-ID, TT signatures)",
        &[
            "bands",
            "rows",
            "sim threshold",
            "recall@1",
            "recall@3",
            "mean survivors/|C|",
        ],
    );
    for (bands, rows) in [(8usize, 4usize), (16, 3), (32, 2), (32, 4)] {
        let cfg = AnnConfig {
            bands,
            rows,
            seed: 9,
        };
        let approx = rank_all_approx(&Jaccard, &prev, &current, cfg);
        // Survivor fraction: how much of the population each query's
        // bands actually surface for exact re-scoring.
        let index = AnnIndex::build(&current, cfg);
        let survivors: usize = prev
            .iter()
            .map(|(_, sig)| index.lsh().candidates(sig).len())
            .sum();
        let frac = survivors as f64 / (prev.len() * current.len()).max(1) as f64;
        table.push_row(vec![
            bands.to_string(),
            rows.to_string(),
            f3(cfg.similarity_threshold()),
            f3(top_l_recall(&exact, &approx, 1)),
            f3(top_l_recall(&exact, &approx, 3)),
            f3(frac),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsh_examines_fewer_candidates_than_full_scan() {
        let tables = run(Scale::Small);
        let json = tables[0].to_json();
        for row in json["rows"].as_array().unwrap() {
            let frac = row["mean survivors/|C|"].as_f64().unwrap();
            assert!(frac < 1.0, "survivor fraction {frac} not sub-linear");
            let recall = row["recall@1"].as_f64().unwrap();
            assert!((0.0..=1.0).contains(&recall));
        }
    }

    #[test]
    fn default_banding_holds_the_documented_recall_floor() {
        let tables = run(Scale::Small);
        let json = tables[0].to_json();
        let default_row = json["rows"]
            .as_array()
            .unwrap()
            .iter()
            .find(|r| r["bands"].as_f64() == Some(32.0) && r["rows"].as_f64() == Some(4.0))
            .expect("default banding row");
        let recall = default_row["recall@1"].as_f64().unwrap();
        assert!(
            recall >= 0.95,
            "default 32x4 banding must keep recall@1 >= 0.95, got {recall}"
        );
    }
}
