//! Extension A6: LSH vs exact nearest-neighbour signature search
//! (Section VI, "Scalable signature comparison").
//!
//! For each banding, the fraction of queries whose LSH-retrieved
//! neighbour matches (or nearly matches) the exact scan, and the mean
//! fraction of the population examined per query — the speed/recall
//! trade-off.

use comsig_core::distance::{Jaccard, SignatureDistance};
use comsig_core::scheme::{SignatureScheme, TopTalkers};
use comsig_eval::report::{f3, Table};
use comsig_sketch::lsh::LshIndex;

use crate::datasets::{self, Scale};

/// Runs the experiment across band/row settings.
pub fn run(scale: Scale) -> Vec<Table> {
    let d = datasets::flow(scale, 99);
    let subjects = d.local_nodes();
    let g = d.windows.window(0).expect("window 0");
    let sigs = TopTalkers.signature_set(g, &subjects, scale.flow_k());

    let mut table = Table::new(
        "Extension A6: LSH approximate NN vs exact scan (TT signatures)",
        &[
            "bands",
            "rows",
            "sim threshold",
            "NN agreement",
            "mean candidates/|V|",
        ],
    );
    for (bands, rows) in [(8usize, 4usize), (16, 3), (24, 3), (32, 2)] {
        let mut index = LshIndex::new(bands, rows, 9);
        index.insert_set(&sigs);

        let mut agree = 0usize;
        let mut evaluated = 0usize;
        let mut candidate_total = 0usize;
        for &v in &subjects {
            let q = sigs.get(v).expect("subject signature");
            let exact = subjects
                .iter()
                .filter(|&&u| u != v)
                .map(|&u| (u, Jaccard.distance(q, sigs.get(u).expect("sig"))))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(a.0.cmp(&b.0)));
            let Some((exact_u, exact_d)) = exact else {
                continue;
            };
            candidate_total += index.candidates(q).len();
            if exact_d > 0.6 {
                continue; // below the retrieval band of every setting
            }
            evaluated += 1;
            if let Some(&(u, _)) = index.nearest(q, 1, Some(v)).first() {
                let approx_d = Jaccard.distance(q, sigs.get(u).expect("sig"));
                if u == exact_u || approx_d <= exact_d + 0.1 {
                    agree += 1;
                }
            }
        }
        let recall = agree as f64 / evaluated.max(1) as f64;
        let frac = candidate_total as f64 / (subjects.len() * subjects.len()).max(1) as f64;
        table.push_row(vec![
            bands.to_string(),
            rows.to_string(),
            f3(LshIndex::new(bands, rows, 9).similarity_threshold()),
            f3(recall),
            f3(frac),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsh_examines_fewer_candidates_than_full_scan() {
        let tables = run(Scale::Small);
        let json = tables[0].to_json();
        for row in json["rows"].as_array().unwrap() {
            let frac = row["mean candidates/|V|"].as_f64().unwrap();
            assert!(frac < 1.0, "candidate fraction {frac} not sub-linear");
            let recall = row["NN agreement"].as_f64().unwrap();
            assert!((0.0..=1.0).contains(&recall));
        }
    }
}
