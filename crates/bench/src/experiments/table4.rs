//! Table IV: relative behaviour of the signature schemes — derived from
//! measured persistence, uniqueness and robustness rather than asserted.
//!
//! The paper's table:
//!
//! |             | TT     | UT   | RWR    |
//! |-------------|--------|------|--------|
//! | persistence | medium | low  | high   |
//! | uniqueness  | medium | high | low    |
//! | robustness  | high   | low  | medium |

use comsig_core::distance::SHel;
use comsig_eval::property_eval::{persistence_values, uniqueness_values};
use comsig_eval::report::{f3, Table};
use comsig_eval::roc::self_identification;
use comsig_eval::stats::Summary;
use comsig_graph::perturb::perturbed;

use crate::datasets::{self, Scale};
use crate::registry;

/// Ranks three values into "high"/"medium"/"low" labels.
fn rank_labels(values: [f64; 3]) -> [&'static str; 3] {
    let mut order: Vec<usize> = (0..3).collect();
    order.sort_by(|&a, &b| values[b].partial_cmp(&values[a]).expect("finite"));
    let mut labels = [""; 3];
    labels[order[0]] = "high";
    labels[order[1]] = "medium";
    labels[order[2]] = "low";
    labels
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let d = datasets::flow(scale, 99);
    let subjects = d.local_nodes();
    let g1 = d.windows.window(0).expect("window 0");
    let g2 = d.windows.window(1).expect("window 1");
    let gp = perturbed(g1, 0.4, 0.4, 4242);
    let k = scale.flow_k();
    let dist = SHel;

    let schemes = registry::application_schemes(); // TT, UT, RWR^3
    let mut persistence = [0.0; 3];
    let mut uniqueness = [0.0; 3];
    let mut robustness = [0.0; 3];
    for (i, scheme) in schemes.iter().enumerate() {
        let a = scheme.signature_set(g1, &subjects, k);
        let b = scheme.signature_set(g2, &subjects, k);
        persistence[i] = Summary::of(&persistence_values(&dist, &a, &b)).mean;
        uniqueness[i] = Summary::of(&uniqueness_values(&dist, &a)).mean;
        let ap = scheme.signature_set(&gp, &subjects, k);
        robustness[i] = self_identification(&dist, &a, &ap).mean_auc;
    }

    let mut headers: Vec<String> = vec!["property".into()];
    headers.extend(schemes.iter().map(|s| s.name()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Table IV: relative behaviour (derived from measurements, Dist_SHel)",
        &header_refs,
    );
    for (name, values) in [
        ("persistence", persistence),
        ("uniqueness", uniqueness),
        ("robustness (AUC@0.4)", robustness),
    ] {
        let labels = rank_labels(values);
        table.push_row(vec![
            name.to_owned(),
            format!("{} ({})", labels[0], f3(values[0])),
            format!("{} ({})", labels[1], f3(values[1])),
            format!("{} ({})", labels[2], f3(values[2])),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_rank_correctly() {
        assert_eq!(rank_labels([0.2, 0.9, 0.5]), ["low", "high", "medium"]);
        assert_eq!(rank_labels([1.0, 0.5, 0.1]), ["high", "medium", "low"]);
    }

    #[test]
    fn table_materialises() {
        let tables = run(Scale::Small);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].num_rows(), 3);
    }
}
