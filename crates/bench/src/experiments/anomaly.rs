//! Extension A7: anomaly detection against injected ground truth.
//!
//! The paper describes the detector (Section II-D) but reports no figure;
//! we evaluate it on flow data with injected behaviour changes. The
//! framework's prediction: persistence-oriented schemes (RWR) beat
//! uniqueness-oriented ones (UT).

use comsig_apps::anomaly::{anomaly_scores, evaluate};
use comsig_core::distance::SHel;
use comsig_eval::report::{f3, f4, Table};

use crate::datasets::{self, Scale};
use crate::registry;

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let d = datasets::flow_with_anomalies(scale, 99);
    let subjects = d.local_nodes();
    let w = d.truth.anomaly_window.expect("anomalies injected");
    let g1 = d.windows.window(w - 1).expect("pre-anomaly window");
    let g2 = d.windows.window(w).expect("anomaly window");
    let k = scale.flow_k();

    let mut table = Table::new(
        "Extension A7: anomaly detection (injected behaviour changes, Dist_SHel)",
        &["scheme", "AUC", "R-precision", "positives"],
    );
    for scheme in registry::paper_schemes() {
        let scores = anomaly_scores(scheme.as_ref(), &SHel, g1, g2, &subjects, k);
        let eval = evaluate(&scores, &d.truth.anomalous).expect("non-trivial ground truth");
        table.push_row(vec![
            scheme.name(),
            f4(eval.auc),
            f3(eval.r_precision),
            eval.positives.to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detector_beats_chance_for_every_scheme() {
        let tables = run(Scale::Small);
        let json = tables[0].to_json();
        for row in json["rows"].as_array().unwrap() {
            let auc = row["AUC"].as_f64().unwrap();
            assert!(auc > 0.6, "scheme {} at chance: {auc}", row["scheme"]);
        }
    }
}
