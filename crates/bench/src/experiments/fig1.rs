//! Figure 1: persistence/uniqueness ellipses on both datasets.
//!
//! For each dataset × distance × scheme, one ellipse
//! `(μ_p ± s_p, μ_u ± s_u)` summarising the population's persistence and
//! uniqueness between two consecutive windows.

use comsig_eval::property_eval::ellipse;
use comsig_eval::report::{f3, Table};
use comsig_graph::{CommGraph, NodeId};

use crate::datasets::{self, Scale};
use crate::registry;

fn dataset_table(
    name: &str,
    g1: &CommGraph,
    g2: &CommGraph,
    subjects: &[NodeId],
    k: usize,
) -> Table {
    let mut table = Table::new(
        &format!("Figure 1 ({name}): persistence/uniqueness ellipses, k={k}"),
        &["distance", "scheme", "mu_p", "s_p", "mu_u", "s_u"],
    );
    for dist in registry::distances() {
        for scheme in registry::paper_schemes() {
            let a = scheme.signature_set(g1, subjects, k);
            let b = scheme.signature_set(g2, subjects, k);
            let e = ellipse(&scheme.name(), dist.as_ref(), &a, &b);
            table.push_row(vec![
                e.distance,
                e.scheme,
                f3(e.mu_p),
                f3(e.s_p),
                f3(e.mu_u),
                f3(e.s_u),
            ]);
        }
    }
    table
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let flow = datasets::flow(scale, 99);
    let flow_subjects = flow.local_nodes();
    let flow_table = dataset_table(
        "enterprise flows",
        flow.windows.window(0).expect("window 0"),
        flow.windows.window(1).expect("window 1"),
        &flow_subjects,
        scale.flow_k(),
    );

    let ql = datasets::querylog(scale, 99);
    let ql_subjects = ql.user_nodes();
    let ql_table = dataset_table(
        "query logs",
        ql.windows.window(0).expect("window 0"),
        ql.windows.window(1).expect("window 1"),
        &ql_subjects,
        scale.query_k(),
    );

    vec![flow_table, ql_table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_two_full_tables() {
        let tables = run(Scale::Small);
        assert_eq!(tables.len(), 2);
        // 4 distances x 5 schemes rows each.
        assert_eq!(tables[0].num_rows(), 20);
        assert_eq!(tables[1].num_rows(), 20);
        assert!(tables[0].title().contains("enterprise"));
    }
}
