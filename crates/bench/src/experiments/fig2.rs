//! Figure 2: ROC curves from network data under `Dist_SHel`.
//!
//! One averaged self-identification ROC curve per scheme between two
//! consecutive flow windows, reported as TPR at a fixed FPR grid (the
//! series one would plot).

use comsig_core::distance::SHel;
use comsig_eval::report::{f3, f4, Table};
use comsig_eval::roc::self_identification;

use crate::datasets::{self, Scale};
use crate::registry;

const FPR_GRID: [f64; 9] = [0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0];

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let flow = datasets::flow(scale, 99);
    let subjects = flow.local_nodes();
    let g1 = flow.windows.window(0).expect("window 0");
    let g2 = flow.windows.window(1).expect("window 1");
    let k = scale.flow_k();
    let dist = SHel;

    let mut headers: Vec<String> = vec!["scheme".into(), "AUC".into()];
    headers.extend(FPR_GRID.iter().map(|f| format!("TPR@{f}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Figure 2: average ROC curves, network data, Dist_SHel",
        &header_refs,
    );

    for scheme in registry::paper_schemes() {
        let a = scheme.signature_set(g1, &subjects, k);
        let b = scheme.signature_set(g2, &subjects, k);
        let result = self_identification(&dist, &a, &b);
        let mut row = vec![scheme.name(), f4(result.mean_auc)];
        row.extend(FPR_GRID.iter().map(|&f| f3(result.mean_curve.tpr_at(f))));
        table.push_row(row);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roc_table_has_all_schemes_and_monotone_rows() {
        let tables = run(Scale::Small);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].num_rows(), 5);
        let json = tables[0].to_json();
        for row in json["rows"].as_array().unwrap() {
            // TPR must not decrease along the FPR grid.
            let mut prev = -1.0;
            for &f in &FPR_GRID {
                let tpr = row[&format!("TPR@{f}")].as_f64().unwrap();
                assert!(tpr >= prev - 1e-9, "TPR not monotone");
                prev = tpr;
            }
            assert!((row["TPR@1"].as_f64().unwrap() - 1.0).abs() < 1e-9);
        }
    }
}
