//! Atomic per-experiment checkpoints.
//!
//! Long sweeps (`experiments all --scale full`) can die mid-run — OOM
//! kill, ctrl-C, a pre-empted CI runner. Each experiment cell writes its
//! result tables to `<dir>/<id>.<scale>.ckpt` via write-then-rename, so a
//! checkpoint is either absent or complete, never torn; a re-run resumes
//! from the completed cells without recomputing them. Payloads carry an
//! FNV-1a digest so a corrupted or hand-edited file is detected, warned
//! about, and recomputed rather than trusted.
//!
//! The payload is a small line-based text format (the offline build has
//! no generic serde machinery): an `id`/`scale` header followed by `T`
//! (title), `H` (headers) and `R` (row) records with tab-separated,
//! backslash-escaped cells. The atomic write-then-rename container and
//! the FNV-1a digest come from [`comsig_core::persist`] — the same
//! primitives the `comsig serve` durability plane is built on.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use comsig_core::persist;
use comsig_eval::report::Table;

use crate::datasets::Scale;

const MAGIC: &str = "comsig-checkpoint v2";

/// Result of probing a checkpoint.
#[derive(Debug)]
pub enum LoadOutcome {
    /// A valid checkpoint: the stored tables, ready to reuse.
    Hit(Vec<Table>),
    /// No checkpoint exists for this cell.
    Miss,
    /// A file exists but cannot be trusted; carries the reason. Callers
    /// should warn and recompute.
    Corrupt(String),
}

/// The checkpoint path for a cell.
pub fn path(dir: &Path, id: &str, scale: Scale) -> PathBuf {
    dir.join(format!("{id}.{}.ckpt", scale.name()))
}

fn escape(cell: &str) -> String {
    let mut out = String::with_capacity(cell.len());
    for c in cell.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out
}

fn unescape(field: &str) -> Result<String, String> {
    let mut out = String::with_capacity(field.len());
    let mut chars = field.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            other => return Err(format!("bad escape `\\{}`", other.unwrap_or(' '))),
        }
    }
    Ok(out)
}

fn cells_line(prefix: char, cells: &[String]) -> String {
    let escaped: Vec<String> = cells.iter().map(|c| escape(c)).collect();
    format!("{prefix} {}\n", escaped.join("\t"))
}

fn parse_cells(rest: &str) -> Result<Vec<String>, String> {
    rest.split('\t').map(unescape).collect()
}

fn serialize_tables(tables: &[Table]) -> String {
    let mut out = String::new();
    for t in tables {
        out.push_str(&format!("T {}\n", escape(t.title())));
        out.push_str(&cells_line('H', t.headers()));
        for row in t.rows() {
            out.push_str(&cells_line('R', row));
        }
    }
    out
}

fn parse_tables(body: &str) -> Result<Vec<Table>, String> {
    let mut tables: Vec<Table> = Vec::new();
    for (i, line) in body.lines().enumerate() {
        let lineno = i + 1;
        let (kind, rest) = line
            .split_once(' ')
            .ok_or_else(|| format!("body line {lineno}: missing record tag"))?;
        match kind {
            "T" => {
                let title = unescape(rest).map_err(|e| format!("body line {lineno}: {e}"))?;
                tables.push(Table::new(&title, &[]));
            }
            "H" => {
                let headers = parse_cells(rest).map_err(|e| format!("body line {lineno}: {e}"))?;
                let title = tables
                    .last()
                    .map(|t| t.title().to_owned())
                    .ok_or_else(|| format!("body line {lineno}: H before T"))?;
                let refs: Vec<&str> = headers.iter().map(String::as_str).collect();
                *tables
                    .last_mut()
                    .ok_or_else(|| format!("body line {lineno}: H before T"))? =
                    Table::new(&title, &refs);
            }
            "R" => {
                let cells = parse_cells(rest).map_err(|e| format!("body line {lineno}: {e}"))?;
                let table = tables
                    .last_mut()
                    .ok_or_else(|| format!("body line {lineno}: R before T"))?;
                if cells.len() != table.headers().len() {
                    return Err(format!(
                        "body line {lineno}: row width {} != header width {}",
                        cells.len(),
                        table.headers().len()
                    ));
                }
                table.push_row(cells);
            }
            other => return Err(format!("body line {lineno}: unknown record `{other}`")),
        }
    }
    Ok(tables)
}

/// Atomically writes the checkpoint for a cell via
/// [`persist::write_atomic`]: the digest-guarded payload goes to a
/// `.tmp` sibling first and is renamed into place, so readers never see
/// a partial file.
pub fn save(dir: &Path, id: &str, scale: Scale, tables: &[Table]) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let body = format!(
        "id {id}\nscale {}\n{}",
        scale.name(),
        serialize_tables(tables)
    );
    let target = path(dir, id, scale);
    persist::write_atomic(&target, MAGIC, body.as_bytes())?;
    Ok(target)
}

/// Probes the checkpoint for a cell.
pub fn load(dir: &Path, id: &str, scale: Scale) -> LoadOutcome {
    let target = path(dir, id, scale);
    let body = match persist::read_atomic(&target, MAGIC) {
        persist::LoadOutcome::Hit(body) => body,
        persist::LoadOutcome::Miss => return LoadOutcome::Miss,
        persist::LoadOutcome::Corrupt(reason) => return LoadOutcome::Corrupt(reason),
    };
    let text = match String::from_utf8(body) {
        Ok(text) => text,
        Err(e) => return LoadOutcome::Corrupt(format!("not UTF-8: {e}")),
    };
    let mut header = text.splitn(3, '\n');
    let (Some(id_line), Some(scale_line), Some(body)) =
        (header.next(), header.next(), header.next())
    else {
        return LoadOutcome::Corrupt("truncated header".to_owned());
    };
    if id_line != format!("id {id}") || scale_line != format!("scale {}", scale.name()) {
        return LoadOutcome::Corrupt(format!(
            "cell mismatch: file says `{id_line}; {scale_line}`, expected ({id}, {})",
            scale.name()
        ));
    }
    match parse_tables(body) {
        Ok(tables) => LoadOutcome::Hit(tables),
        Err(e) => LoadOutcome::Corrupt(format!("invalid payload: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tables() -> Vec<Table> {
        let mut a = Table::new("AUC", &["scheme", "Jac"]);
        a.push_row(vec!["TT".into(), "0.9086".into()]);
        a.push_row(vec!["UT".into(), "0.8827".into()]);
        let mut b = Table::new("odd cells", &["with\ttab", "with\nnewline"]);
        b.push_row(vec!["back\\slash".into(), String::new()]);
        vec![a, b]
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("comsig-checkpoint-tests")
            .join(name);
        // Each test gets a fresh cell directory.
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn rendered(tables: &[Table]) -> Vec<String> {
        tables.iter().map(Table::render).collect()
    }

    #[test]
    fn escaping_round_trips() {
        for s in ["", "plain", "a\tb", "a\nb", "a\\nb", "\\", "\\t", "a\r\n\\"] {
            assert_eq!(unescape(&escape(s)).unwrap(), s, "{s:?}");
        }
        assert!(unescape("bad \\x escape").is_err());
    }

    #[test]
    fn save_then_load_round_trips() {
        let dir = temp_dir("roundtrip");
        let tables = sample_tables();
        let target = save(&dir, "fig3", Scale::Small, &tables).unwrap();
        assert!(target.exists());
        assert!(
            !target.with_extension("ckpt.tmp").exists(),
            "tmp file must be renamed away"
        );
        match load(&dir, "fig3", Scale::Small) {
            LoadOutcome::Hit(loaded) => assert_eq!(rendered(&loaded), rendered(&tables)),
            other => panic!("expected Hit, got {other:?}"),
        }
    }

    #[test]
    fn missing_checkpoint_is_a_miss() {
        let dir = temp_dir("miss");
        assert!(matches!(
            load(&dir, "fig3", Scale::Small),
            LoadOutcome::Miss
        ));
    }

    #[test]
    fn cells_are_keyed_by_id_and_scale() {
        let dir = temp_dir("cells");
        save(&dir, "fig3", Scale::Small, &sample_tables()).unwrap();
        assert!(matches!(
            load(&dir, "fig4", Scale::Small),
            LoadOutcome::Miss
        ));
        assert!(matches!(
            load(&dir, "fig3", Scale::Medium),
            LoadOutcome::Miss
        ));
    }

    #[test]
    fn truncated_file_is_corrupt_not_a_panic() {
        let dir = temp_dir("truncated");
        let target = save(&dir, "fig3", Scale::Small, &sample_tables()).unwrap();
        let bytes = fs::read(&target).unwrap();
        for cut in [2, bytes.len() / 2, bytes.len() - 3] {
            fs::write(&target, &bytes[..cut]).unwrap();
            match load(&dir, "fig3", Scale::Small) {
                LoadOutcome::Corrupt(reason) => assert!(!reason.is_empty()),
                other => panic!("cut at {cut}: expected Corrupt, got {other:?}"),
            }
        }
    }

    #[test]
    fn tampered_payload_fails_the_digest() {
        let dir = temp_dir("tampered");
        let target = save(&dir, "fig3", Scale::Small, &sample_tables()).unwrap();
        let text = fs::read_to_string(&target).unwrap();
        assert!(text.contains("0.9086"));
        fs::write(&target, text.replace("0.9086", "0.1234")).unwrap();
        match load(&dir, "fig3", Scale::Small) {
            LoadOutcome::Corrupt(reason) => assert!(reason.contains("digest mismatch")),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn renamed_cell_is_rejected() {
        let dir = temp_dir("renamed");
        let from = save(&dir, "fig3", Scale::Small, &sample_tables()).unwrap();
        fs::rename(&from, path(&dir, "fig4", Scale::Small)).unwrap();
        match load(&dir, "fig4", Scale::Small) {
            LoadOutcome::Corrupt(reason) => assert!(reason.contains("cell mismatch")),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }
}
