//! Figure 4: robustness on network data.
//!
//! Each node of `G_t` is used as a query against the perturbed window
//! `G'_t` (α insertions, β unit decrements); the AUC of self-matching
//! measures how well identity survives perturbation.

use comsig_eval::report::{f4, Table};
use comsig_eval::roc::self_identification;
use comsig_graph::perturb::perturbed;

use crate::datasets::{self, Scale};
use crate::registry;

/// Runs the experiment for the paper's two settings
/// `α = β ∈ {0.1, 0.4}`.
pub fn run(scale: Scale) -> Vec<Table> {
    let flow = datasets::flow(scale, 99);
    let subjects = flow.local_nodes();
    let g = flow.windows.window(0).expect("window 0");
    let k = scale.flow_k();

    let schemes = registry::paper_schemes();
    let mut tables = Vec::new();
    for &rate in &[0.1f64, 0.4] {
        let gp = perturbed(g, rate, rate, 4242);
        let mut headers: Vec<String> = vec!["AUC".into()];
        headers.extend(schemes.iter().map(|s| s.name()));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut table = Table::new(
            &format!("Figure 4: robustness, alpha = beta = {rate}"),
            &header_refs,
        );
        let sets: Vec<_> = schemes
            .iter()
            .map(|s| {
                (
                    s.signature_set(g, &subjects, k),
                    s.signature_set(&gp, &subjects, k),
                )
            })
            .collect();
        for dist in registry::distances() {
            let mut row = vec![format!("Dist_{}", dist.name())];
            for (clean, pert) in &sets {
                row.push(f4(self_identification(dist.as_ref(), clean, pert).mean_auc));
            }
            table.push_row(row);
        }
        tables.push(table);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_settings_and_light_perturbation_is_easier() {
        let tables = run(Scale::Small);
        assert_eq!(tables.len(), 2);
        let light = tables[0].to_json();
        let heavy = tables[1].to_json();
        // On average, alpha = 0.1 must yield AUC >= alpha = 0.4.
        let mean = |json: &serde_json::Value| {
            let rows = json["rows"].as_array().unwrap();
            let mut sum = 0.0;
            let mut n = 0;
            for row in rows {
                for (key, v) in row.as_object().unwrap() {
                    if key != "AUC" {
                        sum += v.as_f64().unwrap();
                        n += 1;
                    }
                }
            }
            sum / n as f64
        };
        assert!(mean(&light) + 1e-9 >= mean(&heavy));
    }
}
