//! One module per regenerated table/figure. See DESIGN.md §4 for the
//! experiment index.

pub mod ablations;
pub mod anomaly;
pub mod callgraph;
pub mod checkpoint;
pub mod decay;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod lsh;
pub mod pushrwr;
pub mod sketches;
pub mod table4;

use comsig_eval::report::Table;

use crate::datasets::Scale;

/// A runnable experiment.
pub struct Experiment {
    /// Identifier used on the command line (e.g. `fig3`).
    pub id: &'static str,
    /// Which paper artifact it regenerates.
    pub title: &'static str,
    /// Produces the result tables.
    pub run: fn(Scale) -> Vec<Table>,
}

/// Every registered experiment, in DESIGN.md order.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig1",
            title: "Figure 1: signature persistence & uniqueness ellipses",
            run: fig1::run,
        },
        Experiment {
            id: "fig2",
            title: "Figure 2: ROC curves from network data (Dist_SHel)",
            run: fig2::run,
        },
        Experiment {
            id: "fig3",
            title: "Figure 3: AUC across signature schemes (both datasets)",
            run: fig3::run,
        },
        Experiment {
            id: "fig4",
            title: "Figure 4: robustness on network data",
            run: fig4::run,
        },
        Experiment {
            id: "fig5",
            title: "Figure 5: multiusage detection ROC",
            run: fig5::run,
        },
        Experiment {
            id: "fig6",
            title: "Figure 6: accuracy of label-masquerading detection",
            run: fig6::run,
        },
        Experiment {
            id: "table4",
            title: "Table IV: relative behaviour of the signature schemes",
            run: table4::run,
        },
        Experiment {
            id: "ablate-h",
            title: "Ablation A1: hop-count sweep (RWR^h -> RWR^inf)",
            run: ablations::run_h_sweep,
        },
        Experiment {
            id: "ablate-c",
            title: "Ablation A2: restart-probability sweep (c -> TT)",
            run: ablations::run_c_sweep,
        },
        Experiment {
            id: "ablate-k",
            title: "Ablation A3: signature-length sweep",
            run: ablations::run_k_sweep,
        },
        Experiment {
            id: "ablate-ut",
            title: "Ablation A4: UT scaling functions",
            run: ablations::run_ut_scalings,
        },
        Experiment {
            id: "sketches",
            title: "Extension A5: semi-streaming signatures vs exact",
            run: sketches::run,
        },
        Experiment {
            id: "lsh",
            title: "Extension A6: LSH vs exact nearest-neighbour search",
            run: lsh::run,
        },
        Experiment {
            id: "anomaly",
            title: "Extension A7: anomaly detection on injected ground truth",
            run: anomaly::run,
        },
        Experiment {
            id: "decay",
            title: "Extension A8: time-decayed signature histories (COI)",
            run: decay::run,
        },
        Experiment {
            id: "push-rwr",
            title: "Extension A9: forward-push approximate RWR",
            run: pushrwr::run,
        },
        Experiment {
            id: "callgraph",
            title: "Extension A10: telephone call graph (one-hop sufficiency)",
            run: callgraph::run,
        },
    ]
}

/// Looks up an experiment by id.
pub fn find(id: &str) -> Option<Experiment> {
    all().into_iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let ids: Vec<&str> = all().iter().map(|e| e.id).collect();
        assert_eq!(ids.len(), 17);
        let set: std::collections::HashSet<&&str> = ids.iter().collect();
        assert_eq!(set.len(), ids.len(), "duplicate experiment ids");
        assert!(find("fig3").is_some());
        assert!(find("nope").is_none());
    }
}
