//! Figure 3: AUC across signature schemes and distance functions —
//! (a) network flow data, (b) user query logs.

use comsig_eval::report::{f4, Table};
use comsig_eval::roc::self_identification;
use comsig_graph::{CommGraph, NodeId};

use crate::datasets::{self, Scale};
use crate::registry;

fn auc_table(name: &str, g1: &CommGraph, g2: &CommGraph, subjects: &[NodeId], k: usize) -> Table {
    let schemes = registry::paper_schemes();
    let mut headers: Vec<String> = vec!["AUC".into()];
    headers.extend(schemes.iter().map(|s| s.name()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&format!("Figure 3: AUC from {name}"), &header_refs);

    // Signature sets are distance-independent; compute once per scheme.
    let sets: Vec<_> = schemes
        .iter()
        .map(|s| {
            (
                s.signature_set(g1, subjects, k),
                s.signature_set(g2, subjects, k),
            )
        })
        .collect();

    for dist in registry::distances() {
        let mut row = vec![format!("Dist_{}", dist.name())];
        for (a, b) in &sets {
            row.push(f4(self_identification(dist.as_ref(), a, b).mean_auc));
        }
        table.push_row(row);
    }
    table
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let flow = datasets::flow(scale, 99);
    let flow_subjects = flow.local_nodes();
    let a = auc_table(
        "network flow data (a)",
        flow.windows.window(0).expect("window 0"),
        flow.windows.window(1).expect("window 1"),
        &flow_subjects,
        scale.flow_k(),
    );

    let ql = datasets::querylog(scale, 99);
    let ql_subjects = ql.user_nodes();
    let b = auc_table(
        "user query logs (b)",
        ql.windows.window(0).expect("window 0"),
        ql.windows.window(1).expect("window 1"),
        &ql_subjects,
        scale.query_k(),
    );
    vec![a, b]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_tables_four_rows_each() {
        let tables = run(Scale::Small);
        assert_eq!(tables.len(), 2);
        for t in &tables {
            assert_eq!(t.num_rows(), 4); // one row per distance
        }
        // All AUC cells parse as probabilities.
        let json = tables[0].to_json();
        for row in json["rows"].as_array().unwrap() {
            for scheme in ["TT", "UT", "RWR^3_0.1"] {
                let v = row[scheme].as_f64().unwrap();
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }
}
