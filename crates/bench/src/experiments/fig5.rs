//! Figure 5: multiusage detection ROC curves.
//!
//! Using the multiusage ground truth (individuals controlling 2–3 local
//! labels), each member label queries the population; its co-labels are
//! the targets. One AUC table across all four distances plus the
//! `Dist_SHel` ROC series.

use comsig_apps::multiusage;
use comsig_core::distance::SHel;
use comsig_eval::report::{f3, f4, Table};

use crate::datasets::{self, Scale};
use crate::registry;

const FPR_GRID: [f64; 9] = [0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0];

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let d = datasets::flow_with_multiusage(scale, 99);
    let subjects = d.local_nodes();
    let g = d.windows.window(0).expect("window 0");
    let k = scale.flow_k();
    let schemes = registry::application_schemes();

    let sets: Vec<_> = schemes
        .iter()
        .map(|s| s.signature_set(g, &subjects, k))
        .collect();

    // AUC across all distances.
    let mut headers: Vec<String> = vec!["AUC".into()];
    headers.extend(schemes.iter().map(|s| s.name()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut auc_table = Table::new("Figure 5: multiusage detection AUC", &header_refs);
    for dist in registry::distances() {
        let mut row = vec![format!("Dist_{}", dist.name())];
        for set in &sets {
            let eval = multiusage::evaluate(dist.as_ref(), set, &d.truth.multiusage_groups);
            row.push(f4(eval.mean_auc));
        }
        auc_table.push_row(row);
    }

    // ROC series under SHel.
    let mut headers: Vec<String> = vec!["scheme".into(), "AUC".into()];
    headers.extend(FPR_GRID.iter().map(|f| format!("TPR@{f}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut roc_table = Table::new("Figure 5: multiusage ROC curves (Dist_SHel)", &header_refs);
    for (scheme, set) in schemes.iter().zip(&sets) {
        let eval = multiusage::evaluate(&SHel, set, &d.truth.multiusage_groups);
        let mut row = vec![scheme.name(), f4(eval.mean_auc)];
        row.extend(FPR_GRID.iter().map(|&f| f3(eval.mean_curve.tpr_at(f))));
        roc_table.push_row(row);
    }

    vec![auc_table, roc_table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_shaped_correctly() {
        let tables = run(Scale::Small);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].num_rows(), 4); // distances
        assert_eq!(tables[1].num_rows(), 3); // application schemes
    }
}

#[cfg(test)]
mod full_scale_tests {
    use super::*;

    /// The paper-scale Figure 5 ordering: TT dominates RWR^3 and UT.
    /// Run explicitly with `cargo test -p comsig-bench --release -- --ignored`.
    #[test]
    #[ignore = "full-scale run (~20 s in release)"]
    fn fig5_full_ordering() {
        let tables = run(Scale::Full);
        let json = tables[0].to_json();
        for row in json["rows"].as_array().unwrap() {
            let tt = row["TT"].as_f64().unwrap();
            let ut = row["UT"].as_f64().unwrap();
            let rwr = row["RWR^3_0.1"].as_f64().unwrap();
            assert!(tt > rwr, "{}: TT {tt} !> RWR {rwr}", row["AUC"]);
            assert!(rwr > ut, "{}: RWR {rwr} !> UT {ut}", row["AUC"]);
        }
    }
}
