//! Figure 6: accuracy of label-masquerading detection.
//!
//! For each masquerade fraction `f`, a bijective relabelling of `f·|V|`
//! hosts is applied to window `t+1`; Algorithm 1 (with `δ` = mean
//! self-similarity / 5 and top-ℓ matching) recovers the mapping. Accuracy
//! = fraction of hosts correctly cleared or correctly re-paired.

use comsig_apps::masquerade::{
    accuracy, apply_masquerade, detect_label_masquerading, plan_masquerade, DetectorConfig,
};
use comsig_core::distance::SHel;
use comsig_eval::report::{f3, Table};

use crate::datasets::{self, Scale};
use crate::registry;

const FRACTIONS: [f64; 6] = [0.02, 0.05, 0.1, 0.2, 0.3, 0.4];
const ELLS: [usize; 3] = [1, 3, 5];

/// Runs the experiment (one table per ℓ, columns = schemes, rows = f).
pub fn run(scale: Scale) -> Vec<Table> {
    let d = datasets::flow(scale, 99);
    let subjects = d.local_nodes();
    let g1 = d.windows.window(0).expect("window 0");
    let g2 = d.windows.window(1).expect("window 1");
    let schemes = registry::application_schemes();

    let mut tables = Vec::new();
    for &ell in &ELLS {
        let mut headers: Vec<String> = vec!["f".into()];
        headers.extend(schemes.iter().map(|s| s.name()));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut table = Table::new(
            &format!("Figure 6: masquerading accuracy, l = {ell}, c = 5, Dist_SHel"),
            &header_refs,
        );
        for &f in &FRACTIONS {
            let plan = plan_masquerade(&subjects, f, 7000 + (f * 1000.0) as u64);
            let g2_masqueraded = apply_masquerade(g2, &plan);
            let mut row = vec![f3(f)];
            for scheme in &schemes {
                let cfg = DetectorConfig {
                    k: scale.flow_k(),
                    threshold_divisor: 5.0,
                    top_l: ell,
                };
                let det = detect_label_masquerading(
                    scheme.as_ref(),
                    &SHel,
                    g1,
                    &g2_masqueraded,
                    &subjects,
                    &cfg,
                );
                row.push(f3(accuracy(&det, &plan, subjects.len())));
            }
            table.push_row(row);
        }
        tables.push(table);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_table_per_ell_with_all_fractions() {
        let tables = run(Scale::Small);
        assert_eq!(tables.len(), ELLS.len());
        for t in &tables {
            assert_eq!(t.num_rows(), FRACTIONS.len());
        }
        // Accuracies are probabilities.
        for t in &tables {
            let json = t.to_json();
            for row in json["rows"].as_array().unwrap() {
                for (key, v) in row.as_object().unwrap() {
                    if key != "f" {
                        let a = v.as_f64().unwrap();
                        assert!((0.0..=1.0).contains(&a), "{key} = {a}");
                    }
                }
            }
        }
    }
}
