//! Extension A10: the telephone call graph — "the one-hop approach is
//! highly appropriate for certain graphs, e.g. the telephone call graph"
//! (Section III-B).
//!
//! On a non-bipartite person-to-person graph with stable contact lists,
//! the one-hop schemes should already be near-ceiling and the multi-hop
//! walk should add nothing (unlike on the flow data, where RWR³ wins) —
//! the contrast that motivates the paper's per-graph scheme choice.

use comsig_core::distance::SHel;
use comsig_core::scheme::{Rwr, SignatureScheme, TopTalkers, UnexpectedTalkers};
use comsig_datagen::callgraph::{self, CallGraphConfig};
use comsig_eval::property_eval::{persistence_values, uniqueness_values};
use comsig_eval::report::{f3, f4, Table};
use comsig_eval::roc::self_identification;
use comsig_eval::significance::AucEstimate;
use comsig_eval::stats::Summary;

use crate::datasets::Scale;

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let cfg = match scale {
        Scale::Small => CallGraphConfig::small(99),
        Scale::Medium => CallGraphConfig {
            num_subscribers: 150,
            num_circles: 30,
            seed: 99,
            ..CallGraphConfig::default()
        },
        Scale::Full => CallGraphConfig {
            seed: 99,
            ..CallGraphConfig::default()
        },
    };
    let d = callgraph::generate(&cfg);
    let subjects = d.subscriber_nodes();
    let g1 = d.windows.window(0).expect("window 0");
    let g2 = d.windows.window(1).expect("window 1");
    let k = 8; // roughly half the contact-list size
    let dist = SHel;

    let schemes: Vec<Box<dyn SignatureScheme>> = vec![
        Box::new(TopTalkers),
        Box::new(UnexpectedTalkers::new()),
        // On a general digraph the *directed* walk is meaningful.
        Box::new(Rwr::truncated(0.1, 3)),
        Box::new(Rwr::truncated(0.1, 3).undirected()),
    ];
    let mut table = Table::new(
        "Extension A10: telephone call graph (non-bipartite, Dist_SHel)",
        &["scheme", "AUC", "95% CI", "mu_p", "mu_u"],
    );
    for scheme in &schemes {
        let a = scheme.signature_set(g1, &subjects, k);
        let b = scheme.signature_set(g2, &subjects, k);
        let result = self_identification(&dist, &a, &b);
        let n = result.per_query.len();
        let est = AucEstimate::hanley_mcneil(result.mean_auc, n, n.saturating_sub(1).max(1));
        let (lo, hi) = est.confidence_interval(1.96);
        let label = if scheme.name() == "RWR^3_0.1" {
            // Disambiguate the directed/undirected pair in the output.
            if std::ptr::eq(scheme.as_ref(), schemes[2].as_ref()) {
                "RWR^3_0.1 (directed)".to_owned()
            } else {
                "RWR^3_0.1 (undirected)".to_owned()
            }
        } else {
            scheme.name()
        };
        table.push_row(vec![
            label,
            f4(result.mean_auc),
            format!("[{}, {}]", f3(lo), f3(hi)),
            f3(Summary::of(&persistence_values(&dist, &a, &b)).mean),
            f3(Summary::of(&uniqueness_values(&dist, &a)).mean),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hop_is_near_ceiling_and_multihop_adds_nothing() {
        let tables = run(Scale::Small);
        let json = tables[0].to_json();
        let rows = json["rows"].as_array().unwrap();
        let auc_of = |name: &str| {
            rows.iter()
                .find(|r| r["scheme"].as_str().unwrap().starts_with(name))
                .map(|r| r["AUC"].as_f64().unwrap())
                .unwrap()
        };
        let tt = auc_of("TT");
        let rwr_dir = auc_of("RWR^3_0.1 (directed)");
        // The paper's Section III-B claim: one-hop suffices on call
        // graphs. TT must be near-ceiling and the walk must not add a
        // meaningful margin over it.
        assert!(tt > 0.93, "TT should be near-ceiling on call graphs: {tt}");
        assert!(
            rwr_dir < tt + 0.03,
            "multi-hop should add nothing: RWR {rwr_dir} vs TT {tt}"
        );
    }
}
