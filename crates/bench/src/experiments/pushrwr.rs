//! Extension A9: forward-push approximate RWR (the Section VI open
//! problem — scalable RWR signature computation).
//!
//! Sweeps the push threshold `ε`: how close the approximate signatures
//! come to the exact steady-state RWR signatures, how much residual mass
//! the estimate leaves behind (the work/accuracy dial), and whether the
//! downstream self-identification AUC survives the approximation.

use comsig_core::distance::{Jaccard, SHel, SignatureDistance};
use comsig_core::scheme::{PushRwr, Rwr, SignatureScheme};
use comsig_eval::report::{f3, f4, Table};
use comsig_eval::roc::self_identification;

use crate::datasets::{self, Scale};

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let d = datasets::flow(scale, 99);
    let subjects = d.local_nodes();
    let g1 = d.windows.window(0).expect("window 0");
    let g2 = d.windows.window(1).expect("window 1");
    let k = scale.flow_k();

    let exact_scheme = Rwr::full(0.1).undirected();
    let exact_q = exact_scheme.signature_set(g1, &subjects, k);
    let exact_c = exact_scheme.signature_set(g2, &subjects, k);
    let exact_auc = self_identification(&SHel, &exact_q, &exact_c).mean_auc;

    let mut table = Table::new(
        "Extension A9: forward-push approximate RWR vs exact (c = 0.1)",
        &[
            "epsilon",
            "mean Jaccard to exact sigs",
            "mean estimate mass",
            "AUC",
            "exact AUC",
        ],
    );
    for eps in [1e-2f64, 1e-3, 1e-4, 1e-5] {
        let scheme = PushRwr::new(0.1, eps).undirected();
        let q = scheme.signature_set(g1, &subjects, k);
        let c = scheme.signature_set(g2, &subjects, k);
        let gap: f64 = subjects
            .iter()
            .map(|&v| Jaccard.distance(q.get(v).expect("sig"), exact_q.get(v).expect("sig")))
            .sum::<f64>()
            / subjects.len().max(1) as f64;
        // Mass captured by the estimate vector (1 − residual): a proxy
        // for how much of the walk the push explored.
        let mass: f64 = subjects
            .iter()
            .map(|&v| scheme.occupancy(g1, v).l1_norm())
            .sum::<f64>()
            / subjects.len().max(1) as f64;
        let auc = self_identification(&SHel, &q, &c).mean_auc;
        table.push_row(vec![
            format!("{eps:.0e}"),
            f3(gap),
            f3(mass),
            f4(auc),
            f4(exact_auc),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finer_epsilon_converges_to_exact() {
        let tables = run(Scale::Small);
        let json = tables[0].to_json();
        let rows = json["rows"].as_array().unwrap();
        let first_gap = rows[0]["mean Jaccard to exact sigs"].as_f64().unwrap();
        let last_gap = rows.last().unwrap()["mean Jaccard to exact sigs"]
            .as_f64()
            .unwrap();
        assert!(last_gap <= first_gap + 1e-9);
        assert!(last_gap < 0.15, "eps = 1e-5 gap too large: {last_gap}");
        // Downstream AUC must be within a couple of points of exact.
        let auc = rows.last().unwrap()["AUC"].as_f64().unwrap();
        let exact = rows.last().unwrap()["exact AUC"].as_f64().unwrap();
        assert!((auc - exact).abs() < 0.05, "AUC {auc} vs exact {exact}");
        // Mass captured grows with finer epsilon.
        let m0 = rows[0]["mean estimate mass"].as_f64().unwrap();
        let m3 = rows.last().unwrap()["mean estimate mass"].as_f64().unwrap();
        assert!(m3 >= m0 - 1e-9);
    }
}
