//! Writes the perf snapshots at the repository root:
//!
//! * `BENCH_schemes.json` — median ns/op for each signature scheme over
//!   the Medium flow dataset, covering both the batched dense-workspace
//!   RWR engine and the per-subject SparseVec reference path;
//! * `BENCH_matching.json` — indexed vs brute-force `rank_all` on
//!   synthetic populations at `|C| ∈ {1k, 10k, 50k}`, `k = 10`.
//!
//! Run with `cargo run --release -p comsig-bench --bin bench_snapshot`.
//! The snapshots are the landed, machine-readable record of the perf
//! numbers quoted in README.md; re-run after touching the engine or the
//! matcher.

#![forbid(unsafe_code)]

use std::time::Instant;

use rayon::prelude::*;
use serde_json::{json, Map, Number, Value};

use comsig_bench::synth::{matching_population, query_subset, stream_workload};
use comsig_bench::{datasets, Scale};
use comsig_core::distance::SHel;
use comsig_core::pipeline::{DeltaScheme, SignaturePipeline};
use comsig_core::scheme::{Rwr, SignatureScheme, TopTalkers, UnexpectedTalkers};
use comsig_core::SignatureSet;
use comsig_eval::matcher::{rank_all, rank_all_reference};
use comsig_graph::{CommGraph, NodeId, ShardPlan};

/// Samples per measurement; the median is reported.
const SAMPLES: usize = 7;

/// Kernel variant axis recorded in every snapshot: the blocked,
/// 4-lane-chunked f64 kernels of DESIGN.md §15. The opt-in
/// `f32-scatter` feature never changes the default path these snapshots
/// measure, so the axis is a constant of the build, not a sweep.
const KERNEL: &str = "blocked-lane4-f64";

fn median_ns(mut f: impl FnMut()) -> f64 {
    // One untimed warm-up run (fills lazy caches such as the merged
    // undirected CSR, touches the page cache).
    f();
    let mut ns: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    ns.sort_by(|a, b| a.total_cmp(b));
    ns[ns.len() / 2]
}

fn reference_signature_set(rwr: &Rwr, g: &CommGraph, subjects: &[NodeId], k: usize) -> usize {
    let sigs: Vec<_> = subjects
        .par_iter()
        .map(|&v| rwr.signature(g, v, k))
        .collect();
    sigs.len()
}

fn main() {
    let d = datasets::flow(Scale::Medium, 7);
    let g = d.windows.window(0).expect("window 0");
    let subjects = d.local_nodes();
    let k = Scale::Medium.flow_k();

    let mut results: Vec<(String, f64)> = Vec::new();
    let mut record = |name: &str, ns: f64| {
        eprintln!("{name:<32} {ns:>16.0} ns/op (median of {SAMPLES})");
        results.push((name.to_string(), ns));
    };

    record(
        "TT_all",
        median_ns(|| {
            std::hint::black_box(TopTalkers.signature_set(g, &subjects, k));
        }),
    );
    record(
        "UT_all",
        median_ns(|| {
            std::hint::black_box(UnexpectedTalkers::new().signature_set(g, &subjects, k));
        }),
    );
    for h in [3u32, 5, 7] {
        let rwr = Rwr::truncated(0.1, h).undirected();
        record(
            &format!("RWR{h}_all_batched"),
            median_ns(|| {
                let set: SignatureSet = rwr.signature_set(g, &subjects, k);
                std::hint::black_box(set);
            }),
        );
        record(
            &format!("RWR{h}_all_reference"),
            median_ns(|| {
                std::hint::black_box(reference_signature_set(&rwr, g, &subjects, k));
            }),
        );
    }

    let mut schemes = Map::new();
    for (name, ns) in &results {
        let mut entry = Map::new();
        entry.insert(
            "median_ns".to_string(),
            Value::Number(Number::from_f64(ns.round()).expect("finite")),
        );
        entry.insert(
            "ns_per_subject".to_string(),
            Value::Number(Number::from_f64((ns / subjects.len() as f64).round()).expect("finite")),
        );
        schemes.insert(name.clone(), Value::Object(entry));
    }
    let out = json!({
        "dataset": "flow_medium_window0",
        "num_subjects": subjects.len(),
        "num_nodes": g.num_nodes(),
        "num_edges": g.num_edges(),
        "k": k,
        "samples": SAMPLES,
        "kernel": KERNEL,
        "schemes": Value::Object(schemes),
    });

    // The bin may be invoked from any directory; anchor the output at
    // the workspace root relative to this crate's manifest.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_schemes.json");
    let body = serde_json::to_string_pretty(&out).expect("snapshot serialises");
    std::fs::write(path, body + "\n").expect("write BENCH_schemes.json");
    eprintln!("wrote {path}");

    matching_snapshot();
    pipeline_snapshot();
}

/// Queries per rank_all sweep in the matching snapshot.
const MATCH_QUERIES: usize = 64;

/// Signature length of the matching snapshot (the paper's `k`).
const MATCH_K: usize = 10;

/// Times indexed vs brute-force `rank_all` on synthetic populations and
/// writes `BENCH_matching.json`.
fn matching_snapshot() {
    let mut sizes = Map::new();
    for n in [1_000usize, 10_000, 50_000] {
        let pop = matching_population(n, MATCH_K, 42);
        let queries = query_subset(&pop, MATCH_QUERIES);
        let indexed_ns = median_ns(|| {
            std::hint::black_box(rank_all(&SHel, &queries, &pop));
        });
        let brute_ns = median_ns(|| {
            std::hint::black_box(rank_all_reference(&SHel, &queries, &pop));
        });
        let speedup = brute_ns / indexed_ns;
        eprintln!(
            "rank_all |C|={n:<6} indexed {indexed_ns:>14.0} ns, brute {brute_ns:>14.0} ns, {speedup:.1}x"
        );
        let mut entry = Map::new();
        entry.insert(
            "indexed_median_ns".to_string(),
            Value::Number(Number::from_f64(indexed_ns.round()).expect("finite")),
        );
        entry.insert(
            "brute_median_ns".to_string(),
            Value::Number(Number::from_f64(brute_ns.round()).expect("finite")),
        );
        entry.insert(
            "speedup".to_string(),
            Value::Number(Number::from_f64((speedup * 100.0).round() / 100.0).expect("finite")),
        );
        sizes.insert(n.to_string(), Value::Object(entry));
    }
    let out = json!({
        "workload": "rank_all_synthetic",
        "distance": "SHel",
        "k": MATCH_K,
        "queries": MATCH_QUERIES,
        "samples": SAMPLES,
        "kernel": KERNEL,
        "candidates": Value::Object(sizes),
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_matching.json");
    let body = serde_json::to_string_pretty(&out).expect("snapshot serialises");
    std::fs::write(path, body + "\n").expect("write BENCH_matching.json");
    eprintln!("wrote {path}");
}

/// Subject (local) count of the streaming-pipeline snapshot.
const STREAM_LOCALS: usize = 2_000;

/// External-node count of the streaming-pipeline snapshot.
const STREAM_EXTERNALS: usize = 8_000;

/// Out-edges per local; `STREAM_LOCALS * STREAM_OUT_DEGREE` edges total.
const STREAM_OUT_DEGREE: usize = 5;

/// Signature length of the streaming-pipeline snapshot.
const STREAM_K: usize = 10;

fn finite(v: f64) -> Value {
    Value::Number(Number::from_f64(v).expect("finite"))
}

/// Times `SignaturePipeline::advance` against a full window rebuild
/// (`apply_delta` + complete `signature_set` — both paths pay the graph
/// patch, so the comparison isolates the signature work) over the
/// bipartite stream workload, and writes `BENCH_pipeline.json`.
fn pipeline_snapshot() {
    // The first delta is the warm-up; the remaining SAMPLES are timed.
    let windows = SAMPLES + 1;
    let mut churn_map = Map::new();
    for churn in [0.002f64, 0.01, 0.05, 0.10] {
        let cases: Vec<(&str, Box<dyn DeltaScheme>)> = vec![
            ("TT", Box::new(TopTalkers)),
            ("RWR3", Box::new(Rwr::truncated(0.1, 3))),
        ];
        let mut schemes = Map::new();
        for (name, scheme) in &cases {
            let wl = stream_workload(
                STREAM_LOCALS,
                STREAM_EXTERNALS,
                STREAM_OUT_DEGREE,
                churn,
                windows,
                42,
            );

            let mut pipeline =
                SignaturePipeline::new(scheme.as_ref(), wl.graph.clone(), &wl.subjects, STREAM_K);
            let mut advance_samples = Vec::with_capacity(SAMPLES);
            let mut dirty_fraction = 0.0;
            for (i, delta) in wl.deltas.iter().enumerate() {
                let t = Instant::now();
                let report = pipeline.advance(delta);
                let ns = t.elapsed().as_nanos() as f64;
                std::hint::black_box(pipeline.signatures());
                if i > 0 {
                    advance_samples.push(ns);
                    dirty_fraction += report.dirty_subjects() as f64 / report.total_subjects as f64;
                }
            }
            let advance_ns = median(advance_samples);
            let dirty_fraction = dirty_fraction / SAMPLES as f64;

            let mut g = wl.graph.clone();
            let mut rebuild_samples = Vec::with_capacity(SAMPLES);
            for (i, delta) in wl.deltas.iter().enumerate() {
                let t = Instant::now();
                let next = g.apply_delta(delta);
                let sigs = scheme.signature_set(&next, &wl.subjects, STREAM_K);
                let ns = t.elapsed().as_nanos() as f64;
                std::hint::black_box(&sigs);
                g = next;
                if i > 0 {
                    rebuild_samples.push(ns);
                }
            }
            let rebuild_ns = median(rebuild_samples);

            let speedup = rebuild_ns / advance_ns;
            eprintln!(
                "pipeline churn={churn:<5} {name:<5} advance {advance_ns:>12.0} ns, \
                 rebuild {rebuild_ns:>12.0} ns, {speedup:.1}x (dirty {:.1}%)",
                dirty_fraction * 100.0
            );
            let mut entry = Map::new();
            entry.insert("advance_median_ns".to_string(), finite(advance_ns.round()));
            entry.insert("rebuild_median_ns".to_string(), finite(rebuild_ns.round()));
            entry.insert(
                "speedup".to_string(),
                finite((speedup * 100.0).round() / 100.0),
            );
            entry.insert(
                "dirty_fraction".to_string(),
                finite((dirty_fraction * 10_000.0).round() / 10_000.0),
            );
            schemes.insert((*name).to_string(), Value::Object(entry));
        }
        churn_map.insert(format!("{churn}"), Value::Object(schemes));
    }
    let out = json!({
        "workload": "stream_bipartite",
        "locals": STREAM_LOCALS,
        "externals": STREAM_EXTERNALS,
        "edges": STREAM_LOCALS * STREAM_OUT_DEGREE,
        "k": STREAM_K,
        "samples": SAMPLES,
        "kernel": KERNEL,
        "churn": Value::Object(churn_map),
        "thread_scaling": thread_scaling_axis(),
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    let body = serde_json::to_string_pretty(&out).expect("snapshot serialises");
    std::fs::write(path, body + "\n").expect("write BENCH_pipeline.json");
    eprintln!("wrote {path}");
}

/// Subject count of the thread-scaling axis: a 10^5-subject high-churn
/// stream sharded over explicit [`ShardPlan`]s.
const SCALE_LOCALS: usize = 100_000;

/// External hosts of the thread-scaling workload (same 1:4 ratio as the
/// churn sweep).
const SCALE_EXTERNALS: usize = 400_000;

/// Churn of the thread-scaling workload — high enough that the advance
/// is dominated by signature recomputation rather than delta plumbing.
const SCALE_CHURN: f64 = 0.10;

/// Times the sharded advance at 1/2/4/8 worker threads on the
/// high-churn 10^5-subject workload. The full-rebuild baseline is
/// measured once per scheme (it does not depend on the plan); every
/// thread count reports its advance median and speedup against that
/// shared baseline. The output is bit-identical at every thread count,
/// so the axis is purely a scheduling measurement.
fn thread_scaling_axis() -> Value {
    let windows = SAMPLES + 1;
    let cases: Vec<(&str, Box<dyn DeltaScheme>)> = vec![
        ("TT", Box::new(TopTalkers)),
        ("RWR3", Box::new(Rwr::truncated(0.1, 3))),
    ];
    let mut schemes = Map::new();
    for (name, scheme) in &cases {
        let wl = stream_workload(
            SCALE_LOCALS,
            SCALE_EXTERNALS,
            STREAM_OUT_DEGREE,
            SCALE_CHURN,
            windows,
            42,
        );

        let mut g = wl.graph.clone();
        let mut rebuild_samples = Vec::with_capacity(SAMPLES);
        for (i, delta) in wl.deltas.iter().enumerate() {
            let t = Instant::now();
            let next = g.apply_delta(delta);
            let sigs = scheme.signature_set(&next, &wl.subjects, STREAM_K);
            let ns = t.elapsed().as_nanos() as f64;
            std::hint::black_box(&sigs);
            g = next;
            if i > 0 {
                rebuild_samples.push(ns);
            }
        }
        let rebuild_ns = median(rebuild_samples);

        let mut threads_map = Map::new();
        for threads in [1usize, 2, 4, 8] {
            let mut pipeline = SignaturePipeline::with_plan(
                scheme.as_ref(),
                wl.graph.clone(),
                &wl.subjects,
                STREAM_K,
                ShardPlan::new(threads),
            );
            let mut advance_samples = Vec::with_capacity(SAMPLES);
            for (i, delta) in wl.deltas.iter().enumerate() {
                let t = Instant::now();
                pipeline.advance(delta);
                let ns = t.elapsed().as_nanos() as f64;
                std::hint::black_box(pipeline.signatures());
                if i > 0 {
                    advance_samples.push(ns);
                }
            }
            let advance_ns = median(advance_samples);
            let speedup = rebuild_ns / advance_ns;
            eprintln!(
                "scaling {name:<5} threads={threads} advance {advance_ns:>12.0} ns, \
                 rebuild {rebuild_ns:>12.0} ns, {speedup:.1}x"
            );
            let mut entry = Map::new();
            entry.insert("advance_median_ns".to_string(), finite(advance_ns.round()));
            entry.insert(
                "speedup_vs_rebuild".to_string(),
                finite((speedup * 100.0).round() / 100.0),
            );
            threads_map.insert(format!("{threads}"), Value::Object(entry));
        }
        let mut entry = Map::new();
        entry.insert("rebuild_median_ns".to_string(), finite(rebuild_ns.round()));
        entry.insert("threads".to_string(), Value::Object(threads_map));
        schemes.insert((*name).to_string(), Value::Object(entry));
    }
    json!({
        "locals": SCALE_LOCALS,
        "externals": SCALE_EXTERNALS,
        "edges": SCALE_LOCALS * STREAM_OUT_DEGREE,
        "churn": SCALE_CHURN,
        "k": STREAM_K,
        "schemes": Value::Object(schemes),
    })
}

/// Median of a pre-collected sample vector (the streaming paths advance
/// real state per sample, so the repeated-closure [`median_ns`] shape
/// does not fit).
fn median(mut ns: Vec<f64>) -> f64 {
    assert!(!ns.is_empty(), "no samples");
    ns.sort_by(|a, b| a.total_cmp(b));
    ns[ns.len() / 2]
}
