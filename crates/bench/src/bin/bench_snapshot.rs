//! Writes the perf snapshots at the repository root:
//!
//! * `BENCH_schemes.json` — median ns/op for each signature scheme over
//!   the Medium flow dataset, covering both the batched dense-workspace
//!   RWR engine and the per-subject SparseVec reference path;
//! * `BENCH_matching.json` — indexed vs brute-force `rank_all` on
//!   synthetic populations at `|C| ∈ {1k, 10k, 50k}`, `k = 10`.
//!
//! Run with `cargo run --release -p comsig-bench --bin bench_snapshot`.
//! The snapshots are the landed, machine-readable record of the perf
//! numbers quoted in README.md; re-run after touching the engine or the
//! matcher.

#![forbid(unsafe_code)]

use std::time::Instant;

use rayon::prelude::*;
use serde_json::{json, Map, Number, Value};

use comsig_bench::experiments::sketches;
use comsig_bench::synth::{matching_population, query_subset, stream_workload};
use comsig_bench::{datasets, Scale};
use comsig_core::distance::{Jaccard, SHel};
use comsig_core::pipeline::{DeltaScheme, SignaturePipeline};
use comsig_core::scheme::{Rwr, SignatureScheme, TopTalkers, UnexpectedTalkers};
use comsig_core::{SignatureSet, SignatureTier};
use comsig_eval::ann::{top_l_recall, AnnConfig};
use comsig_eval::matcher::{rank_all, rank_all_approx, rank_all_reference};
use comsig_graph::{CommGraph, NodeId, ShardPlan};
use comsig_sketch::stream::StreamConfig;
use comsig_sketch::tier::{SketchScheme, SketchTier};

/// Samples per measurement; the median is reported.
const SAMPLES: usize = 7;

/// Kernel variant axis recorded in every snapshot: the blocked,
/// 4-lane-chunked f64 kernels of DESIGN.md §15. The opt-in
/// `f32-scatter` feature never changes the default path these snapshots
/// measure, so the axis is a constant of the build, not a sweep.
const KERNEL: &str = "blocked-lane4-f64";

fn median_ns(mut f: impl FnMut()) -> f64 {
    // One untimed warm-up run (fills lazy caches such as the merged
    // undirected CSR, touches the page cache).
    f();
    let mut ns: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    ns.sort_by(|a, b| a.total_cmp(b));
    ns[ns.len() / 2]
}

fn reference_signature_set(rwr: &Rwr, g: &CommGraph, subjects: &[NodeId], k: usize) -> usize {
    let sigs: Vec<_> = subjects
        .par_iter()
        .map(|&v| rwr.signature(g, v, k))
        .collect();
    sigs.len()
}

fn main() {
    let d = datasets::flow(Scale::Medium, 7);
    let g = d.windows.window(0).expect("window 0");
    let subjects = d.local_nodes();
    let k = Scale::Medium.flow_k();

    let mut results: Vec<(String, f64)> = Vec::new();
    let mut record = |name: &str, ns: f64| {
        eprintln!("{name:<32} {ns:>16.0} ns/op (median of {SAMPLES})");
        results.push((name.to_string(), ns));
    };

    record(
        "TT_all",
        median_ns(|| {
            std::hint::black_box(TopTalkers.signature_set(g, &subjects, k));
        }),
    );
    record(
        "UT_all",
        median_ns(|| {
            std::hint::black_box(UnexpectedTalkers::new().signature_set(g, &subjects, k));
        }),
    );
    for h in [3u32, 5, 7] {
        let rwr = Rwr::truncated(0.1, h).undirected();
        record(
            &format!("RWR{h}_all_batched"),
            median_ns(|| {
                let set: SignatureSet = rwr.signature_set(g, &subjects, k);
                std::hint::black_box(set);
            }),
        );
        record(
            &format!("RWR{h}_all_reference"),
            median_ns(|| {
                std::hint::black_box(reference_signature_set(&rwr, g, &subjects, k));
            }),
        );
    }

    let mut schemes = Map::new();
    for (name, ns) in &results {
        let mut entry = Map::new();
        entry.insert(
            "median_ns".to_string(),
            Value::Number(Number::from_f64(ns.round()).expect("finite")),
        );
        entry.insert(
            "ns_per_subject".to_string(),
            Value::Number(Number::from_f64((ns / subjects.len() as f64).round()).expect("finite")),
        );
        schemes.insert(name.clone(), Value::Object(entry));
    }
    let out = json!({
        "dataset": "flow_medium_window0",
        "num_subjects": subjects.len(),
        "num_nodes": g.num_nodes(),
        "num_edges": g.num_edges(),
        "k": k,
        "samples": SAMPLES,
        "kernel": KERNEL,
        "schemes": Value::Object(schemes),
    });

    // The bin may be invoked from any directory; anchor the output at
    // the workspace root relative to this crate's manifest.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_schemes.json");
    let body = serde_json::to_string_pretty(&out).expect("snapshot serialises");
    std::fs::write(path, body + "\n").expect("write BENCH_schemes.json");
    eprintln!("wrote {path}");

    matching_snapshot();
    pipeline_snapshot();
    sketch_snapshot();
}

/// Queries per rank_all sweep in the matching snapshot.
const MATCH_QUERIES: usize = 64;

/// Signature length of the matching snapshot (the paper's `k`).
const MATCH_K: usize = 10;

/// Times indexed vs brute-force `rank_all` on synthetic populations and
/// writes `BENCH_matching.json`.
fn matching_snapshot() {
    let mut sizes = Map::new();
    for n in [1_000usize, 10_000, 50_000] {
        let pop = matching_population(n, MATCH_K, 42);
        let queries = query_subset(&pop, MATCH_QUERIES);
        let indexed_ns = median_ns(|| {
            std::hint::black_box(rank_all(&SHel, &queries, &pop));
        });
        let brute_ns = median_ns(|| {
            std::hint::black_box(rank_all_reference(&SHel, &queries, &pop));
        });
        let speedup = brute_ns / indexed_ns;
        eprintln!(
            "rank_all |C|={n:<6} indexed {indexed_ns:>14.0} ns, brute {brute_ns:>14.0} ns, {speedup:.1}x"
        );
        let mut entry = Map::new();
        entry.insert(
            "indexed_median_ns".to_string(),
            Value::Number(Number::from_f64(indexed_ns.round()).expect("finite")),
        );
        entry.insert(
            "brute_median_ns".to_string(),
            Value::Number(Number::from_f64(brute_ns.round()).expect("finite")),
        );
        entry.insert(
            "speedup".to_string(),
            Value::Number(Number::from_f64((speedup * 100.0).round() / 100.0).expect("finite")),
        );
        sizes.insert(n.to_string(), Value::Object(entry));
    }
    let out = json!({
        "workload": "rank_all_synthetic",
        "distance": "SHel",
        "k": MATCH_K,
        "queries": MATCH_QUERIES,
        "samples": SAMPLES,
        "kernel": KERNEL,
        "candidates": Value::Object(sizes),
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_matching.json");
    let body = serde_json::to_string_pretty(&out).expect("snapshot serialises");
    std::fs::write(path, body + "\n").expect("write BENCH_matching.json");
    eprintln!("wrote {path}");
}

/// Subject (local) count of the streaming-pipeline snapshot.
const STREAM_LOCALS: usize = 2_000;

/// External-node count of the streaming-pipeline snapshot.
const STREAM_EXTERNALS: usize = 8_000;

/// Out-edges per local; `STREAM_LOCALS * STREAM_OUT_DEGREE` edges total.
const STREAM_OUT_DEGREE: usize = 5;

/// Signature length of the streaming-pipeline snapshot.
const STREAM_K: usize = 10;

fn finite(v: f64) -> Value {
    Value::Number(Number::from_f64(v).expect("finite"))
}

/// Times `SignaturePipeline::advance` against a full window rebuild
/// (`apply_delta` + complete `signature_set` — both paths pay the graph
/// patch, so the comparison isolates the signature work) over the
/// bipartite stream workload, and writes `BENCH_pipeline.json`.
fn pipeline_snapshot() {
    // The first delta is the warm-up; the remaining SAMPLES are timed.
    let windows = SAMPLES + 1;
    let mut churn_map = Map::new();
    for churn in [0.002f64, 0.01, 0.05, 0.10] {
        let cases: Vec<(&str, Box<dyn DeltaScheme>)> = vec![
            ("TT", Box::new(TopTalkers)),
            ("RWR3", Box::new(Rwr::truncated(0.1, 3))),
        ];
        let mut schemes = Map::new();
        for (name, scheme) in &cases {
            let wl = stream_workload(
                STREAM_LOCALS,
                STREAM_EXTERNALS,
                STREAM_OUT_DEGREE,
                churn,
                windows,
                42,
            );

            let mut pipeline =
                SignaturePipeline::new(scheme.as_ref(), wl.graph.clone(), &wl.subjects, STREAM_K);
            let mut advance_samples = Vec::with_capacity(SAMPLES);
            let mut dirty_fraction = 0.0;
            for (i, delta) in wl.deltas.iter().enumerate() {
                let t = Instant::now();
                let report = pipeline.advance(delta);
                let ns = t.elapsed().as_nanos() as f64;
                std::hint::black_box(pipeline.signatures());
                if i > 0 {
                    advance_samples.push(ns);
                    dirty_fraction += report.dirty_subjects() as f64 / report.total_subjects as f64;
                }
            }
            let advance_ns = median(advance_samples);
            let dirty_fraction = dirty_fraction / SAMPLES as f64;

            let mut g = wl.graph.clone();
            let mut rebuild_samples = Vec::with_capacity(SAMPLES);
            for (i, delta) in wl.deltas.iter().enumerate() {
                let t = Instant::now();
                let next = g.apply_delta(delta);
                let sigs = scheme.signature_set(&next, &wl.subjects, STREAM_K);
                let ns = t.elapsed().as_nanos() as f64;
                std::hint::black_box(&sigs);
                g = next;
                if i > 0 {
                    rebuild_samples.push(ns);
                }
            }
            let rebuild_ns = median(rebuild_samples);

            let speedup = rebuild_ns / advance_ns;
            eprintln!(
                "pipeline churn={churn:<5} {name:<5} advance {advance_ns:>12.0} ns, \
                 rebuild {rebuild_ns:>12.0} ns, {speedup:.1}x (dirty {:.1}%)",
                dirty_fraction * 100.0
            );
            let mut entry = Map::new();
            entry.insert("advance_median_ns".to_string(), finite(advance_ns.round()));
            entry.insert("rebuild_median_ns".to_string(), finite(rebuild_ns.round()));
            entry.insert(
                "speedup".to_string(),
                finite((speedup * 100.0).round() / 100.0),
            );
            entry.insert(
                "dirty_fraction".to_string(),
                finite((dirty_fraction * 10_000.0).round() / 10_000.0),
            );
            schemes.insert((*name).to_string(), Value::Object(entry));
        }
        churn_map.insert(format!("{churn}"), Value::Object(schemes));
    }
    let out = json!({
        "workload": "stream_bipartite",
        "locals": STREAM_LOCALS,
        "externals": STREAM_EXTERNALS,
        "edges": STREAM_LOCALS * STREAM_OUT_DEGREE,
        "k": STREAM_K,
        "samples": SAMPLES,
        "kernel": KERNEL,
        "churn": Value::Object(churn_map),
        "thread_scaling": thread_scaling_axis(),
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    let body = serde_json::to_string_pretty(&out).expect("snapshot serialises");
    std::fs::write(path, body + "\n").expect("write BENCH_pipeline.json");
    eprintln!("wrote {path}");
}

/// Subject count of the thread-scaling axis: a 10^5-subject high-churn
/// stream sharded over explicit [`ShardPlan`]s.
const SCALE_LOCALS: usize = 100_000;

/// External hosts of the thread-scaling workload (same 1:4 ratio as the
/// churn sweep).
const SCALE_EXTERNALS: usize = 400_000;

/// Churn of the thread-scaling workload — high enough that the advance
/// is dominated by signature recomputation rather than delta plumbing.
const SCALE_CHURN: f64 = 0.10;

/// Times the sharded advance at 1/2/4/8 worker threads on the
/// high-churn 10^5-subject workload. The full-rebuild baseline is
/// measured once per scheme (it does not depend on the plan); every
/// thread count reports its advance median and speedup against that
/// shared baseline. The output is bit-identical at every thread count,
/// so the axis is purely a scheduling measurement.
fn thread_scaling_axis() -> Value {
    let windows = SAMPLES + 1;
    let cases: Vec<(&str, Box<dyn DeltaScheme>)> = vec![
        ("TT", Box::new(TopTalkers)),
        ("RWR3", Box::new(Rwr::truncated(0.1, 3))),
    ];
    let mut schemes = Map::new();
    for (name, scheme) in &cases {
        let wl = stream_workload(
            SCALE_LOCALS,
            SCALE_EXTERNALS,
            STREAM_OUT_DEGREE,
            SCALE_CHURN,
            windows,
            42,
        );

        let mut g = wl.graph.clone();
        let mut rebuild_samples = Vec::with_capacity(SAMPLES);
        for (i, delta) in wl.deltas.iter().enumerate() {
            let t = Instant::now();
            let next = g.apply_delta(delta);
            let sigs = scheme.signature_set(&next, &wl.subjects, STREAM_K);
            let ns = t.elapsed().as_nanos() as f64;
            std::hint::black_box(&sigs);
            g = next;
            if i > 0 {
                rebuild_samples.push(ns);
            }
        }
        let rebuild_ns = median(rebuild_samples);

        let mut threads_map = Map::new();
        for threads in [1usize, 2, 4, 8] {
            let mut pipeline = SignaturePipeline::with_plan(
                scheme.as_ref(),
                wl.graph.clone(),
                &wl.subjects,
                STREAM_K,
                ShardPlan::new(threads),
            );
            let mut advance_samples = Vec::with_capacity(SAMPLES);
            for (i, delta) in wl.deltas.iter().enumerate() {
                let t = Instant::now();
                pipeline.advance(delta);
                let ns = t.elapsed().as_nanos() as f64;
                std::hint::black_box(pipeline.signatures());
                if i > 0 {
                    advance_samples.push(ns);
                }
            }
            let advance_ns = median(advance_samples);
            let speedup = rebuild_ns / advance_ns;
            eprintln!(
                "scaling {name:<5} threads={threads} advance {advance_ns:>12.0} ns, \
                 rebuild {rebuild_ns:>12.0} ns, {speedup:.1}x"
            );
            let mut entry = Map::new();
            entry.insert("advance_median_ns".to_string(), finite(advance_ns.round()));
            entry.insert(
                "speedup_vs_rebuild".to_string(),
                finite((speedup * 100.0).round() / 100.0),
            );
            threads_map.insert(format!("{threads}"), Value::Object(entry));
        }
        let mut entry = Map::new();
        entry.insert("rebuild_median_ns".to_string(), finite(rebuild_ns.round()));
        entry.insert("threads".to_string(), Value::Object(threads_map));
        schemes.insert((*name).to_string(), Value::Object(entry));
    }
    json!({
        "locals": SCALE_LOCALS,
        "externals": SCALE_EXTERNALS,
        "edges": SCALE_LOCALS * STREAM_OUT_DEGREE,
        "churn": SCALE_CHURN,
        "k": STREAM_K,
        "schemes": Value::Object(schemes),
    })
}

/// Median of a pre-collected sample vector (the streaming paths advance
/// real state per sample, so the repeated-closure [`median_ns`] shape
/// does not fit).
fn median(mut ns: Vec<f64>) -> f64 {
    assert!(!ns.is_empty(), "no samples");
    ns.sort_by(|a, b| a.total_cmp(b));
    ns[ns.len() / 2]
}

/// One sketch sizing for the whole tier sweep: modest Count-Min tables
/// so the Θ(1)-per-source story is visible against the exact tier's
/// Θ(out-degree)-per-source CSR at the dense large scale. The bounded
/// in-degree table (`indeg_cells > 0`) keeps the UT distinct-source
/// state at Θ(cells) instead of one FM sketch per seen destination —
/// essential at the million-external scale.
const SKETCH_CFG: StreamConfig = StreamConfig {
    cm_width: 32,
    cm_depth: 4,
    candidate_budget: 48,
    fm_bitmaps: 32,
    seed: 1,
    indeg_cells: 2_048,
    indeg_depth: 2,
};

/// Subjects sampled for the divergence (accuracy) measurement at each
/// scale — enough for a stable mean without paying a full-population
/// exact comparison at the million-node scale.
const SKETCH_ACCURACY_SAMPLE: usize = 2_000;

/// Queries of the LSH rank_all comparison.
const LSH_QUERIES: usize = 4_096;

/// The exact-vs-sketch tier sweep: per scale and scheme, the advance
/// medians, resident state, and final-window signature divergence, plus
/// the LSH-fronted rank_all operating point. Writes `BENCH_sketch.json`.
///
/// The scale axis is the tier tradeoff: at the small scales the exact
/// CSR is cheap and the sketch tier only buys bounded state, while the
/// dense ≥1M-node scale is where the exact tier's per-edge state
/// overtakes the sketches' fixed per-source budget.
fn sketch_snapshot() {
    let windows = SAMPLES + 1;
    let mut scales_map = Map::new();
    for (locals, externals, out_degree, churn) in [
        (5_000usize, 20_000usize, 16usize, 0.02f64),
        (20_000, 100_000, 32, 0.01),
        (50_000, 1_000_000, 96, 0.005),
    ] {
        let num_nodes = locals + externals;
        let wl = stream_workload(locals, externals, out_degree, churn, windows, 42);
        let genesis = sketches::genesis_delta(&wl.graph);
        let sample: Vec<NodeId> = wl
            .subjects
            .iter()
            .copied()
            .take(SKETCH_ACCURACY_SAMPLE)
            .collect();

        let mut schemes = Map::new();
        let mut exact_bytes = 0usize;
        let mut tt_sketch_bytes = 0usize;
        let cases: Vec<(&str, Box<dyn DeltaScheme>, SketchScheme)> = vec![
            ("TT", Box::new(TopTalkers), SketchScheme::TopTalkers),
            (
                "UT",
                Box::new(UnexpectedTalkers::new()),
                SketchScheme::UnexpectedTalkers,
            ),
        ];
        for (name, scheme, sketch_scheme) in &cases {
            let mut pipeline = SignaturePipeline::new(
                scheme.as_ref(),
                CommGraph::empty(num_nodes),
                &wl.subjects,
                STREAM_K,
            );
            pipeline.advance(&genesis);
            let mut exact_samples = Vec::with_capacity(SAMPLES);
            for (i, delta) in wl.deltas.iter().enumerate() {
                let t = Instant::now();
                pipeline.advance(delta);
                let ns = t.elapsed().as_nanos() as f64;
                std::hint::black_box(pipeline.signatures());
                if i > 0 {
                    exact_samples.push(ns);
                }
            }
            let exact_ns = median(exact_samples);
            exact_bytes = SignatureTier::memory(&pipeline).state_bytes;

            let mut tier = SketchTier::new(
                *sketch_scheme,
                SKETCH_CFG,
                &wl.subjects,
                STREAM_K,
                num_nodes,
            );
            tier.advance_window(&genesis);
            let mut sketch_samples = Vec::with_capacity(SAMPLES);
            for (i, delta) in wl.deltas.iter().enumerate() {
                let t = Instant::now();
                tier.advance_window(delta);
                let ns = t.elapsed().as_nanos() as f64;
                std::hint::black_box(tier.signatures());
                if i > 0 {
                    sketch_samples.push(ns);
                }
            }
            let sketch_ns = median(sketch_samples);
            let sketch_bytes = tier.memory().state_bytes;
            if *name == "TT" {
                tt_sketch_bytes = sketch_bytes;
            }
            let divergence =
                sketches::mean_divergence(pipeline.signatures(), tier.signatures(), &sample);

            let speedup = exact_ns / sketch_ns;
            eprintln!(
                "sketch n={num_nodes:<9} {name:<3} exact {exact_ns:>12.0} ns / {:>6.1} MiB, \
                 sketch {sketch_ns:>12.0} ns / {:>6.1} MiB, {speedup:.2}x, divergence {divergence:.4}",
                exact_bytes as f64 / (1024.0 * 1024.0),
                sketch_bytes as f64 / (1024.0 * 1024.0),
            );
            let mut entry = Map::new();
            entry.insert(
                "exact_advance_median_ns".to_string(),
                finite(exact_ns.round()),
            );
            entry.insert(
                "sketch_advance_median_ns".to_string(),
                finite(sketch_ns.round()),
            );
            entry.insert(
                "advance_speedup".to_string(),
                finite((speedup * 100.0).round() / 100.0),
            );
            entry.insert(
                "mean_jaccard_divergence".to_string(),
                finite((divergence * 10_000.0).round() / 10_000.0),
            );
            entry.insert("sketch_state_bytes".to_string(), Value::from(sketch_bytes));
            schemes.insert((*name).to_string(), Value::Object(entry));
        }

        let memory_ratio = exact_bytes as f64 / tt_sketch_bytes.max(1) as f64;
        if num_nodes >= 1_000_000 {
            assert!(
                memory_ratio > 1.0,
                "the >=1M-node scale is where the sketch tier must win on \
                 memory; exact {exact_bytes} B vs sketch {tt_sketch_bytes} B"
            );
        }
        let mut entry = Map::new();
        entry.insert("locals".to_string(), Value::from(locals));
        entry.insert("externals".to_string(), Value::from(externals));
        entry.insert("nodes".to_string(), Value::from(num_nodes));
        entry.insert("out_degree".to_string(), Value::from(out_degree));
        entry.insert("churn".to_string(), finite(churn));
        entry.insert("exact_state_bytes".to_string(), Value::from(exact_bytes));
        entry.insert(
            "exact_over_sketch_memory".to_string(),
            finite((memory_ratio * 100.0).round() / 100.0),
        );
        entry.insert("schemes".to_string(), Value::Object(schemes));
        scales_map.insert(num_nodes.to_string(), Value::Object(entry));
    }

    let out = json!({
        "workload": "stream_bipartite",
        "k": STREAM_K,
        "samples": SAMPLES,
        "kernel": KERNEL,
        "sketch_config": json!({
            "cm_width": SKETCH_CFG.cm_width,
            "cm_depth": SKETCH_CFG.cm_depth,
            "candidate_budget": SKETCH_CFG.candidate_budget,
            "fm_bitmaps": SKETCH_CFG.fm_bitmaps,
            "indeg_cells": SKETCH_CFG.indeg_cells,
            "indeg_depth": SKETCH_CFG.indeg_depth,
            "seed": SKETCH_CFG.seed,
        }),
        "scales": Value::Object(scales_map),
        "lsh_rank_all": lsh_axis(),
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sketch.json");
    let body = serde_json::to_string_pretty(&out).expect("snapshot serialises");
    std::fs::write(path, body + "\n").expect("write BENCH_sketch.json");
    eprintln!("wrote {path}");
}

/// LSH-fronted rank_all vs the exact matchers on the cross-window
/// self-identification workload: queries are window `W−1` signatures,
/// candidates window `W`. Two exact baselines: the paper's brute-force
/// full scan (`rank_all_reference`, one merge-join per pair — the
/// matcher the speedup claim is against) and this repo's own postings
/// index (`rank_all`, already sub-linear; the LSH front is expected to
/// hold parity there, not beat it). The default banding's recall is the
/// number README quotes; the sweep shows the knob.
fn lsh_axis() -> Value {
    let (locals, externals, out_degree, churn) = (20_000usize, 100_000usize, 32usize, 0.01f64);
    let num_nodes = locals + externals;
    let wl = stream_workload(locals, externals, out_degree, churn, SAMPLES + 1, 42);
    let mut pipeline = SignaturePipeline::new(
        &TopTalkers,
        CommGraph::empty(num_nodes),
        &wl.subjects,
        STREAM_K,
    );
    pipeline.advance(&sketches::genesis_delta(&wl.graph));
    let mut prev = pipeline.signatures().clone();
    for delta in &wl.deltas {
        prev = pipeline.signatures().clone();
        pipeline.advance(delta);
    }
    let current = pipeline.signatures().clone();
    let queries = query_subset(&prev, LSH_QUERIES.min(prev.len()));

    let exact = rank_all(&Jaccard, &queries, &current);
    let indexed_ns = median_ns(|| {
        std::hint::black_box(rank_all(&Jaccard, &queries, &current));
    });
    let scan_ns = median_ns(|| {
        std::hint::black_box(rank_all_reference(&Jaccard, &queries, &current));
    });

    let mut sweep = Vec::new();
    let mut default_entry = Map::new();
    for (bands, rows) in [(8usize, 4usize), (16, 3), (32, 2), (32, 4)] {
        let cfg = AnnConfig {
            bands,
            rows,
            seed: 9,
        };
        let approx = rank_all_approx(&Jaccard, &queries, &current, cfg);
        let recall_1 = top_l_recall(&exact, &approx, 1);
        let recall_3 = top_l_recall(&exact, &approx, 3);
        let approx_ns = median_ns(|| {
            std::hint::black_box(rank_all_approx(&Jaccard, &queries, &current, cfg));
        });
        let speedup_scan = scan_ns / approx_ns;
        let speedup_indexed = indexed_ns / approx_ns;
        eprintln!(
            "lsh rank_all {bands}x{rows}: recall@1 {recall_1:.4}, recall@3 {recall_3:.4}, \
             scan {scan_ns:>12.0} ns, indexed {indexed_ns:>12.0} ns, approx {approx_ns:>12.0} ns, \
             {speedup_scan:.2}x over scan, {speedup_indexed:.2}x over indexed"
        );
        let mut entry = Map::new();
        entry.insert("bands".to_string(), Value::from(bands));
        entry.insert("rows".to_string(), Value::from(rows));
        entry.insert(
            "recall_at_1".to_string(),
            finite((recall_1 * 10_000.0).round() / 10_000.0),
        );
        entry.insert(
            "recall_at_3".to_string(),
            finite((recall_3 * 10_000.0).round() / 10_000.0),
        );
        entry.insert("approx_median_ns".to_string(), finite(approx_ns.round()));
        entry.insert(
            "speedup_over_scan".to_string(),
            finite((speedup_scan * 100.0).round() / 100.0),
        );
        entry.insert(
            "speedup_over_indexed".to_string(),
            finite((speedup_indexed * 100.0).round() / 100.0),
        );
        if cfg == AnnConfig::default() {
            default_entry = entry.clone();
        }
        sweep.push(Value::Object(entry));
    }
    let default_recall = default_entry
        .get("recall_at_1")
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    assert!(
        default_recall >= 0.95,
        "default banding must hold the documented recall@1 >= 0.95 floor, got {default_recall}"
    );
    let default_speedup = default_entry
        .get("speedup_over_scan")
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    assert!(
        default_speedup > 1.0,
        "default banding must beat the full-scan matcher, got {default_speedup}x"
    );
    json!({
        "locals": locals,
        "externals": externals,
        "queries": queries.len(),
        "candidates": current.len(),
        "distance": "Jaccard",
        "scan_median_ns": finite(scan_ns.round()),
        "indexed_median_ns": finite(indexed_ns.round()),
        "default": Value::Object(default_entry),
        "sweep": Value::Array(sweep),
    })
}
