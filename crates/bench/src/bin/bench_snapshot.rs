//! Writes `BENCH_schemes.json` at the repository root: median ns/op for
//! each signature scheme over the Medium flow dataset, covering both the
//! batched dense-workspace RWR engine and the per-subject SparseVec
//! reference path it replaced.
//!
//! Run with `cargo run --release -p comsig-bench --bin bench_snapshot`.
//! The snapshot is the landed, machine-readable record of the perf
//! numbers quoted in README.md; re-run it after touching the engine.

#![forbid(unsafe_code)]

use std::time::Instant;

use rayon::prelude::*;
use serde_json::{json, Map, Number, Value};

use comsig_bench::datasets;
use comsig_bench::Scale;
use comsig_core::scheme::{Rwr, SignatureScheme, TopTalkers, UnexpectedTalkers};
use comsig_core::SignatureSet;
use comsig_graph::{CommGraph, NodeId};

/// Samples per measurement; the median is reported.
const SAMPLES: usize = 7;

fn median_ns(mut f: impl FnMut()) -> f64 {
    // One untimed warm-up run (fills lazy caches such as the merged
    // undirected CSR, touches the page cache).
    f();
    let mut ns: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    ns.sort_by(|a, b| a.total_cmp(b));
    ns[ns.len() / 2]
}

fn reference_signature_set(rwr: &Rwr, g: &CommGraph, subjects: &[NodeId], k: usize) -> usize {
    let sigs: Vec<_> = subjects
        .par_iter()
        .map(|&v| rwr.signature(g, v, k))
        .collect();
    sigs.len()
}

fn main() {
    let d = datasets::flow(Scale::Medium, 7);
    let g = d.windows.window(0).expect("window 0");
    let subjects = d.local_nodes();
    let k = Scale::Medium.flow_k();

    let mut results: Vec<(String, f64)> = Vec::new();
    let mut record = |name: &str, ns: f64| {
        eprintln!("{name:<32} {ns:>16.0} ns/op (median of {SAMPLES})");
        results.push((name.to_string(), ns));
    };

    record(
        "TT_all",
        median_ns(|| {
            std::hint::black_box(TopTalkers.signature_set(g, &subjects, k));
        }),
    );
    record(
        "UT_all",
        median_ns(|| {
            std::hint::black_box(UnexpectedTalkers::new().signature_set(g, &subjects, k));
        }),
    );
    for h in [3u32, 5, 7] {
        let rwr = Rwr::truncated(0.1, h).undirected();
        record(
            &format!("RWR{h}_all_batched"),
            median_ns(|| {
                let set: SignatureSet = rwr.signature_set(g, &subjects, k);
                std::hint::black_box(set);
            }),
        );
        record(
            &format!("RWR{h}_all_reference"),
            median_ns(|| {
                std::hint::black_box(reference_signature_set(&rwr, g, &subjects, k));
            }),
        );
    }

    let mut schemes = Map::new();
    for (name, ns) in &results {
        let mut entry = Map::new();
        entry.insert(
            "median_ns".to_string(),
            Value::Number(Number::from_f64(ns.round()).expect("finite")),
        );
        entry.insert(
            "ns_per_subject".to_string(),
            Value::Number(Number::from_f64((ns / subjects.len() as f64).round()).expect("finite")),
        );
        schemes.insert(name.clone(), Value::Object(entry));
    }
    let out = json!({
        "dataset": "flow_medium_window0",
        "num_subjects": subjects.len(),
        "num_nodes": g.num_nodes(),
        "num_edges": g.num_edges(),
        "k": k,
        "samples": SAMPLES,
        "schemes": Value::Object(schemes),
    });

    // The bin may be invoked from any directory; anchor the output at
    // the workspace root relative to this crate's manifest.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_schemes.json");
    let body = serde_json::to_string_pretty(&out).expect("snapshot serialises");
    std::fs::write(path, body + "\n").expect("write BENCH_schemes.json");
    eprintln!("wrote {path}");
}
