//! Experiment driver: regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [--scale small|medium|full] [--out DIR] [all | <id>...]
//! experiments --list
//! ```

#![forbid(unsafe_code)]

use std::fs;
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use comsig_bench::experiments;
use comsig_bench::experiments::checkpoint::{self, LoadOutcome};
use comsig_bench::Scale;

fn usage() -> &'static str {
    "usage: experiments [--scale small|medium|full] [--out DIR] [--checkpoint DIR] [--list] [all | <id>...]\n\
     --checkpoint DIR  resume completed experiments from DIR (atomic per-cell\n\
                       checkpoints; corrupt files are recomputed)\n\
     run `experiments --list` to see the experiment ids"
}

fn main() -> ExitCode {
    let mut scale = Scale::default();
    let mut out_dir: Option<PathBuf> = None;
    let mut checkpoint_dir: Option<PathBuf> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let Some(v) = args.next().and_then(|s| Scale::parse(&s)) else {
                    eprintln!("invalid --scale value\n{}", usage());
                    return ExitCode::FAILURE;
                };
                scale = v;
            }
            "--out" => {
                let Some(v) = args.next() else {
                    eprintln!("--out needs a directory\n{}", usage());
                    return ExitCode::FAILURE;
                };
                out_dir = Some(PathBuf::from(v));
            }
            "--checkpoint" => {
                let Some(v) = args.next() else {
                    eprintln!("--checkpoint needs a directory\n{}", usage());
                    return ExitCode::FAILURE;
                };
                checkpoint_dir = Some(PathBuf::from(v));
            }
            "--list" => {
                for e in experiments::all() {
                    println!("{:10}  {}", e.id, e.title);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_owned()),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = experiments::all().iter().map(|e| e.id.to_owned()).collect();
    }

    if let Some(dir) = &out_dir {
        if let Err(e) = fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    for id in &ids {
        let Some(exp) = experiments::find(id) else {
            eprintln!("unknown experiment `{id}`\n{}", usage());
            return ExitCode::FAILURE;
        };
        let start = Instant::now();
        println!("### {} — {} [scale: {:?}]", exp.id, exp.title, scale);
        let mut resumed = false;
        let tables = match checkpoint_dir
            .as_deref()
            .map(|dir| checkpoint::load(dir, exp.id, scale))
        {
            Some(LoadOutcome::Hit(tables)) => {
                println!("(resumed {} from checkpoint)", exp.id);
                resumed = true;
                tables
            }
            Some(LoadOutcome::Corrupt(reason)) => {
                eprintln!(
                    "warning: checkpoint for {} is corrupt ({reason}); recomputing",
                    exp.id
                );
                (exp.run)(scale)
            }
            Some(LoadOutcome::Miss) | None => (exp.run)(scale),
        };
        if let Some(dir) = &checkpoint_dir {
            if !resumed {
                if let Err(e) = checkpoint::save(dir, exp.id, scale, &tables) {
                    eprintln!("warning: cannot checkpoint {}: {e}", exp.id);
                }
            }
        }
        for table in &tables {
            println!("{}", table.render());
        }
        println!("({} finished in {:.1?})\n", exp.id, start.elapsed());

        if let Some(dir) = &out_dir {
            for (i, table) in tables.iter().enumerate() {
                let base = dir.join(format!("{}_{}", exp.id, i));
                if let Err(e) = fs::write(base.with_extension("csv"), table.to_csv()) {
                    eprintln!("write failed: {e}");
                    return ExitCode::FAILURE;
                }
                let json =
                    serde_json::to_string_pretty(&table.to_json()).expect("tables serialise");
                if let Err(e) = fs::write(base.with_extension("json"), json) {
                    eprintln!("write failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    // Ensure everything is flushed before exit.
    std::io::stdout().flush().ok();
    ExitCode::SUCCESS
}
