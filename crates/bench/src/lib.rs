//! # comsig-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (Sections IV and V), plus the ablations and
//! Section VI extension experiments listed in DESIGN.md.
//!
//! The `experiments` binary drives it:
//!
//! ```text
//! experiments all                 # every experiment at the default scale
//! experiments fig1 fig3 fig6     # a subset
//! experiments --scale small all  # reduced-scale smoke run
//! ```
//!
//! Each experiment prints fixed-width tables mirroring the paper's
//! figure/table layout; absolute values come from the synthetic
//! workloads, so the *shape* (orderings, approximate gaps, crossovers) is
//! the comparison target — see EXPERIMENTS.md for the side-by-side.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod datasets;
pub mod experiments;
pub mod registry;
pub mod synth;

pub use datasets::Scale;
