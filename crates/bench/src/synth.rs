//! Synthetic signature populations for matcher benchmarks.
//!
//! The matching engine's cost profile is governed by posting-list shape:
//! mostly-uniform members keep lists short (the sub-quadratic sweet
//! spot), while a heavy-hitter head (popular external services every
//! host talks to) concentrates posting mass on a few hub nodes. The
//! populations here mix both — 80% uniform members over a universe
//! proportional to the population, 20% drawn from a hot head of 100
//! nodes — so benchmarks exercise short and hub posting lists at once.

use comsig_core::{Signature, SignatureSet};
use comsig_graph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Share of signature members drawn from the hot head.
const HOT_FRACTION: f64 = 0.2;

/// Size of the hot head (popular member nodes shared across subjects).
const HOT_NODES: usize = 100;

/// Builds a population of `n` subjects with `k`-member signatures over a
/// `4n`-node member universe. Member ids live below the subject-id
/// range, so subjects never collide with members. Deterministic in
/// `seed`.
#[must_use]
pub fn matching_population(n: usize, k: usize, seed: u64) -> SignatureSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let universe = (4 * n).max(HOT_NODES + 1);
    let mut subjects = Vec::with_capacity(n);
    let mut sigs = Vec::with_capacity(n);
    for v in 0..n {
        let subject = NodeId::new(universe + v);
        let members: Vec<(NodeId, f64)> = (0..k)
            .map(|_| {
                let id = if rng.random_bool(HOT_FRACTION) {
                    rng.random_range(0..HOT_NODES)
                } else {
                    rng.random_range(0..universe)
                };
                (NodeId::new(id), rng.random_range(0.1..1.0))
            })
            .collect();
        subjects.push(subject);
        sigs.push(Signature::top_k(subject, members, k));
    }
    SignatureSet::new(subjects, sigs)
}

/// The first `q` subjects of `set` as their own query set (subjects
/// matched against the full population — the rank_all access pattern).
///
/// # Panics
/// Panics if `q` exceeds `set.len()`.
#[must_use]
pub fn query_subset(set: &SignatureSet, q: usize) -> SignatureSet {
    assert!(q <= set.len(), "query subset larger than population");
    SignatureSet::new(
        set.subjects()[..q].to_vec(),
        set.iter().take(q).map(|(_, sig)| sig.clone()).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_is_deterministic_and_sized() {
        let a = matching_population(200, 10, 7);
        let b = matching_population(200, 10, 7);
        assert_eq!(a.len(), 200);
        for (va, vb) in a.subjects().iter().zip(b.subjects()) {
            assert_eq!(va, vb);
            assert_eq!(a.get(*va).unwrap(), b.get(*vb).unwrap());
        }
        // Duplicate member draws can shrink a signature below k, but most
        // should be full length.
        assert!(a.iter().all(|(_, s)| s.len() <= 10 && !s.is_empty()));
    }

    #[test]
    fn hot_head_creates_member_overlap() {
        let pop = matching_population(300, 10, 11);
        let hot_hits = pop
            .iter()
            .flat_map(|(_, s)| s.iter())
            .filter(|(u, _)| u.index() < HOT_NODES)
            .count();
        // ~20% of ~3000 members should land in the head.
        assert!(hot_hits > 300, "only {hot_hits} hot members");
    }

    #[test]
    fn query_subset_prefixes_population() {
        let pop = matching_population(50, 5, 3);
        let q = query_subset(&pop, 8);
        assert_eq!(q.len(), 8);
        assert_eq!(q.subjects(), &pop.subjects()[..8]);
    }
}
