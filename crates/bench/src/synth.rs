//! Synthetic signature populations for matcher benchmarks.
//!
//! The matching engine's cost profile is governed by posting-list shape:
//! mostly-uniform members keep lists short (the sub-quadratic sweet
//! spot), while a heavy-hitter head (popular external services every
//! host talks to) concentrates posting mass on a few hub nodes. The
//! populations here mix both — 80% uniform members over a universe
//! proportional to the population, 20% drawn from a hot head of 100
//! nodes — so benchmarks exercise short and hub posting lists at once.

use std::collections::BTreeMap;

use comsig_core::{Signature, SignatureSet};
use comsig_graph::{CommGraph, EdgeChange, GraphBuilder, NodeId, WindowDelta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Share of signature members drawn from the hot head.
const HOT_FRACTION: f64 = 0.2;

/// Size of the hot head (popular member nodes shared across subjects).
const HOT_NODES: usize = 100;

/// Builds a population of `n` subjects with `k`-member signatures over a
/// `4n`-node member universe. Member ids live below the subject-id
/// range, so subjects never collide with members. Deterministic in
/// `seed`.
#[must_use]
pub fn matching_population(n: usize, k: usize, seed: u64) -> SignatureSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let universe = (4 * n).max(HOT_NODES + 1);
    let mut subjects = Vec::with_capacity(n);
    let mut sigs = Vec::with_capacity(n);
    for v in 0..n {
        let subject = NodeId::new(universe + v);
        let members: Vec<(NodeId, f64)> = (0..k)
            .map(|_| {
                let id = if rng.random_bool(HOT_FRACTION) {
                    rng.random_range(0..HOT_NODES)
                } else {
                    rng.random_range(0..universe)
                };
                (NodeId::new(id), rng.random_range(0.1..1.0))
            })
            .collect();
        subjects.push(subject);
        sigs.push(Signature::top_k(subject, members, k));
    }
    SignatureSet::new(subjects, sigs)
}

/// A streaming-pipeline workload: an initial bipartite locals→externals
/// communication graph plus a pre-generated sequence of valid
/// [`WindowDelta`]s at a fixed per-window edge-churn rate.
///
/// Every delta in the sequence is valid against the graph produced by
/// applying its predecessors in order: `old` weights match the evolving
/// graph bitwise (each aggregated pair is backed by a single event, so
/// the stored weight is the generated weight exactly), changes are
/// strictly sorted by `(src, dst)`, and retractions are paired with
/// insertions at fresh pairs so the edge count stays constant across
/// windows — each window measures the same graph scale.
pub struct StreamWorkload {
    /// The first window's graph.
    pub graph: CommGraph,
    /// Every local node, in ascending id order — the subject population.
    pub subjects: Vec<NodeId>,
    /// Per-window deltas, applicable in sequence starting from `graph`.
    pub deltas: Vec<WindowDelta>,
}

/// Builds a [`StreamWorkload`]: `locals` subject nodes each talking to
/// `out_degree` distinct externals (of `externals` total), then `windows`
/// deltas each churning a `churn` fraction of the edges. Churn is
/// host-localised — whole locals change behaviour (each edge either
/// re-weighted or re-pointed at a fresh external) while every other
/// local persists untouched. Deterministic in `seed`.
///
/// The bipartite shape mirrors a monitored-perimeter flow log (locals
/// behind the sensor, externals beyond it) and keeps directed
/// reverse-reachability balls small, which is the regime the dirty-set
/// pipeline is designed for.
#[must_use]
pub fn stream_workload(
    locals: usize,
    externals: usize,
    out_degree: usize,
    churn: f64,
    windows: usize,
    seed: u64,
) -> StreamWorkload {
    assert!(out_degree <= externals, "out-degree exceeds externals");
    let mut rng = StdRng::seed_from_u64(seed);
    let num_nodes = locals + externals;
    let rand_external = |rng: &mut StdRng| NodeId::new(locals + rng.random_range(0..externals));

    // Live aggregated edges; each pair is backed by exactly one event, so
    // the tracked weight is bitwise the weight stored in the graph.
    let mut edges: BTreeMap<(NodeId, NodeId), f64> = BTreeMap::new();
    for v in 0..locals {
        let src = NodeId::new(v);
        let mut added = 0;
        while added < out_degree {
            let dst = rand_external(&mut rng);
            if let std::collections::btree_map::Entry::Vacant(slot) = edges.entry((src, dst)) {
                slot.insert(rng.random_range(0.5..4.0));
                added += 1;
            }
        }
    }
    let mut builder = GraphBuilder::new();
    for (&(src, dst), &w) in &edges {
        builder.add_event(src, dst, w);
    }
    let graph = builder.build(num_nodes);

    let per_window = ((edges.len() as f64 * churn).round() as usize).max(1);
    let mut deltas = Vec::with_capacity(windows);
    for t in 0..windows {
        // Churn is host-localised: whole locals change behaviour while
        // the rest persist untouched — the persistence regime the paper
        // assumes and the one a dirty-set pipeline exploits. Each picked
        // local has every edge updated or re-pointed (retraction plus a
        // fresh same-source insertion, keeping |E| constant), and locals
        // are drawn until the changed-pair budget is met.
        let mut changes: BTreeMap<(NodeId, NodeId), EdgeChange> = BTreeMap::new();
        let mut picked = rustc_hash::FxHashSet::default();
        while changes.len() < per_window {
            let src = NodeId::new(rng.random_range(0..locals));
            if !picked.insert(src) {
                continue;
            }
            let row: Vec<(NodeId, f64)> = edges
                .range((src, NodeId::new(0))..=(src, NodeId::new(num_nodes)))
                .map(|(&(_, dst), &w)| (dst, w))
                .collect();
            for (dst, old) in row {
                if rng.random_bool(0.5) {
                    // Weight update; redraw until the bits actually change
                    // so the change is never a no-op the windower would
                    // elide.
                    let mut new: f64 = rng.random_range(0.5..4.0);
                    while new.to_bits() == old.to_bits() {
                        new = rng.random_range(0.5..4.0);
                    }
                    changes.insert(
                        (src, dst),
                        EdgeChange {
                            src,
                            dst,
                            old: Some(old),
                            new: Some(new),
                        },
                    );
                } else {
                    changes.insert(
                        (src, dst),
                        EdgeChange {
                            src,
                            dst,
                            old: Some(old),
                            new: None,
                        },
                    );
                    // The local re-points the retracted edge at a fresh
                    // external, so |E| stays constant.
                    let pair = loop {
                        let cand = (src, rand_external(&mut rng));
                        if !edges.contains_key(&cand) && !changes.contains_key(&cand) {
                            break cand;
                        }
                    };
                    changes.insert(
                        pair,
                        EdgeChange {
                            src: pair.0,
                            dst: pair.1,
                            old: None,
                            new: Some(rng.random_range(0.5..4.0)),
                        },
                    );
                }
            }
        }
        for c in changes.values() {
            match c.new {
                Some(w) => {
                    edges.insert((c.src, c.dst), w);
                }
                None => {
                    edges.remove(&(c.src, c.dst));
                }
            }
        }
        deltas.push(WindowDelta {
            start: t as u64,
            end: t as u64 + 1,
            changes: changes.into_values().collect(),
        });
    }

    StreamWorkload {
        graph,
        subjects: (0..locals).map(NodeId::new).collect(),
        deltas,
    }
}

/// The first `q` subjects of `set` as their own query set (subjects
/// matched against the full population — the rank_all access pattern).
///
/// # Panics
/// Panics if `q` exceeds `set.len()`.
#[must_use]
pub fn query_subset(set: &SignatureSet, q: usize) -> SignatureSet {
    assert!(q <= set.len(), "query subset larger than population");
    SignatureSet::new(
        set.subjects()[..q].to_vec(),
        set.iter().take(q).map(|(_, sig)| sig.clone()).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_workload_deltas_apply_cleanly() {
        let wl = stream_workload(50, 200, 5, 0.1, 4, 9);
        assert_eq!(wl.subjects.len(), 50);
        assert_eq!(wl.graph.num_edges(), 250);
        let mut g = wl.graph.clone();
        for d in &wl.deltas {
            assert!(!d.is_empty());
            // apply_delta validates old weights bitwise and the strict
            // (src, dst) ordering — a bad delta panics here.
            g = g.apply_delta(d);
            assert_eq!(g.num_edges(), 250, "retraction+insertion pairing keeps |E|");
        }
        let again = stream_workload(50, 200, 5, 0.1, 4, 9);
        assert_eq!(wl.deltas, again.deltas, "deterministic in seed");
    }

    #[test]
    fn population_is_deterministic_and_sized() {
        let a = matching_population(200, 10, 7);
        let b = matching_population(200, 10, 7);
        assert_eq!(a.len(), 200);
        for (va, vb) in a.subjects().iter().zip(b.subjects()) {
            assert_eq!(va, vb);
            assert_eq!(a.get(*va).unwrap(), b.get(*vb).unwrap());
        }
        // Duplicate member draws can shrink a signature below k, but most
        // should be full length.
        assert!(a.iter().all(|(_, s)| s.len() <= 10 && !s.is_empty()));
    }

    #[test]
    fn hot_head_creates_member_overlap() {
        let pop = matching_population(300, 10, 11);
        let hot_hits = pop
            .iter()
            .flat_map(|(_, s)| s.iter())
            .filter(|(u, _)| u.index() < HOT_NODES)
            .count();
        // ~20% of ~3000 members should land in the head.
        assert!(hot_hits > 300, "only {hot_hits} hot members");
    }

    #[test]
    fn query_subset_prefixes_population() {
        let pop = matching_population(50, 5, 3);
        let q = query_subset(&pop, 8);
        assert_eq!(q.len(), 8);
        assert_eq!(q.subjects(), &pop.subjects()[..8]);
    }
}
