//! Scheme and distance registries shared by all experiments.

use comsig_core::distance::{paper_distances, BatchDistance};
use comsig_core::scheme::{Rwr, SignatureScheme, TopTalkers, UnexpectedTalkers};

/// The scheme line-up of the paper's evaluation: TT, UT and
/// `RWR^h_0.1` for `h ∈ {3, 5, 7}`. RWR walks are undirected — on the
/// flow data only `local → external` edges exist, so the multi-hop
/// schemes must traverse edges both ways to see beyond one hop (cf. the
/// movie-rental discussion of Section III-B).
pub fn paper_schemes() -> Vec<Box<dyn SignatureScheme>> {
    vec![
        Box::new(TopTalkers),
        Box::new(UnexpectedTalkers::new()),
        Box::new(Rwr::truncated(0.1, 3).undirected()),
        Box::new(Rwr::truncated(0.1, 5).undirected()),
        Box::new(Rwr::truncated(0.1, 7).undirected()),
    ]
}

/// The three representative schemes used in the application experiments
/// (Figures 5 and 6): TT, UT, and `RWR^3_0.1` — "the best representative
/// of the RWR schemes".
pub fn application_schemes() -> Vec<Box<dyn SignatureScheme>> {
    vec![
        Box::new(TopTalkers),
        Box::new(UnexpectedTalkers::new()),
        Box::new(Rwr::truncated(0.1, 3).undirected()),
    ]
}

/// The paper's four distance functions in presentation order. Exposed as
/// [`BatchDistance`] so every experiment can route matching through the
/// inverted index (the trait upcasts to `SignatureDistance` where only a
/// per-pair kernel is needed).
pub fn distances() -> Vec<Box<dyn BatchDistance>> {
    paper_distances()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registries_have_expected_lineups() {
        let names: Vec<String> = paper_schemes().iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec!["TT", "UT", "RWR^3_0.1", "RWR^5_0.1", "RWR^7_0.1"]
        );
        assert_eq!(application_schemes().len(), 3);
        let dnames: Vec<&str> = distances().iter().map(|d| d.name()).collect();
        assert_eq!(dnames, vec!["Jac", "Dice", "SDice", "SHel"]);
    }
}
