//! Canonical experiment datasets at selectable scales.

use comsig_datagen::flownet::{self, AnomalyConfig, FlowDataset, FlowNetConfig, MultiusageConfig};
use comsig_datagen::querylog::{self, QueryLogConfig, QueryLogDataset};

/// Experiment scale: trade fidelity against runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Tiny smoke-test scale (CI-friendly, seconds).
    Small,
    /// One-third population scale — the scale the shape tests pin.
    #[default]
    Medium,
    /// The paper's scale: ~300 hosts / 20K externals / 6 windows, and the
    /// full 851 × 979 query log.
    Full,
}

impl Scale {
    /// Parses `small` / `medium` / `full`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// Stable lower-case name (inverse of [`Scale::parse`]), used in
    /// checkpoint filenames.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Full => "full",
        }
    }

    /// The signature length used for flow data (`k = 10` in the paper,
    /// half the average host out-degree).
    pub fn flow_k(self) -> usize {
        10
    }

    /// The signature length used for query logs (`k = 3` in the paper).
    pub fn query_k(self) -> usize {
        3
    }
}

/// Flow-network configuration for a scale (no ground truth).
pub fn flow_config(scale: Scale, seed: u64) -> FlowNetConfig {
    match scale {
        Scale::Small => FlowNetConfig {
            num_locals: 40,
            num_externals: 2700,
            num_groups: 4,
            num_windows: 3,
            seed,
            ..FlowNetConfig::default()
        },
        Scale::Medium => FlowNetConfig {
            num_locals: 100,
            num_externals: 6700,
            num_groups: 10,
            num_windows: 4,
            seed,
            ..FlowNetConfig::default()
        },
        Scale::Full => FlowNetConfig {
            seed,
            ..FlowNetConfig::default()
        },
    }
}

/// The flow dataset used by the property/ROC experiments (Figures 1–4).
pub fn flow(scale: Scale, seed: u64) -> FlowDataset {
    flownet::generate(&flow_config(scale, seed))
}

/// Flow dataset with multiusage ground truth (Figure 5).
pub fn flow_with_multiusage(scale: Scale, seed: u64) -> FlowDataset {
    let mut cfg = flow_config(scale, seed);
    cfg.multiusage = MultiusageConfig {
        individuals: match scale {
            Scale::Small => 6,
            Scale::Medium => 12,
            Scale::Full => 30,
        },
        min_labels: 2,
        max_labels: 3,
    };
    flownet::generate(&cfg)
}

/// Flow dataset with injected anomalies (experiment A7).
pub fn flow_with_anomalies(scale: Scale, seed: u64) -> FlowDataset {
    let mut cfg = flow_config(scale, seed);
    cfg.anomaly = AnomalyConfig {
        count: match scale {
            Scale::Small => 4,
            Scale::Medium => 8,
            Scale::Full => 20,
        },
        window: 1,
    };
    cfg.disruption_rate = 0.05;
    flownet::generate(&cfg)
}

/// The query-log dataset (Figure 1 right column, Figure 3(b)).
pub fn querylog(scale: Scale, seed: u64) -> QueryLogDataset {
    let cfg = match scale {
        Scale::Small => QueryLogConfig {
            num_users: 80,
            num_tables: 120,
            num_roles: 8,
            num_windows: 3,
            seed,
            ..QueryLogConfig::default()
        },
        Scale::Medium => QueryLogConfig {
            num_users: 250,
            num_tables: 400,
            num_roles: 20,
            num_windows: 4,
            seed,
            ..QueryLogConfig::default()
        },
        Scale::Full => QueryLogConfig {
            seed,
            ..QueryLogConfig::default()
        },
    };
    querylog::generate(&cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("medium"), Some(Scale::Medium));
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("huge"), None);
        assert_eq!(Scale::default(), Scale::Medium);
    }

    #[test]
    fn small_datasets_materialise() {
        let f = flow(Scale::Small, 1);
        assert_eq!(f.windows.len(), 3);
        assert_eq!(f.local_nodes().len(), 40);

        let m = flow_with_multiusage(Scale::Small, 1);
        assert_eq!(m.truth.multiusage_groups.len(), 6);

        let a = flow_with_anomalies(Scale::Small, 1);
        assert_eq!(a.truth.anomalous.len(), 4);

        let q = querylog(Scale::Small, 1);
        assert_eq!(q.user_nodes().len(), 80);
        assert_eq!(Scale::Small.flow_k(), 10);
        assert_eq!(Scale::Small.query_k(), 3);
    }
}
