//! Criterion benches: approximate vs exact nearest-neighbour signature
//! search (Section VI, "Scalable signature comparison").

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use comsig_bench::datasets;
use comsig_bench::Scale;
use comsig_core::distance::{Jaccard, SignatureDistance};
use comsig_core::scheme::{SignatureScheme, TopTalkers};
use comsig_sketch::lsh::LshIndex;
use comsig_sketch::minhash::MinHasher;

fn bench_lsh(c: &mut Criterion) {
    let d = datasets::flow(Scale::Medium, 7);
    let g = d.windows.window(0).expect("window 0");
    let subjects = d.local_nodes();
    let sigs = TopTalkers.signature_set(g, &subjects, 10);
    let query = subjects[0];
    let q = sigs.get(query).expect("query signature");

    let mut group = c.benchmark_group("nearest_neighbor");
    group.bench_function("exact_scan", |b| {
        b.iter(|| {
            let best = subjects
                .iter()
                .filter(|&&u| u != query)
                .map(|&u| (u, Jaccard.distance(q, sigs.get(u).expect("sig"))))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
            black_box(best)
        })
    });
    let mut index = LshIndex::new(24, 3, 9);
    index.insert_set(&sigs);
    group.bench_function("lsh_query", |b| {
        b.iter(|| black_box(index.nearest(black_box(q), 1, Some(query))))
    });
    group.finish();

    let mut group = c.benchmark_group("minhash");
    let hasher = MinHasher::new(72, 9);
    group.bench_function("minhash_k10_m72", |b| {
        b.iter(|| black_box(hasher.minhash(black_box(q))))
    });
    let mh_a = hasher.minhash(q);
    let mh_b = hasher.minhash(sigs.get(subjects[1]).expect("sig"));
    group.bench_function("estimate_distance_m72", |b| {
        b.iter(|| black_box(hasher.estimate_distance(black_box(&mh_a), black_box(&mh_b))))
    });
    group.bench_function("index_insert", |b| {
        b.iter(|| {
            let mut idx = LshIndex::new(24, 3, 9);
            for (node, sig) in sigs.iter().take(20) {
                idx.insert(node, sig);
            }
            black_box(idx.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_lsh);
criterion_main!(benches);
