//! Criterion benches: sketch update/query throughput (Section VI).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use comsig_bench::datasets;
use comsig_bench::Scale;
use comsig_graph::NodeId;
use comsig_sketch::cm::CountMinSketch;
use comsig_sketch::fm::FmSketch;
use comsig_sketch::stream::{SemiStream, StreamConfig};
use comsig_sketch::topk::SpaceSaving;

fn bench_sketches(c: &mut Criterion) {
    let mut group = c.benchmark_group("sketch_ops");

    group.bench_function("cm_update", |b| {
        let mut cm = CountMinSketch::new(128, 4, 1);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            cm.update(black_box(i % 1000), 1.0);
        })
    });
    group.bench_function("cm_query", |b| {
        let mut cm = CountMinSketch::new(128, 4, 1);
        for i in 0..1000u64 {
            cm.update(i, 1.0);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(cm.query(black_box(i % 1000)))
        })
    });
    group.bench_function("fm_insert", |b| {
        let mut fm = FmSketch::new(32, 2);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            fm.insert(black_box(i));
        })
    });
    group.bench_function("fm_estimate", |b| {
        let mut fm = FmSketch::new(32, 2);
        for i in 0..10_000u64 {
            fm.insert(i);
        }
        b.iter(|| black_box(fm.estimate()))
    });
    group.bench_function("spacesaving_update", |b| {
        let mut ss = SpaceSaving::new(64);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            ss.update(black_box(i % 500), 1.0);
        })
    });
    group.finish();

    let mut group = c.benchmark_group("stream_pipeline");
    group.sample_size(10);
    let d = datasets::flow(Scale::Medium, 7);
    let g = d.windows.window(0).expect("window 0");
    group.bench_function("observe_window", |b| {
        b.iter(|| {
            let mut stream = SemiStream::new(StreamConfig::default());
            stream.observe_graph(black_box(g));
            black_box(stream.num_sources())
        })
    });
    group.bench_function("extract_tt_signature", |b| {
        let mut stream = SemiStream::new(StreamConfig::default());
        stream.observe_graph(g);
        let v = d.local_nodes()[0];
        b.iter(|| black_box(stream.tt_signature(black_box(v), 10)))
    });
    group.bench_function("extract_ut_signature", |b| {
        let mut stream = SemiStream::new(StreamConfig::default());
        stream.observe_graph(g);
        let v = d.local_nodes()[0];
        b.iter(|| black_box(stream.ut_signature(black_box(v), 10)))
    });
    group.finish();

    // Keep NodeId in scope for type inference in closures above.
    let _ = NodeId::new(0);
}

criterion_group!(benches, bench_sketches);
criterion_main!(benches);
