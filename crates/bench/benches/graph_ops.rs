//! Criterion benches: graph-substrate operations (CSR construction,
//! lookups, traversal, perturbation).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use comsig_bench::datasets;
use comsig_bench::Scale;
use comsig_graph::perturb::{perturb, PerturbConfig};
use comsig_graph::traversal::{bfs, Direction};
use comsig_graph::GraphBuilder;

fn bench_graph_ops(c: &mut Criterion) {
    let d = datasets::flow(Scale::Medium, 7);
    let g = d.windows.window(0).expect("window 0");
    let subjects = d.local_nodes();

    let mut group = c.benchmark_group("graph_ops");
    group.sample_size(20);

    group.bench_function("csr_rebuild", |b| {
        let edges: Vec<_> = g.edges().collect();
        b.iter(|| {
            let mut builder = GraphBuilder::with_edge_capacity(edges.len());
            builder.extend_edges(edges.iter().copied());
            black_box(builder.build(g.num_nodes()))
        })
    });

    group.bench_function("edge_weight_lookup", |b| {
        let v = subjects[0];
        let (dst, _) = g.out_neighbors(v).next().expect("host has edges");
        b.iter(|| black_box(g.edge_weight(black_box(v), black_box(dst))))
    });

    group.bench_function("bfs_3_hops_undirected", |b| {
        let v = subjects[0];
        b.iter(|| black_box(bfs(g, black_box(v), Direction::Both, 3)))
    });

    group.bench_function("perturb_0.4", |b| {
        b.iter(|| black_box(perturb(g, &PerturbConfig::symmetric(0.4, 99))))
    });

    group.finish();
}

criterion_group!(benches, bench_graph_ops);
criterion_main!(benches);
