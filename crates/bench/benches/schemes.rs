//! Criterion benches: signature-scheme computation cost.
//!
//! One-hop schemes are linear in a node's degree; RWR^h grows with the
//! reachable neighbourhood. These benches quantify the gap the paper's
//! Section VI worries about.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rayon::prelude::*;
use std::hint::black_box;

use comsig_bench::datasets;
use comsig_bench::Scale;
use comsig_core::scheme::{Rwr, SignatureScheme, TopTalkers, UnexpectedTalkers};

fn bench_schemes(c: &mut Criterion) {
    let d = datasets::flow(Scale::Medium, 7);
    let g = d.windows.window(0).expect("window 0");
    let subjects = d.local_nodes();
    let k = 10;

    let mut group = c.benchmark_group("scheme_single_signature");
    let v = subjects[0];
    group.bench_function("TT", |b| {
        b.iter(|| black_box(TopTalkers.signature(g, black_box(v), k)))
    });
    group.bench_function("UT", |b| {
        let ut = UnexpectedTalkers::new();
        b.iter(|| black_box(ut.signature(g, black_box(v), k)))
    });
    for h in [1u32, 3, 5, 7] {
        group.bench_with_input(BenchmarkId::new("RWR_undirected", h), &h, |b, &h| {
            let rwr = Rwr::truncated(0.1, h).undirected();
            b.iter(|| black_box(rwr.signature(g, black_box(v), k)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("scheme_full_population");
    group.sample_size(10);
    group.bench_function("TT_all", |b| {
        b.iter(|| black_box(TopTalkers.signature_set(g, &subjects, k)))
    });
    group.bench_function("RWR3_all", |b| {
        let rwr = Rwr::truncated(0.1, 3).undirected();
        b.iter(|| black_box(rwr.signature_set(g, &subjects, k)))
    });
    group.finish();

    // Full-population RWR at increasing hop counts: the batched
    // dense-workspace engine (the `signature_set` override) against the
    // per-subject SparseVec reference path it replaced.
    let mut group = c.benchmark_group("rwr_engine_population");
    group.sample_size(10);
    for h in [3u32, 5, 7] {
        let rwr = Rwr::truncated(0.1, h).undirected();
        group.bench_with_input(BenchmarkId::new("batched", h), &rwr, |b, rwr| {
            b.iter(|| black_box(rwr.signature_set(g, &subjects, k)))
        });
        // Same rayon fan-out as the pre-engine default `signature_set`,
        // so the comparison isolates the workspace, not parallelism.
        group.bench_with_input(BenchmarkId::new("reference", h), &rwr, |b, rwr| {
            b.iter(|| {
                let sigs: Vec<_> = subjects
                    .par_iter()
                    .map(|&v| rwr.signature(g, v, k))
                    .collect();
                black_box(sigs)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
