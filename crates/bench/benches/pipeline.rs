//! Criterion benches: streaming window pipeline — incremental
//! `SignaturePipeline::advance` against a full per-window rebuild
//! (`apply_delta` + complete `signature_set`), plus the delta
//! application and dirty-set components in isolation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use comsig_bench::synth::stream_workload;
use comsig_core::pipeline::{DeltaScheme, SignaturePipeline};
use comsig_core::scheme::{Rwr, SignatureScheme, TopTalkers};

/// Locals (subjects) of the bench workload.
const LOCALS: usize = 500;
/// Externals of the bench workload.
const EXTERNALS: usize = 2_000;
/// Out-edges per local.
const OUT_DEGREE: usize = 5;
/// Per-window edge churn of the bench workload.
const CHURN: f64 = 0.05;
/// Signature length.
const K: usize = 10;

fn bench_pipeline(c: &mut Criterion) {
    let wl = stream_workload(LOCALS, EXTERNALS, OUT_DEGREE, CHURN, 1, 7);
    let delta = &wl.deltas[0];
    let tt = TopTalkers;
    let rwr = Rwr::truncated(0.1, 3);

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(20);

    group.bench_function("apply_delta", |b| {
        b.iter(|| black_box(wl.graph.apply_delta(black_box(delta))))
    });

    group.bench_function("dirty_set_rwr3", |b| {
        let next = wl.graph.apply_delta(delta);
        b.iter(|| black_box(rwr.dirty_set(&wl.graph, &next, black_box(delta))))
    });

    // Advance mutates the pipeline, so each iteration forks a pristine
    // clone (graph + signature set copy; no recomputation) — the clone
    // cost is part of the measured loop but is small against the
    // signature work.
    group.bench_function("advance_tt", |b| {
        let pipeline = SignaturePipeline::new(&tt, wl.graph.clone(), &wl.subjects, K);
        b.iter(|| {
            let mut p = pipeline.clone();
            black_box(p.advance(delta));
            p
        })
    });

    group.bench_function("rebuild_tt", |b| {
        b.iter(|| {
            let next = wl.graph.apply_delta(delta);
            black_box(tt.signature_set(&next, &wl.subjects, K))
        })
    });

    group.bench_function("advance_rwr3", |b| {
        let pipeline = SignaturePipeline::new(&rwr, wl.graph.clone(), &wl.subjects, K);
        b.iter(|| {
            let mut p = pipeline.clone();
            black_box(p.advance(delta));
            p
        })
    });

    group.bench_function("rebuild_rwr3", |b| {
        b.iter(|| {
            let next = wl.graph.apply_delta(delta);
            black_box(rwr.signature_set(&next, &wl.subjects, K))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
