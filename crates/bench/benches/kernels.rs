//! Criterion benches: the blocked lane-chunked kernels (DESIGN.md §15).
//!
//! Two groups, one per hot loop:
//!
//! * `scatter_kernel` — one full batched RWR occupancy per subject
//!   (blocked CSR scatter + lane-reduced norms + blocked prune),
//!   against the per-subject `SparseVec` reference walk;
//! * `posting_merge` — indexed top-ℓ ranking sweeps (lane-chunked
//!   posting merges + batched `finish_touched` epilogue), against the
//!   brute-force merge-join scan over the same queries.
//!
//! This file is its own `[[bench]]` target so CI's `kernel-bench-smoke`
//! step can run exactly these groups once in release without dragging
//! the full bench suite along.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use comsig_bench::synth::{matching_population, query_subset};
use comsig_bench::{datasets, Scale};
use comsig_core::distance::SHel;
use comsig_core::engine::RwrWorkspace;
use comsig_core::scheme::Rwr;
use comsig_eval::index::{MatchWorkspace, PostingsIndex};
use comsig_eval::matcher::rank_all_reference;
use comsig_graph::NodeId;

fn bench_scatter_kernel(c: &mut Criterion) {
    let d = datasets::flow(Scale::Medium, 7);
    let g = d.windows.window(0).expect("window 0");
    let subjects = d.local_nodes();
    let rwr = Rwr::truncated(0.1, 3);

    let mut group = c.benchmark_group("scatter_kernel");
    group.sample_size(10);
    group.bench_function("rwr3_blocked_workspace", |b| {
        let mut ws = RwrWorkspace::new();
        b.iter(|| {
            for &v in &subjects {
                black_box(ws.occupancy_unsorted(&rwr.config, g, v).len());
            }
        })
    });
    group.bench_function("rwr3_sparsevec_reference", |b| {
        b.iter(|| {
            for &v in &subjects {
                black_box(rwr.occupancy(g, v).nnz());
            }
        })
    });
    group.finish();
}

fn bench_posting_merge(c: &mut Criterion) {
    let pop = matching_population(10_000, 10, 42);
    let queries = query_subset(&pop, 32);
    let index = PostingsIndex::build(&pop);

    let mut group = c.benchmark_group("posting_merge");
    group.sample_size(10);
    group.bench_function("rank_indexed_chunked", |b| {
        let mut ws = MatchWorkspace::new();
        let mut top: Vec<(NodeId, f64)> = Vec::new();
        b.iter(|| {
            for (_, q) in queries.iter() {
                index.rank_top_l_into(&SHel, q, 10, &mut ws, &mut top);
                black_box(top.len());
            }
        })
    });
    group.bench_function("rank_brute_merge_join", |b| {
        b.iter(|| black_box(rank_all_reference(&SHel, &queries, &pop)))
    });
    group.finish();
}

criterion_group!(benches, bench_scatter_kernel, bench_posting_merge);
criterion_main!(benches);
