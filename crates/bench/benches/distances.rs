//! Criterion benches: distance-function evaluation cost.
//!
//! Distances are the inner loop of every evaluation (all-pairs matching
//! is `O(|V|²)` distance calls), so per-call cost matters.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use comsig_core::distance::all_distances;
use comsig_core::Signature;
use comsig_graph::NodeId;

fn sig(ids_from: usize, len: usize) -> Signature {
    Signature::top_k(
        NodeId::new(999_999),
        (0..len).map(|i| (NodeId::new(ids_from + i), 1.0 / (i + 1) as f64)),
        len,
    )
}

fn bench_distances(c: &mut Criterion) {
    // Half-overlapping signatures of the paper's length k = 10.
    let a = sig(0, 10);
    let b = sig(5, 10);

    let mut group = c.benchmark_group("distance_k10");
    for d in all_distances() {
        group.bench_function(d.name(), |bench| {
            bench.iter(|| black_box(d.distance(black_box(&a), black_box(&b))))
        });
    }
    group.finish();

    // Longer signatures (k = 100) to expose the O(k) merge-join.
    let a = sig(0, 100);
    let b = sig(50, 100);
    let mut group = c.benchmark_group("distance_k100");
    for d in all_distances() {
        group.bench_function(d.name(), |bench| {
            bench.iter(|| black_box(d.distance(black_box(&a), black_box(&b))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distances);
criterion_main!(benches);
