//! Criterion benches: inverted-index matching vs brute force.
//!
//! `rank_all` is the evaluation hot path (`|Q|` queries against `|C|`
//! candidates); the index makes it sub-quadratic by visiting only the
//! candidates sharing at least one signature member with each query.
//! These benches pin the crossover: brute force wins only when the
//! candidate set is tiny relative to the index build cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use comsig_bench::synth::{matching_population, query_subset};
use comsig_core::distance::SHel;
use comsig_eval::matcher::{
    pairwise_distances, pairwise_distances_reference, rank_all, rank_all_reference,
};

/// Queries per rank_all sweep (a sampled subject subset, as the ROC
/// experiments use).
const QUERIES: usize = 64;

/// The paper's signature length.
const K: usize = 10;

fn bench_rank_all(c: &mut Criterion) {
    let mut group = c.benchmark_group("rank_all_shel");
    group.sample_size(5);
    for &n in &[1_000usize, 10_000, 50_000] {
        let pop = matching_population(n, K, 42);
        let queries = query_subset(&pop, QUERIES);
        group.bench_with_input(BenchmarkId::new("indexed", n), &n, |b, _| {
            b.iter(|| black_box(rank_all(&SHel, &queries, &pop)))
        });
        group.bench_with_input(BenchmarkId::new("brute", n), &n, |b, _| {
            b.iter(|| black_box(rank_all_reference(&SHel, &queries, &pop)))
        });
    }
    group.finish();
}

fn bench_pairwise(c: &mut Criterion) {
    // All-pairs uniqueness sampling; quadratic output, so smaller sizes.
    let mut group = c.benchmark_group("pairwise_shel");
    group.sample_size(3);
    for &n in &[1_000usize, 4_000] {
        let pop = matching_population(n, K, 43);
        group.bench_with_input(BenchmarkId::new("indexed", n), &n, |b, _| {
            b.iter(|| black_box(pairwise_distances(&SHel, &pop)))
        });
        group.bench_with_input(BenchmarkId::new("brute", n), &n, |b, _| {
            b.iter(|| black_box(pairwise_distances_reference(&SHel, &pop)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rank_all, bench_pairwise);
criterion_main!(benches);
