//! Checkpoint/resume over a real experiment cell.
//!
//! Exercises the recovery path end-to-end with a genuine registry
//! experiment: compute → checkpoint → resume must reproduce the same
//! tables without recomputation artifacts, and a corrupted checkpoint
//! must fall back to a recompute that yields identical results (the
//! experiments are seed-deterministic).

use std::fs;
use std::path::PathBuf;

use comsig_bench::experiments::checkpoint::{self, LoadOutcome};
use comsig_bench::experiments::{self, Experiment};
use comsig_bench::Scale;
use comsig_eval::report::Table;

fn cell() -> Experiment {
    experiments::find("table4").expect("table4 is registered")
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("comsig-checkpoint-resume")
        .join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn rendered(tables: &[Table]) -> Vec<String> {
    tables.iter().map(Table::render).collect()
}

#[test]
fn resume_reproduces_a_real_experiment_cell() {
    let exp = cell();
    let dir = temp_dir("hit");
    let computed = (exp.run)(Scale::Small);
    checkpoint::save(&dir, exp.id, Scale::Small, &computed).expect("checkpoint written");

    // A leftover .tmp from a killed writer must not shadow the cell.
    fs::write(
        checkpoint::path(&dir, exp.id, Scale::Small).with_extension("ckpt.tmp"),
        b"torn half-written payload",
    )
    .expect("tmp file written");

    match checkpoint::load(&dir, exp.id, Scale::Small) {
        LoadOutcome::Hit(resumed) => {
            assert_eq!(
                rendered(&resumed),
                rendered(&computed),
                "resumed tables must be identical to the computed ones"
            );
        }
        other => panic!("expected Hit, got {other:?}"),
    }
}

#[test]
fn corrupt_checkpoint_recomputes_to_identical_tables() {
    let exp = cell();
    let dir = temp_dir("corrupt");
    let first = (exp.run)(Scale::Small);
    let target = checkpoint::save(&dir, exp.id, Scale::Small, &first).expect("checkpoint written");

    // Simulate a kill mid-write landing on the real path (e.g. a pre-
    // atomic writer or disk fault): the file exists but is torn.
    let bytes = fs::read(&target).expect("checkpoint readable");
    fs::write(&target, &bytes[..bytes.len() / 3]).expect("truncation written");

    match checkpoint::load(&dir, exp.id, Scale::Small) {
        LoadOutcome::Corrupt(reason) => {
            assert!(!reason.is_empty(), "corruption must carry a reason");
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }

    // The driver's fallback: recompute and re-checkpoint. Determinism
    // makes the recomputed cell identical to the original run.
    let recomputed = (exp.run)(Scale::Small);
    assert_eq!(rendered(&recomputed), rendered(&first));
    checkpoint::save(&dir, exp.id, Scale::Small, &recomputed).expect("re-checkpoint written");
    assert!(matches!(
        checkpoint::load(&dir, exp.id, Scale::Small),
        LoadOutcome::Hit(_)
    ));
}
