//! I/O round-trip properties and the malformed-line corpus.
//!
//! The round-trip property pins the `write_events` ↔ `read_events` pair:
//! any event stream serialises to text that parses back to the same
//! records (resolved by label, since a fresh parse re-interns in
//! first-appearance order). The corpus test pins *exact* `GraphError::
//! Parse` line numbers — off-by-one drift here silently breaks every
//! quarantine report and every "fix line N" message shown to operators.

use std::io::Cursor;

use comsig_graph::io::{read_events, read_events_with_policy, write_events};
use comsig_graph::{EdgeEvent, GraphError, IngestPolicy, Interner, NodeId};
use proptest::prelude::*;

/// Characters legal in a parse-safe node label (no whitespace, no `#`).
const LABEL_ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789._-";

/// A parse-safe node label: a lowercase letter followed by up to 11
/// alphabet characters.
fn label_strategy() -> impl Strategy<Value = String> {
    (
        0usize..26,
        prop::collection::vec(0usize..LABEL_ALPHABET.len(), 0..11),
    )
        .prop_map(|(first, rest)| {
            let mut s = String::with_capacity(rest.len() + 1);
            s.push(LABEL_ALPHABET[first] as char);
            s.extend(rest.iter().map(|&i| LABEL_ALPHABET[i] as char));
            s
        })
}

/// Raw event tuples: (time, src label index, dst label index, weight).
type RawEvents = Vec<(u64, usize, usize, f64)>;

fn events_strategy() -> impl Strategy<Value = (Vec<String>, RawEvents)> {
    prop::collection::vec(label_strategy(), 2..12)
        .prop_map(|mut labels| {
            labels.sort();
            labels.dedup();
            labels
        })
        .prop_flat_map(|labels| {
            let n = labels.len();
            // One event in ten gets weight exactly 0.0 (legal: finite and
            // non-negative); the rest draw from a wide positive range.
            let weight = (0u32..10, 0.001f64..1e9).prop_map(|(z, w)| if z == 0 { 0.0 } else { w });
            let events = prop::collection::vec((0u64..50, 0..n, 0..n, weight), 0..40);
            (Just(labels), events)
        })
}

/// Resolves an event stream to label space for interner-independent
/// comparison.
fn resolved(events: &[EdgeEvent], interner: &Interner) -> Vec<(u64, String, String, f64)> {
    events
        .iter()
        .map(|e| {
            (
                e.time,
                interner.label(e.src).expect("src interned").to_owned(),
                interner.label(e.dst).expect("dst interned").to_owned(),
                e.weight,
            )
        })
        .collect()
}

proptest! {
    /// write → read is the identity on label-resolved events, for every
    /// ingest policy, with a clean report.
    #[test]
    fn write_read_round_trips((labels, raw) in events_strategy()) {
        let mut interner = Interner::new();
        let ids: Vec<NodeId> = labels.iter().map(|l| interner.intern(l)).collect();
        let events: Vec<EdgeEvent> = raw
            .iter()
            .map(|&(time, s, d, weight)| EdgeEvent {
                time,
                src: ids[s],
                dst: ids[d],
                weight,
            })
            .collect();

        let mut text = Vec::new();
        write_events(&mut text, &interner, &events).expect("all ids interned");
        let original = resolved(&events, &interner);

        for policy in [
            IngestPolicy::Strict,
            IngestPolicy::Quarantine { max_bad_fraction: 0.0 },
            IngestPolicy::Repair,
        ] {
            let mut fresh = Interner::new();
            let (parsed, report) =
                read_events_with_policy(Cursor::new(text.clone()), &mut fresh, policy)
                    .expect("round-trip parse succeeds");
            prop_assert!(report.is_clean(), "{policy:?} report not clean");
            prop_assert_eq!(&resolved(&parsed, &fresh), &original, "{:?}", policy);
        }
    }

    /// Writing what was read reproduces the text byte-for-byte (the
    /// format has one canonical rendering per event).
    #[test]
    fn read_write_is_canonical((labels, raw) in events_strategy()) {
        let mut interner = Interner::new();
        let ids: Vec<NodeId> = labels.iter().map(|l| interner.intern(l)).collect();
        let events: Vec<EdgeEvent> = raw
            .iter()
            .map(|&(time, s, d, weight)| EdgeEvent { time, src: ids[s], dst: ids[d], weight })
            .collect();
        let mut first = Vec::new();
        write_events(&mut first, &interner, &events).expect("write");

        let mut fresh = Interner::new();
        let parsed = read_events(Cursor::new(first.clone()), &mut fresh).expect("read");
        let mut second = Vec::new();
        write_events(&mut second, &fresh, &parsed).expect("rewrite");
        prop_assert_eq!(first, second);
    }
}

// --- malformed-line corpus -----------------------------------------------

/// Each case: (corpus, 1-based line of the first malformed record,
/// substring of the expected parse message).
const MALFORMED: &[(&str, usize, &str)] = &[
    // Malformed first line.
    ("garbage\n0 a b 1\n", 1, "time"),
    // Comments and blank lines still count toward line numbers.
    ("# header\n\n0 a b 1\nnot-a-record\n", 4, "time"),
    // Missing destination.
    ("0 a b 1\n1 a\n", 2, "destination"),
    // Non-numeric timestamp.
    ("0 a b 1\nxyz a b 1\n2 b c 1\n", 2, "time"),
    // Unparseable weight field.
    ("0 a b 1\n1 a b ten\n", 2, "weight is not a number"),
    // Too many fields (weight parses, then a fifth field remains).
    ("0 a b 1\n1 a b 2 surplus\n", 2, "too many fields"),
    // Windows line endings must not shift the count.
    ("# crlf\r\n0 a b 1\r\nbroken\r\n", 3, "time"),
];

#[test]
fn strict_parse_reports_exact_line_numbers() {
    for &(corpus, want_line, want_msg) in MALFORMED {
        let mut interner = Interner::new();
        match read_events(Cursor::new(corpus), &mut interner) {
            Err(GraphError::Parse { line, message }) => {
                assert_eq!(line, want_line, "corpus {corpus:?}");
                assert!(
                    message.contains(want_msg),
                    "corpus {corpus:?}: message {message:?} lacks {want_msg:?}"
                );
            }
            other => panic!("corpus {corpus:?}: expected Parse error, got {other:?}"),
        }
    }
}

#[test]
fn quarantine_reports_every_malformed_line_exactly() {
    // One corpus combining all the fault shapes, with known bad lines.
    let corpus = "\
# mixed corpus
0 a b 1
garbage
1 b c 2

2 c\td 3
xyz d e 4
3 e f 5 surplus
4 f a 6
";
    // line 3: one token; line 7: bad timestamp; line 8: too many fields.
    // (Line 6 uses a tab separator, which `split_whitespace` accepts.)
    let mut interner = Interner::new();
    let (events, report) = read_events_with_policy(
        Cursor::new(corpus),
        &mut interner,
        IngestPolicy::Quarantine {
            max_bad_fraction: 0.5,
        },
    )
    .expect("within budget");
    assert_eq!(events.len(), 4);
    let lines: Vec<usize> = report.quarantined.iter().map(|q| q.line).collect();
    assert_eq!(lines, vec![3, 7, 8]);
    assert_eq!(report.records, 7);
    assert_eq!(report.lines_read, 9);
}
