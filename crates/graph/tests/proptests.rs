//! Property-based tests for the graph substrate.

use std::collections::BTreeMap;

use comsig_graph::perturb::{perturb, PerturbConfig, WeightedSampler};
use comsig_graph::{GraphBuilder, NodeId};
use proptest::prelude::*;

/// Strategy producing a random aggregated edge set over `n` nodes.
fn edge_set(
    max_nodes: usize,
    max_edges: usize,
) -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>)> {
    (2..max_nodes).prop_flat_map(move |n| {
        let edges = prop::collection::vec((0..n as u32, 0..n as u32, 0.5f64..20.0), 0..max_edges);
        (Just(n), edges)
    })
}

proptest! {
    /// CSR construction agrees with a naive map-based aggregation for any
    /// event multiset: same edge count, same weights, same degrees.
    #[test]
    fn csr_matches_naive((n, raw) in edge_set(24, 60)) {
        let mut naive: BTreeMap<(u32, u32), f64> = BTreeMap::new();
        let mut builder = GraphBuilder::new();
        for &(s, d, w) in &raw {
            if s != d {
                *naive.entry((s, d)).or_insert(0.0) += w;
            }
            builder.add_event(NodeId::new(s as usize), NodeId::new(d as usize), w);
        }
        let g = builder.build(n);

        prop_assert_eq!(g.num_edges(), naive.len());
        for (&(s, d), &w) in &naive {
            let got = g.edge_weight(NodeId::new(s as usize), NodeId::new(d as usize));
            prop_assert!(got.is_some());
            prop_assert!((got.unwrap() - w).abs() < 1e-9);
        }
        // Degrees agree with naive counts.
        for v in 0..n {
            let od = naive.keys().filter(|&&(s, _)| s as usize == v).count();
            let id = naive.keys().filter(|&&(_, d)| d as usize == v).count();
            prop_assert_eq!(g.out_degree(NodeId::new(v)), od);
            prop_assert_eq!(g.in_degree(NodeId::new(v)), id);
        }
        // Total weight is the sum of all surviving events.
        let expect: f64 = naive.values().sum();
        prop_assert!((g.total_weight() - expect).abs() < 1e-6);
    }

    /// In-adjacency is the exact transpose of out-adjacency.
    #[test]
    fn in_adjacency_is_transpose((n, raw) in edge_set(16, 40)) {
        let mut builder = GraphBuilder::new();
        for &(s, d, w) in &raw {
            builder.add_event(NodeId::new(s as usize), NodeId::new(d as usize), w);
        }
        let g = builder.build(n);
        for v in g.nodes() {
            for (u, w) in g.out_neighbors(v) {
                let back: Vec<_> = g.in_neighbors(u).filter(|&(s, _)| s == v).collect();
                prop_assert_eq!(back.len(), 1);
                prop_assert!((back[0].1 - w).abs() < 1e-12);
            }
        }
        let out_total: usize = g.nodes().map(|v| g.out_degree(v)).sum();
        let in_total: usize = g.nodes().map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out_total, in_total);
    }

    /// Fenwick sampler total equals the sum of weights under any update
    /// sequence, and sample_at never returns a zero-weight item.
    #[test]
    fn fenwick_total_consistent(
        ws in prop::collection::vec(0.0f64..10.0, 1..40),
        updates in prop::collection::vec((0usize..40, -5.0f64..5.0), 0..30),
        probe in 0.0f64..1.0,
    ) {
        let mut s = WeightedSampler::new(&ws);
        let mut naive = ws.clone();
        for &(i, delta) in &updates {
            let i = i % naive.len();
            s.add(i, delta);
            naive[i] = (naive[i] + delta).max(0.0);
        }
        let expect: f64 = naive.iter().sum();
        prop_assert!((s.total() - expect).abs() < 1e-6);
        if expect > 1e-9 {
            let mass = probe * expect * 0.999999;
            if let Some(i) = s.sample_at(mass) {
                prop_assert!(s.weight(i) > 0.0);
            }
        }
    }

    /// Perturbation accounting: total weight changes by exactly
    /// (inserted weight - decrements), and the report counts are bounded
    /// by the configured rates.
    #[test]
    fn perturb_accounting((n, raw) in edge_set(16, 40), seed in 0u64..1000) {
        let mut builder = GraphBuilder::new();
        for &(s, d, w) in &raw {
            builder.add_event(NodeId::new(s as usize), NodeId::new(d as usize), w);
        }
        let g = builder.build(n);
        let m = g.num_edges();
        let (g2, rep) = perturb(&g, &PerturbConfig::symmetric(0.3, seed));
        prop_assert!(rep.insertions <= (0.3 * m as f64).round() as usize);
        prop_assert!(rep.decrements <= (0.3 * m as f64).round() as usize);
        prop_assert_eq!(g2.num_nodes(), g.num_nodes());
        // No edge may have non-positive weight.
        for e in g2.edges() {
            prop_assert!(e.weight > 0.0);
        }
    }

    /// Perturbation invariants (Section IV-C): the node space is exactly
    /// preserved, and every surviving edge weight is finite and strictly
    /// positive regardless of rates or seed.
    #[test]
    fn perturb_preserves_node_space(
        (n, raw) in edge_set(16, 40),
        rate in 0.0f64..2.0,
        seed in 0u64..1000,
    ) {
        let mut builder = GraphBuilder::new();
        for &(s, d, w) in &raw {
            builder.add_event(NodeId::new(s as usize), NodeId::new(d as usize), w);
        }
        let g = builder.build(n);
        let (g2, _) = perturb(&g, &PerturbConfig::symmetric(rate, seed));
        prop_assert_eq!(g2.num_nodes(), g.num_nodes());
        let before: Vec<NodeId> = g.nodes().collect();
        let after: Vec<NodeId> = g2.nodes().collect();
        prop_assert_eq!(before, after);
        for e in g2.edges() {
            prop_assert!(e.weight.is_finite() && e.weight > 0.0,
                "edge ({:?},{:?}) has invalid weight {}", e.src, e.dst, e.weight);
        }
        // No perturbation may introduce self-loops.
        for e in g2.edges() {
            prop_assert!(e.src != e.dst);
        }
    }

    /// A fixed seed reproduces the perturbed graph bit-for-bit; the report
    /// is identical too.
    #[test]
    fn perturb_deterministic_under_seed(
        (n, raw) in edge_set(16, 40),
        rate in 0.0f64..1.5,
        seed in 0u64..1000,
    ) {
        let mut builder = GraphBuilder::new();
        for &(s, d, w) in &raw {
            builder.add_event(NodeId::new(s as usize), NodeId::new(d as usize), w);
        }
        let g = builder.build(n);
        let cfg = PerturbConfig::symmetric(rate, seed);
        let (a, ra) = perturb(&g, &cfg);
        let (b, rb) = perturb(&g, &cfg);
        prop_assert_eq!(ra, rb);
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        prop_assert_eq!(ea, eb);
    }

    /// The merged undirected transition rows are stochastic for any graph,
    /// including after perturbation — checked through the comsig-core
    /// contract layer (Definition 5 of the paper).
    #[test]
    fn transition_rows_stochastic((n, raw) in edge_set(16, 40), seed in 0u64..200) {
        let mut builder = GraphBuilder::new();
        for &(s, d, w) in &raw {
            builder.add_event(NodeId::new(s as usize), NodeId::new(d as usize), w);
        }
        let g = builder.build(n);
        comsig_core::contract::check_transition_rows(&g);
        let (g2, _) = perturb(&g, &PerturbConfig::symmetric(0.4, seed));
        comsig_core::contract::check_transition_rows(&g2);
    }
}
