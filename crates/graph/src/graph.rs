//! The immutable CSR communication graph.

use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use crate::delta::WindowDelta;
use crate::edge::{Edge, Weight};
use crate::node::NodeId;

/// An immutable, weighted, directed communication graph `G_t = (V, E_t)` in
/// compressed-sparse-row form.
///
/// Both out-adjacency (`O(v)` with weights `C[v, ·]`) and in-adjacency
/// (`I(v)` with weights `C[·, v]`) are materialised, because the paper's
/// signature schemes need both directions: Top Talkers reads out-edges,
/// Unexpected Talkers additionally needs in-degrees `|I(j)|`, and RWR walks
/// forward over out-edges.
///
/// Neighbour lists are sorted by node id, so `C[i, j]` lookups are
/// `O(log deg)` binary searches and neighbour iteration is deterministic.
///
/// The node space is fixed at construction: a window's graph over a global
/// interner may contain isolated nodes (hosts silent in that window), which
/// matches the paper's convention that `V` is (mostly) shared across
/// windows while `E_t` varies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CommGraph {
    num_nodes: usize,
    num_edges: usize,
    total_weight: Weight,

    out_offsets: Vec<usize>,
    out_targets: Vec<NodeId>,
    out_weights: Vec<Weight>,

    in_offsets: Vec<usize>,
    in_sources: Vec<NodeId>,
    in_weights: Vec<Weight>,

    // Cached row/column sums of the weight matrix, so that
    // `out_weight_sum` / `in_weight_sum` — which sit on the inner loop of
    // every random-walk step — are O(1) lookups instead of O(deg) scans.
    out_weight_sums: Vec<Weight>,
    in_weight_sums: Vec<Weight>,

    // Lazily materialised symmetrised adjacency (see [`UndirectedCsr`]).
    undirected: OnceLock<UndirectedCsr>,
}

/// Merged, pre-normalised undirected view of a [`CommGraph`].
///
/// Row `v` holds the distinct neighbours of `v` in either direction, each
/// with the transition probability
/// `(C[v,u] + C[u,v]) / (Σ C[v,·] + Σ C[·,v])` already divided out. An
/// undirected random-walk step then reads one contiguous, sorted row and
/// multiplies — no per-step merging of the out- and in-rows and no
/// re-normalisation. Built once per graph on first use.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct UndirectedCsr {
    offsets: Vec<usize>,
    neighbors: Vec<NodeId>,
    probs: Vec<f64>,
}

impl CommGraph {
    /// Builds a graph from edges already sorted by `(src, dst)` with no
    /// duplicate pairs. Prefer [`GraphBuilder`](crate::GraphBuilder) unless
    /// you already hold aggregated, sorted edges.
    ///
    /// # Panics
    /// Panics if an edge references a node `>= num_nodes`, if edges are not
    /// strictly sorted by `(src, dst)`, or if a weight is not finite and
    /// positive.
    pub fn from_sorted_edges(num_nodes: usize, edges: Vec<Edge>) -> Self {
        let m = edges.len();
        let mut out_offsets = vec![0usize; num_nodes + 1];
        let mut in_counts = vec![0usize; num_nodes];
        let mut total_weight = 0.0;

        let mut prev: Option<(NodeId, NodeId)> = None;
        for e in &edges {
            assert!(
                e.src.index() < num_nodes && e.dst.index() < num_nodes,
                "node index out of range: {} -> {} with |V| = {}",
                e.src,
                e.dst,
                num_nodes
            );
            assert!(
                e.weight.is_finite() && e.weight > 0.0,
                "edge weight must be finite and positive, got {}",
                e.weight
            );
            let key = (e.src, e.dst);
            assert!(
                prev.is_none_or(|p| p < key),
                "edges must be strictly sorted by (src, dst)"
            );
            prev = Some(key);
            out_offsets[e.src.index() + 1] += 1;
            in_counts[e.dst.index()] += 1;
            total_weight += e.weight;
        }
        for i in 0..num_nodes {
            out_offsets[i + 1] += out_offsets[i];
        }

        let mut out_targets = Vec::with_capacity(m);
        let mut out_weights = Vec::with_capacity(m);
        for e in &edges {
            out_targets.push(e.dst);
            out_weights.push(e.weight);
        }

        // Counting sort of the same edges by destination builds the
        // in-adjacency; because the input is sorted by (src, dst), each
        // in-list comes out sorted by source automatically.
        let mut in_offsets = vec![0usize; num_nodes + 1];
        for i in 0..num_nodes {
            in_offsets[i + 1] = in_offsets[i] + in_counts[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_sources = vec![NodeId::new(0); m];
        let mut in_weights = vec![0.0; m];
        let mut out_weight_sums = vec![0.0; num_nodes];
        let mut in_weight_sums = vec![0.0; num_nodes];
        for e in &edges {
            let slot = cursor[e.dst.index()];
            in_sources[slot] = e.src;
            in_weights[slot] = e.weight;
            cursor[e.dst.index()] += 1;
            out_weight_sums[e.src.index()] += e.weight;
            in_weight_sums[e.dst.index()] += e.weight;
        }

        CommGraph {
            num_nodes,
            num_edges: m,
            total_weight,
            out_offsets,
            out_targets,
            out_weights,
            in_offsets,
            in_sources,
            in_weights,
            out_weight_sums,
            in_weight_sums,
            undirected: OnceLock::new(),
        }
    }

    /// An edge-less graph over `num_nodes` nodes — the seed of a
    /// delta-driven stream (see [`Self::apply_delta`]).
    #[must_use]
    pub fn empty(num_nodes: usize) -> Self {
        CommGraph::from_sorted_edges(num_nodes, Vec::new())
    }

    /// Number of nodes `|V|` (including isolated nodes).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed edges `|E_t|` with positive weight.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Sum of all edge weights.
    #[inline]
    pub fn total_weight(&self) -> Weight {
        self.total_weight
    }

    /// Iterates over all node ids `0..|V|`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes).map(NodeId::new)
    }

    /// Out-degree `|O(v)|`: number of distinct destinations of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        let i = v.index();
        self.out_offsets[i + 1] - self.out_offsets[i]
    }

    /// In-degree `|I(v)|`: number of distinct sources reaching `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        let i = v.index();
        self.in_offsets[i + 1] - self.in_offsets[i]
    }

    /// Total outgoing volume `Σ_u C[v, u]` (row sum of the weight
    /// matrix). Cached at construction; O(1).
    #[inline]
    pub fn out_weight_sum(&self, v: NodeId) -> Weight {
        self.out_weight_sums[v.index()]
    }

    /// Total incoming volume `Σ_u C[u, v]`. Cached at construction; O(1).
    #[inline]
    pub fn in_weight_sum(&self, v: NodeId) -> Weight {
        self.in_weight_sums[v.index()]
    }

    /// Total incident volume `Σ_u C[v, u] + Σ_u C[u, v]`: the
    /// normaliser of an undirected random-walk step from `v`. O(1).
    #[inline]
    pub fn undirected_weight_sum(&self, v: NodeId) -> Weight {
        self.out_weight_sums[v.index()] + self.in_weight_sums[v.index()]
    }

    /// Iterates `(destination, C[v, destination])` over out-neighbours of
    /// `v` in ascending destination-id order.
    pub fn out_neighbors(&self, v: NodeId) -> NeighborIter<'_> {
        let i = v.index();
        NeighborIter {
            nodes: &self.out_targets[self.out_offsets[i]..self.out_offsets[i + 1]],
            weights: &self.out_weights[self.out_offsets[i]..self.out_offsets[i + 1]],
            pos: 0,
        }
    }

    /// Iterates `(source, C[source, v])` over in-neighbours of `v` in
    /// ascending source-id order.
    pub fn in_neighbors(&self, v: NodeId) -> NeighborIter<'_> {
        let i = v.index();
        NeighborIter {
            nodes: &self.in_sources[self.in_offsets[i]..self.in_offsets[i + 1]],
            weights: &self.in_weights[self.in_offsets[i]..self.in_offsets[i + 1]],
            pos: 0,
        }
    }

    /// The weight `C[src, dst]`, or `None` if the edge is absent.
    pub fn edge_weight(&self, src: NodeId, dst: NodeId) -> Option<Weight> {
        let i = src.index();
        let row = &self.out_targets[self.out_offsets[i]..self.out_offsets[i + 1]];
        row.binary_search(&dst)
            .ok()
            .map(|k| self.out_weights[self.out_offsets[i] + k])
    }

    /// Whether the directed edge `src → dst` exists.
    pub fn has_edge(&self, src: NodeId, dst: NodeId) -> bool {
        self.edge_weight(src, dst).is_some()
    }

    /// Iterates over every edge in `(src, dst)` order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.num_nodes).flat_map(move |i| {
            let v = NodeId::new(i);
            self.out_neighbors(v)
                .map(move |(dst, w)| Edge::new(v, dst, w))
        })
    }

    /// Nodes with at least one outgoing edge (the "active sources" of the
    /// window — for flow data, the monitored local hosts that spoke).
    pub fn active_sources(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(|&v| self.out_degree(v) > 0)
    }

    /// Nodes with at least one incident edge in either direction.
    pub fn active_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes()
            .filter(|&v| self.out_degree(v) > 0 || self.in_degree(v) > 0)
    }

    /// The row-stochastic transition probability
    /// `P(v, j) = C[v, j] / Σ_u C[v, u]` used by the RWR scheme, or `None`
    /// if `v` has no outgoing edges (a dangling node).
    pub fn transition_row(&self, v: NodeId) -> Option<impl Iterator<Item = (NodeId, f64)> + '_> {
        let sum = self.out_weight_sum(v);
        if sum <= 0.0 {
            return None;
        }
        Some(self.out_neighbors(v).map(move |(u, w)| (u, w / sum)))
    }

    /// The undirected transition row of `v`: distinct neighbours in
    /// either direction, each with probability
    /// `(C[v,u] + C[u,v]) / (Σ C[v,·] + Σ C[·,v])`, in ascending id
    /// order. Returns `None` if `v` has no incident edges.
    ///
    /// Reads the merged, pre-normalised CSR built lazily by
    /// [`Self::undirected_view`]; an undirected walk step over this row
    /// touches each neighbour exactly once instead of iterating the out-
    /// and in-rows separately and re-dividing by the weight sum.
    pub fn undirected_transition_row(
        &self,
        v: NodeId,
    ) -> Option<impl Iterator<Item = (NodeId, f64)> + '_> {
        let und = self.undirected_view();
        let i = v.index();
        let row = und.offsets[i]..und.offsets[i + 1];
        if row.is_empty() {
            return None;
        }
        Some(
            und.neighbors[row.clone()]
                .iter()
                .copied()
                .zip(und.probs[row].iter().copied()),
        )
    }

    /// The out-row of `v` as raw unit-stride CSR slices
    /// `(targets, weights)`, both in ascending target-id order — the
    /// zero-overhead form of [`Self::out_neighbors`] consumed by the
    /// blocked scatter kernels in `comsig_core::engine`.
    #[inline]
    #[must_use]
    pub fn out_row(&self, v: NodeId) -> (&[NodeId], &[Weight]) {
        let i = v.index();
        let row = self.out_offsets[i]..self.out_offsets[i + 1];
        (&self.out_targets[row.clone()], &self.out_weights[row])
    }

    /// The merged undirected row of `v` as raw unit-stride slices
    /// `(neighbors, probabilities)` (pre-normalised, ascending id
    /// order), or `None` for a node with no incident edges — the
    /// zero-overhead form of [`Self::undirected_transition_row`]
    /// consumed by the blocked scatter kernels in `comsig_core::engine`.
    #[inline]
    #[must_use]
    pub fn undirected_row(&self, v: NodeId) -> Option<(&[NodeId], &[f64])> {
        let und = self.undirected_view();
        let i = v.index();
        let row = und.offsets[i]..und.offsets[i + 1];
        if row.is_empty() {
            return None;
        }
        Some((&und.neighbors[row.clone()], &und.probs[row]))
    }

    /// Number of distinct undirected neighbours of `v`.
    pub fn undirected_degree(&self, v: NodeId) -> usize {
        let und = self.undirected_view();
        let i = v.index();
        und.offsets[i + 1] - und.offsets[i]
    }

    /// Forces materialisation of the merged undirected CSR (it is
    /// otherwise built on first undirected access). Useful to pay the
    /// one-off cost eagerly before timing or before sharing the graph
    /// across threads.
    pub fn warm_undirected_view(&self) {
        self.undirected_view();
    }

    fn undirected_view(&self) -> &UndirectedCsr {
        self.undirected.get_or_init(|| self.build_undirected())
    }

    /// Applies a [`WindowDelta`] and returns the next window's graph.
    ///
    /// The result is **bit-identical** to rebuilding the new window cold
    /// through [`GraphBuilder`](crate::GraphBuilder) /
    /// [`Self::from_sorted_edges`]: dirty adjacency rows are merge-joined
    /// with the sorted changes while clean rows are copied wholesale, the
    /// cached weight sums of dirty rows are re-accumulated in the cold
    /// accumulation order (never decremented — floating-point subtraction
    /// does not round-trip) while clean sums are copied bitwise, and
    /// `total_weight` is re-accumulated over the new edge storage order,
    /// which is exactly the cold construction's accumulation order. If
    /// this graph's merged undirected CSR has been materialised, only the
    /// rows incident to a change are re-merged and the rest are copied,
    /// so the new graph starts warm instead of rebuilding lazily.
    ///
    /// # Panics
    /// Panics if the changes are not strictly sorted by `(src, dst)`, if
    /// a change references a node `>= num_nodes` or a self-loop, if a
    /// `new` weight is not finite and positive, or if an `old` weight
    /// does not bitwise match this graph's current edge weight
    /// (including presence/absence).
    #[must_use]
    pub fn apply_delta(&self, delta: &WindowDelta) -> CommGraph {
        let n = self.num_nodes;
        let changes = &delta.changes;

        let mut prev: Option<(NodeId, NodeId)> = None;
        let mut edge_delta: isize = 0;
        for c in changes {
            assert!(
                c.src.index() < n && c.dst.index() < n,
                "delta node out of range: {} -> {} with |V| = {n}",
                c.src,
                c.dst
            );
            assert!(c.src != c.dst, "delta contains a self-loop at {}", c.src);
            let key = (c.src, c.dst);
            assert!(
                prev.is_none_or(|p| p < key),
                "delta changes must be strictly sorted by (src, dst)"
            );
            prev = Some(key);
            if let Some(w) = c.new {
                assert!(
                    w.is_finite() && w > 0.0,
                    "delta weight must be finite and positive, got {w}"
                );
            }
            assert!(
                c.old.is_some() || c.new.is_some(),
                "delta change for {} -> {} has neither old nor new weight",
                c.src,
                c.dst
            );
            let cur = self.edge_weight(c.src, c.dst);
            assert!(
                cur.map(f64::to_bits) == c.old.map(f64::to_bits),
                "delta `old` weight for {} -> {} does not match the graph ({:?} vs {:?})",
                c.src,
                c.dst,
                c.old,
                cur
            );
            edge_delta += match (c.old, c.new) {
                (None, Some(_)) => 1,
                (Some(_), None) => -1,
                _ => 0,
            };
        }
        let new_m = self
            .num_edges
            .checked_add_signed(edge_delta)
            .expect("delta edge count underflows");

        // Out-adjacency: merge dirty rows, copy clean spans.
        let mut out_offsets = Vec::with_capacity(n + 1);
        out_offsets.push(0usize);
        let mut out_targets: Vec<NodeId> = Vec::with_capacity(new_m);
        let mut out_weights: Vec<Weight> = Vec::with_capacity(new_m);
        let mut dirty_out_rows: Vec<usize> = Vec::new();
        let mut row_changes: Vec<(NodeId, Option<Weight>)> = Vec::new();
        let mut ci = 0usize;
        for i in 0..n {
            let row = self.out_offsets[i]..self.out_offsets[i + 1];
            let mut cj = ci;
            while cj < changes.len() && changes[cj].src.index() == i {
                cj += 1;
            }
            if ci == cj {
                out_targets.extend_from_slice(&self.out_targets[row.clone()]);
                out_weights.extend_from_slice(&self.out_weights[row]);
            } else {
                dirty_out_rows.push(i);
                row_changes.clear();
                row_changes.extend(changes[ci..cj].iter().map(|c| (c.dst, c.new)));
                merge_row(
                    &self.out_targets[row.clone()],
                    &self.out_weights[row],
                    &row_changes,
                    &mut out_targets,
                    &mut out_weights,
                );
                ci = cj;
            }
            out_offsets.push(out_targets.len());
        }
        debug_assert_eq!(out_targets.len(), new_m);

        // In-adjacency: the same changes viewed in (dst, src) order.
        let mut by_dst: Vec<usize> = (0..changes.len()).collect();
        by_dst.sort_unstable_by_key(|&k| (changes[k].dst, changes[k].src));
        let mut in_offsets = Vec::with_capacity(n + 1);
        in_offsets.push(0usize);
        let mut in_sources: Vec<NodeId> = Vec::with_capacity(new_m);
        let mut in_weights: Vec<Weight> = Vec::with_capacity(new_m);
        let mut dirty_in_rows: Vec<usize> = Vec::new();
        let mut ci = 0usize;
        for i in 0..n {
            let row = self.in_offsets[i]..self.in_offsets[i + 1];
            let mut cj = ci;
            while cj < by_dst.len() && changes[by_dst[cj]].dst.index() == i {
                cj += 1;
            }
            if ci == cj {
                in_sources.extend_from_slice(&self.in_sources[row.clone()]);
                in_weights.extend_from_slice(&self.in_weights[row]);
            } else {
                dirty_in_rows.push(i);
                row_changes.clear();
                row_changes.extend(
                    by_dst[ci..cj]
                        .iter()
                        .map(|&k| (changes[k].src, changes[k].new)),
                );
                merge_row(
                    &self.in_sources[row.clone()],
                    &self.in_weights[row],
                    &row_changes,
                    &mut in_sources,
                    &mut in_weights,
                );
                ci = cj;
            }
            in_offsets.push(in_sources.len());
        }

        // Cached sums: clean entries copied bitwise, dirty rows
        // re-accumulated left-to-right over the new row — the same
        // per-row order (ascending neighbour id) the cold build uses.
        let mut out_weight_sums = self.out_weight_sums.clone();
        for &i in &dirty_out_rows {
            let mut sum = 0.0;
            for &w in &out_weights[out_offsets[i]..out_offsets[i + 1]] {
                sum += w;
            }
            out_weight_sums[i] = sum;
        }
        let mut in_weight_sums = self.in_weight_sums.clone();
        for &i in &dirty_in_rows {
            let mut sum = 0.0;
            for &w in &in_weights[in_offsets[i]..in_offsets[i + 1]] {
                sum += w;
            }
            in_weight_sums[i] = sum;
        }

        // Cold construction accumulates `total_weight` over edges in
        // (src, dst) order — exactly the storage order of `out_weights` —
        // so one linear pass reproduces it bit for bit.
        let mut total_weight = 0.0;
        for &w in &out_weights {
            total_weight += w;
        }

        // Patch the merged undirected CSR if it has been materialised:
        // a change (s, d) perturbs only rows s and d (their adjacency or
        // incident-volume normaliser); every other row merges bitwise
        // identical inputs and is copied instead of re-merged.
        let undirected = OnceLock::new();
        if let Some(old_und) = self.undirected.get() {
            let mut dirty_node = vec![false; n];
            for c in changes {
                dirty_node[c.src.index()] = true;
                dirty_node[c.dst.index()] = true;
            }
            let mut offsets = Vec::with_capacity(n + 1);
            offsets.push(0usize);
            let mut neighbors: Vec<NodeId> =
                Vec::with_capacity(old_und.neighbors.len() + 2 * changes.len());
            let mut probs: Vec<f64> = Vec::with_capacity(old_und.probs.len() + 2 * changes.len());
            for i in 0..n {
                if dirty_node[i] {
                    let sum = out_weight_sums[i] + in_weight_sums[i];
                    if sum > 0.0 {
                        merge_undirected_row(
                            &out_targets[out_offsets[i]..out_offsets[i + 1]],
                            &out_weights[out_offsets[i]..out_offsets[i + 1]],
                            &in_sources[in_offsets[i]..in_offsets[i + 1]],
                            &in_weights[in_offsets[i]..in_offsets[i + 1]],
                            1.0 / sum,
                            &mut neighbors,
                            &mut probs,
                        );
                    }
                } else {
                    let row = old_und.offsets[i]..old_und.offsets[i + 1];
                    neighbors.extend_from_slice(&old_und.neighbors[row.clone()]);
                    probs.extend_from_slice(&old_und.probs[row]);
                }
                offsets.push(neighbors.len());
            }
            let csr = UndirectedCsr {
                offsets,
                neighbors,
                probs,
            };
            #[cfg(debug_assertions)]
            for i in 0..n {
                let row = csr.offsets[i]..csr.offsets[i + 1];
                if !row.is_empty() {
                    let mass: f64 = csr.probs[row].iter().sum();
                    debug_assert!(
                        (mass - 1.0).abs() <= 1e-9,
                        "patched undirected row {i} has mass {mass}, expected 1"
                    );
                }
            }
            let _ = undirected.set(csr);
        }

        CommGraph {
            num_nodes: n,
            num_edges: out_targets.len(),
            total_weight,
            out_offsets,
            out_targets,
            out_weights,
            in_offsets,
            in_sources,
            in_weights,
            out_weight_sums,
            in_weight_sums,
            undirected,
        }
    }

    /// Merges the sorted out- and in-rows of every node, summing weights
    /// of neighbours present in both directions, and pre-divides by the
    /// node's total incident volume.
    fn build_undirected(&self) -> UndirectedCsr {
        let mut offsets = Vec::with_capacity(self.num_nodes + 1);
        offsets.push(0usize);
        // Each edge contributes one entry to each endpoint's row, minus
        // merged duplicates; 2m is an upper bound.
        let mut neighbors = Vec::with_capacity(2 * self.num_edges);
        let mut probs = Vec::with_capacity(2 * self.num_edges);

        for i in 0..self.num_nodes {
            let sum = self.out_weight_sums[i] + self.in_weight_sums[i];
            if sum > 0.0 {
                merge_undirected_row(
                    &self.out_targets[self.out_offsets[i]..self.out_offsets[i + 1]],
                    &self.out_weights[self.out_offsets[i]..self.out_offsets[i + 1]],
                    &self.in_sources[self.in_offsets[i]..self.in_offsets[i + 1]],
                    &self.in_weights[self.in_offsets[i]..self.in_offsets[i + 1]],
                    1.0 / sum,
                    &mut neighbors,
                    &mut probs,
                );
            }
            offsets.push(neighbors.len());
        }

        let csr = UndirectedCsr {
            offsets,
            neighbors,
            probs,
        };
        // Paper contract (Definition 5): every non-empty row of the
        // pre-normalised transition matrix must be stochastic. Checked
        // once at construction in debug builds; `comsig-core::contract`
        // re-checks from the consumer side.
        #[cfg(debug_assertions)]
        for i in 0..self.num_nodes {
            let row = csr.offsets[i]..csr.offsets[i + 1];
            if !row.is_empty() {
                let mass: f64 = csr.probs[row].iter().sum();
                debug_assert!(
                    (mass - 1.0).abs() <= 1e-9,
                    "undirected transition row {i} has mass {mass}, expected 1"
                );
            }
        }
        csr
    }
}

/// Merge-joins one sorted adjacency row with its sorted `(node, new)`
/// changes: `Some(w)` replaces or inserts the entry, `None` removes it.
/// Output stays sorted by node id, matching cold CSR row order.
fn merge_row(
    nodes: &[NodeId],
    weights: &[Weight],
    changes: &[(NodeId, Option<Weight>)],
    out_nodes: &mut Vec<NodeId>,
    out_weights: &mut Vec<Weight>,
) {
    let (mut a, mut b) = (0usize, 0usize);
    while a < nodes.len() || b < changes.len() {
        if b >= changes.len() || (a < nodes.len() && nodes[a] < changes[b].0) {
            out_nodes.push(nodes[a]);
            out_weights.push(weights[a]);
            a += 1;
        } else {
            if let Some(w) = changes[b].1 {
                out_nodes.push(changes[b].0);
                out_weights.push(w);
            }
            if a < nodes.len() && nodes[a] == changes[b].0 {
                a += 1;
            }
            b += 1;
        }
    }
}

/// Merges one node's sorted out- and in-rows, summing the weights of
/// neighbours present in both directions and pre-dividing by `inv` — the
/// per-row step of the undirected CSR build, shared between
/// `build_undirected` and the dirty-row patching in
/// [`CommGraph::apply_delta`] so the two paths are bit-identical by
/// construction.
fn merge_undirected_row(
    outs: &[NodeId],
    out_ws: &[Weight],
    ins: &[NodeId],
    in_ws: &[Weight],
    inv: f64,
    neighbors: &mut Vec<NodeId>,
    probs: &mut Vec<f64>,
) {
    let (mut a, mut b) = (0usize, 0usize);
    while a < outs.len() || b < ins.len() {
        let (u, w) = if b >= ins.len() || (a < outs.len() && outs[a] < ins[b]) {
            let pair = (outs[a], out_ws[a]);
            a += 1;
            pair
        } else if a >= outs.len() || ins[b] < outs[a] {
            let pair = (ins[b], in_ws[b]);
            b += 1;
            pair
        } else {
            let pair = (outs[a], out_ws[a] + in_ws[b]);
            a += 1;
            b += 1;
            pair
        };
        neighbors.push(u);
        probs.push(w * inv);
    }
}

/// Iterator over `(neighbor, weight)` pairs of one adjacency row.
#[derive(Debug, Clone)]
pub struct NeighborIter<'a> {
    nodes: &'a [NodeId],
    weights: &'a [Weight],
    pos: usize,
}

impl Iterator for NeighborIter<'_> {
    type Item = (NodeId, Weight);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        if self.pos < self.nodes.len() {
            let item = (self.nodes[self.pos], self.weights[self.pos]);
            self.pos += 1;
            Some(item)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.nodes.len() - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for NeighborIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// 0 -> 1 (2.0), 0 -> 2 (1.0), 1 -> 2 (4.0), 3 isolated.
    fn sample() -> CommGraph {
        let mut b = GraphBuilder::new();
        b.add_event(n(0), n(1), 2.0);
        b.add_event(n(0), n(2), 1.0);
        b.add_event(n(1), n(2), 4.0);
        b.build(4)
    }

    #[test]
    fn degrees_and_sums() {
        let g = sample();
        assert_eq!(g.out_degree(n(0)), 2);
        assert_eq!(g.out_degree(n(3)), 0);
        assert_eq!(g.in_degree(n(2)), 2);
        assert_eq!(g.in_degree(n(0)), 0);
        assert_eq!(g.out_weight_sum(n(0)), 3.0);
        assert_eq!(g.in_weight_sum(n(2)), 5.0);
        assert_eq!(g.total_weight(), 7.0);
    }

    #[test]
    fn neighbor_iteration_sorted() {
        let g = sample();
        let outs: Vec<_> = g.out_neighbors(n(0)).collect();
        assert_eq!(outs, vec![(n(1), 2.0), (n(2), 1.0)]);
        let ins: Vec<_> = g.in_neighbors(n(2)).collect();
        assert_eq!(ins, vec![(n(0), 1.0), (n(1), 4.0)]);
        assert_eq!(g.out_neighbors(n(0)).len(), 2);
    }

    #[test]
    fn edge_weight_lookup() {
        let g = sample();
        assert_eq!(g.edge_weight(n(0), n(1)), Some(2.0));
        assert_eq!(g.edge_weight(n(1), n(0)), None);
        assert!(g.has_edge(n(1), n(2)));
        assert!(!g.has_edge(n(2), n(1)));
    }

    #[test]
    fn edges_round_trip() {
        let g = sample();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        assert_eq!(edges[0], Edge::new(n(0), n(1), 2.0));
        assert_eq!(edges[2], Edge::new(n(1), n(2), 4.0));
    }

    #[test]
    fn active_nodes_and_sources() {
        let g = sample();
        let sources: Vec<_> = g.active_sources().collect();
        assert_eq!(sources, vec![n(0), n(1)]);
        let active: Vec<_> = g.active_nodes().collect();
        assert_eq!(active, vec![n(0), n(1), n(2)]);
    }

    #[test]
    fn transition_row_normalised() {
        let g = sample();
        let row: Vec<_> = g.transition_row(n(0)).unwrap().collect();
        assert_eq!(row.len(), 2);
        let total: f64 = row.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(g.transition_row(n(3)).is_none());
    }

    #[test]
    fn undirected_row_merges_and_normalises() {
        // 0 <-> 1 in both directions plus 0 -> 2: row 0 must merge the
        // two directions of (0,1) into one entry.
        let mut b = GraphBuilder::new();
        b.add_event(n(0), n(1), 2.0);
        b.add_event(n(1), n(0), 3.0);
        b.add_event(n(0), n(2), 5.0);
        let g = b.build(4);

        let row: Vec<_> = g.undirected_transition_row(n(0)).unwrap().collect();
        assert_eq!(g.undirected_degree(n(0)), 2);
        assert_eq!(row.len(), 2);
        assert_eq!(row[0].0, n(1));
        assert!((row[0].1 - 5.0 / 10.0).abs() < 1e-15);
        assert_eq!(row[1].0, n(2));
        assert!((row[1].1 - 5.0 / 10.0).abs() < 1e-15);
        assert!((g.undirected_weight_sum(n(0)) - 10.0).abs() < 1e-15);

        // Row 2 sees only the reverse of 0 -> 2.
        let row2: Vec<_> = g.undirected_transition_row(n(2)).unwrap().collect();
        assert_eq!(row2, vec![(n(0), 1.0)]);

        // Isolated node has no row.
        assert!(g.undirected_transition_row(n(3)).is_none());
        assert_eq!(g.undirected_degree(n(3)), 0);
    }

    #[test]
    fn undirected_rows_are_stochastic() {
        let g = sample();
        g.warm_undirected_view();
        for v in g.nodes() {
            if let Some(row) = g.undirected_transition_row(v) {
                let total: f64 = row.map(|(_, p)| p).sum();
                assert!((total - 1.0).abs() < 1e-12, "node {v}: mass {total}");
            }
        }
    }

    #[test]
    fn cached_sums_match_row_scans() {
        let g = sample();
        for v in g.nodes() {
            let out_scan: f64 = g.out_neighbors(v).map(|(_, w)| w).sum();
            let in_scan: f64 = g.in_neighbors(v).map(|(_, w)| w).sum();
            assert_eq!(g.out_weight_sum(v), out_scan);
            assert_eq!(g.in_weight_sum(v), in_scan);
            assert_eq!(g.undirected_weight_sum(v), out_scan + in_scan);
        }
    }

    #[test]
    fn rebuild_from_sorted_edges_matches() {
        let g = sample();
        let edges: Vec<_> = g.edges().collect();
        let g2 = CommGraph::from_sorted_edges(4, edges);
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(g2.total_weight(), g.total_weight());
        assert_eq!(g2.edge_weight(n(1), n(2)), g.edge_weight(n(1), n(2)));
    }

    #[test]
    #[should_panic(expected = "strictly sorted")]
    fn unsorted_edges_rejected() {
        let edges = vec![Edge::new(n(1), n(0), 1.0), Edge::new(n(0), n(1), 1.0)];
        let _ = CommGraph::from_sorted_edges(2, edges);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_weight_rejected() {
        let edges = vec![Edge::new(n(0), n(1), 0.0)];
        let _ = CommGraph::from_sorted_edges(2, edges);
    }

    use crate::delta::{EdgeChange, WindowDelta};

    fn delta(changes: Vec<EdgeChange>) -> WindowDelta {
        WindowDelta {
            start: 0,
            end: 1,
            changes,
        }
    }

    fn ch(src: usize, dst: usize, old: Option<f64>, new: Option<f64>) -> EdgeChange {
        EdgeChange {
            src: n(src),
            dst: n(dst),
            old,
            new,
        }
    }

    /// Asserts every derived quantity of `got` bitwise matches `want`,
    /// including cached sums and (if both are warm) undirected rows.
    fn assert_bit_identical(got: &CommGraph, want: &CommGraph) {
        assert_eq!(got.num_nodes(), want.num_nodes());
        assert_eq!(got.num_edges(), want.num_edges());
        assert_eq!(got.total_weight().to_bits(), want.total_weight().to_bits());
        for v in got.nodes() {
            assert_eq!(
                got.out_weight_sum(v).to_bits(),
                want.out_weight_sum(v).to_bits(),
                "out sum of {v}"
            );
            assert_eq!(
                got.in_weight_sum(v).to_bits(),
                want.in_weight_sum(v).to_bits(),
                "in sum of {v}"
            );
            let go: Vec<_> = got.out_neighbors(v).collect();
            let wo: Vec<_> = want.out_neighbors(v).collect();
            assert_eq!(go.len(), wo.len(), "out row of {v}");
            for ((gu, gw), (wu, ww)) in go.iter().zip(&wo) {
                assert_eq!(gu, wu);
                assert_eq!(gw.to_bits(), ww.to_bits());
            }
            let gi: Vec<_> = got.in_neighbors(v).collect();
            let wi: Vec<_> = want.in_neighbors(v).collect();
            assert_eq!(gi.len(), wi.len(), "in row of {v}");
            for ((gu, gw), (wu, ww)) in gi.iter().zip(&wi) {
                assert_eq!(gu, wu);
                assert_eq!(gw.to_bits(), ww.to_bits());
            }
        }
    }

    fn assert_undirected_bit_identical(got: &CommGraph, want: &CommGraph) {
        for v in got.nodes() {
            let gr: Vec<_> = got
                .undirected_transition_row(v)
                .map(|r| r.collect())
                .unwrap_or_default();
            let wr: Vec<_> = want
                .undirected_transition_row(v)
                .map(|r| r.collect())
                .unwrap_or_default();
            assert_eq!(gr.len(), wr.len(), "undirected row of {v}");
            for ((gu, gp), (wu, wp)) in gr.iter().zip(&wr) {
                assert_eq!(gu, wu);
                assert_eq!(gp.to_bits(), wp.to_bits());
            }
        }
    }

    #[test]
    fn apply_delta_matches_cold_rebuild() {
        let g = sample(); // 0->1 (2.0), 0->2 (1.0), 1->2 (4.0)
        g.warm_undirected_view();
        // Insert 2->0, update 0->1, retract 1->2.
        let d = delta(vec![
            ch(0, 1, Some(2.0), Some(2.5)),
            ch(1, 2, Some(4.0), None),
            ch(2, 0, None, Some(0.25)),
        ]);
        let got = g.apply_delta(&d);

        let mut b = GraphBuilder::new();
        b.add_event(n(0), n(1), 2.5);
        b.add_event(n(0), n(2), 1.0);
        b.add_event(n(2), n(0), 0.25);
        let want = b.build(4);
        assert_bit_identical(&got, &want);
        // The undirected view was patched eagerly and matches a cold one.
        assert_undirected_bit_identical(&got, &want);
    }

    #[test]
    fn apply_delta_from_empty_and_to_empty() {
        let empty = CommGraph::empty(3);
        let d = delta(vec![ch(0, 1, None, Some(1.5)), ch(1, 2, None, Some(2.0))]);
        let g = empty.apply_delta(&d);
        let mut b = GraphBuilder::new();
        b.add_event(n(0), n(1), 1.5);
        b.add_event(n(1), n(2), 2.0);
        assert_bit_identical(&g, &b.build(3));

        // Retract everything: back to an edge-less graph.
        let wipe = delta(vec![ch(0, 1, Some(1.5), None), ch(1, 2, Some(2.0), None)]);
        let gone = g.apply_delta(&wipe);
        assert_bit_identical(&gone, &CommGraph::empty(3));
    }

    #[test]
    fn apply_delta_cold_undirected_untouched() {
        // If the source graph never materialised the undirected view,
        // the patched graph must not pretend to have one — it is built
        // lazily and still matches a cold build.
        let g = sample();
        let d = delta(vec![ch(0, 1, Some(2.0), Some(3.0))]);
        let got = g.apply_delta(&d);
        let mut b = GraphBuilder::new();
        b.add_event(n(0), n(1), 3.0);
        b.add_event(n(0), n(2), 1.0);
        b.add_event(n(1), n(2), 4.0);
        let want = b.build(4);
        assert_undirected_bit_identical(&got, &want);
    }

    #[test]
    #[should_panic(expected = "does not match the graph")]
    fn apply_delta_rejects_stale_old_weight() {
        let g = sample();
        let d = delta(vec![ch(0, 1, Some(7.0), Some(1.0))]);
        let _ = g.apply_delta(&d);
    }

    #[test]
    #[should_panic(expected = "strictly sorted")]
    fn apply_delta_rejects_unsorted_changes() {
        let g = sample();
        let d = delta(vec![
            ch(1, 2, Some(4.0), None),
            ch(0, 1, Some(2.0), Some(3.0)),
        ]);
        let _ = g.apply_delta(&d);
    }
}
