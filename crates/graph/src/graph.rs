//! The immutable CSR communication graph.

use serde::{Deserialize, Serialize};

use crate::edge::{Edge, Weight};
use crate::node::NodeId;

/// An immutable, weighted, directed communication graph `G_t = (V, E_t)` in
/// compressed-sparse-row form.
///
/// Both out-adjacency (`O(v)` with weights `C[v, ·]`) and in-adjacency
/// (`I(v)` with weights `C[·, v]`) are materialised, because the paper's
/// signature schemes need both directions: Top Talkers reads out-edges,
/// Unexpected Talkers additionally needs in-degrees `|I(j)|`, and RWR walks
/// forward over out-edges.
///
/// Neighbour lists are sorted by node id, so `C[i, j]` lookups are
/// `O(log deg)` binary searches and neighbour iteration is deterministic.
///
/// The node space is fixed at construction: a window's graph over a global
/// interner may contain isolated nodes (hosts silent in that window), which
/// matches the paper's convention that `V` is (mostly) shared across
/// windows while `E_t` varies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CommGraph {
    num_nodes: usize,
    num_edges: usize,
    total_weight: Weight,

    out_offsets: Vec<usize>,
    out_targets: Vec<NodeId>,
    out_weights: Vec<Weight>,

    in_offsets: Vec<usize>,
    in_sources: Vec<NodeId>,
    in_weights: Vec<Weight>,
}

impl CommGraph {
    /// Builds a graph from edges already sorted by `(src, dst)` with no
    /// duplicate pairs. Prefer [`GraphBuilder`](crate::GraphBuilder) unless
    /// you already hold aggregated, sorted edges.
    ///
    /// # Panics
    /// Panics if an edge references a node `>= num_nodes`, if edges are not
    /// strictly sorted by `(src, dst)`, or if a weight is not finite and
    /// positive.
    pub fn from_sorted_edges(num_nodes: usize, edges: Vec<Edge>) -> Self {
        let m = edges.len();
        let mut out_offsets = vec![0usize; num_nodes + 1];
        let mut in_counts = vec![0usize; num_nodes];
        let mut total_weight = 0.0;

        let mut prev: Option<(NodeId, NodeId)> = None;
        for e in &edges {
            assert!(
                e.src.index() < num_nodes && e.dst.index() < num_nodes,
                "node index out of range: {} -> {} with |V| = {}",
                e.src,
                e.dst,
                num_nodes
            );
            assert!(
                e.weight.is_finite() && e.weight > 0.0,
                "edge weight must be finite and positive, got {}",
                e.weight
            );
            let key = (e.src, e.dst);
            assert!(
                prev.is_none_or(|p| p < key),
                "edges must be strictly sorted by (src, dst)"
            );
            prev = Some(key);
            out_offsets[e.src.index() + 1] += 1;
            in_counts[e.dst.index()] += 1;
            total_weight += e.weight;
        }
        for i in 0..num_nodes {
            out_offsets[i + 1] += out_offsets[i];
        }

        let mut out_targets = Vec::with_capacity(m);
        let mut out_weights = Vec::with_capacity(m);
        for e in &edges {
            out_targets.push(e.dst);
            out_weights.push(e.weight);
        }

        // Counting sort of the same edges by destination builds the
        // in-adjacency; because the input is sorted by (src, dst), each
        // in-list comes out sorted by source automatically.
        let mut in_offsets = vec![0usize; num_nodes + 1];
        for i in 0..num_nodes {
            in_offsets[i + 1] = in_offsets[i] + in_counts[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_sources = vec![NodeId::new(0); m];
        let mut in_weights = vec![0.0; m];
        for e in &edges {
            let slot = cursor[e.dst.index()];
            in_sources[slot] = e.src;
            in_weights[slot] = e.weight;
            cursor[e.dst.index()] += 1;
        }

        CommGraph {
            num_nodes,
            num_edges: m,
            total_weight,
            out_offsets,
            out_targets,
            out_weights,
            in_offsets,
            in_sources,
            in_weights,
        }
    }

    /// Number of nodes `|V|` (including isolated nodes).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed edges `|E_t|` with positive weight.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Sum of all edge weights.
    #[inline]
    pub fn total_weight(&self) -> Weight {
        self.total_weight
    }

    /// Iterates over all node ids `0..|V|`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes).map(NodeId::new)
    }

    /// Out-degree `|O(v)|`: number of distinct destinations of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        let i = v.index();
        self.out_offsets[i + 1] - self.out_offsets[i]
    }

    /// In-degree `|I(v)|`: number of distinct sources reaching `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        let i = v.index();
        self.in_offsets[i + 1] - self.in_offsets[i]
    }

    /// Total outgoing volume `Σ_u C[v, u]` (row sum of the weight matrix).
    pub fn out_weight_sum(&self, v: NodeId) -> Weight {
        let i = v.index();
        self.out_weights[self.out_offsets[i]..self.out_offsets[i + 1]]
            .iter()
            .sum()
    }

    /// Total incoming volume `Σ_u C[u, v]`.
    pub fn in_weight_sum(&self, v: NodeId) -> Weight {
        let i = v.index();
        self.in_weights[self.in_offsets[i]..self.in_offsets[i + 1]]
            .iter()
            .sum()
    }

    /// Iterates `(destination, C[v, destination])` over out-neighbours of
    /// `v` in ascending destination-id order.
    pub fn out_neighbors(&self, v: NodeId) -> NeighborIter<'_> {
        let i = v.index();
        NeighborIter {
            nodes: &self.out_targets[self.out_offsets[i]..self.out_offsets[i + 1]],
            weights: &self.out_weights[self.out_offsets[i]..self.out_offsets[i + 1]],
            pos: 0,
        }
    }

    /// Iterates `(source, C[source, v])` over in-neighbours of `v` in
    /// ascending source-id order.
    pub fn in_neighbors(&self, v: NodeId) -> NeighborIter<'_> {
        let i = v.index();
        NeighborIter {
            nodes: &self.in_sources[self.in_offsets[i]..self.in_offsets[i + 1]],
            weights: &self.in_weights[self.in_offsets[i]..self.in_offsets[i + 1]],
            pos: 0,
        }
    }

    /// The weight `C[src, dst]`, or `None` if the edge is absent.
    pub fn edge_weight(&self, src: NodeId, dst: NodeId) -> Option<Weight> {
        let i = src.index();
        let row = &self.out_targets[self.out_offsets[i]..self.out_offsets[i + 1]];
        row.binary_search(&dst)
            .ok()
            .map(|k| self.out_weights[self.out_offsets[i] + k])
    }

    /// Whether the directed edge `src → dst` exists.
    pub fn has_edge(&self, src: NodeId, dst: NodeId) -> bool {
        self.edge_weight(src, dst).is_some()
    }

    /// Iterates over every edge in `(src, dst)` order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.num_nodes).flat_map(move |i| {
            let v = NodeId::new(i);
            self.out_neighbors(v)
                .map(move |(dst, w)| Edge::new(v, dst, w))
        })
    }

    /// Nodes with at least one outgoing edge (the "active sources" of the
    /// window — for flow data, the monitored local hosts that spoke).
    pub fn active_sources(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(|&v| self.out_degree(v) > 0)
    }

    /// Nodes with at least one incident edge in either direction.
    pub fn active_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes()
            .filter(|&v| self.out_degree(v) > 0 || self.in_degree(v) > 0)
    }

    /// The row-stochastic transition probability
    /// `P(v, j) = C[v, j] / Σ_u C[v, u]` used by the RWR scheme, or `None`
    /// if `v` has no outgoing edges (a dangling node).
    pub fn transition_row(&self, v: NodeId) -> Option<impl Iterator<Item = (NodeId, f64)> + '_> {
        let sum = self.out_weight_sum(v);
        if sum <= 0.0 {
            return None;
        }
        Some(self.out_neighbors(v).map(move |(u, w)| (u, w / sum)))
    }
}

/// Iterator over `(neighbor, weight)` pairs of one adjacency row.
#[derive(Debug, Clone)]
pub struct NeighborIter<'a> {
    nodes: &'a [NodeId],
    weights: &'a [Weight],
    pos: usize,
}

impl Iterator for NeighborIter<'_> {
    type Item = (NodeId, Weight);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        if self.pos < self.nodes.len() {
            let item = (self.nodes[self.pos], self.weights[self.pos]);
            self.pos += 1;
            Some(item)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.nodes.len() - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for NeighborIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// 0 -> 1 (2.0), 0 -> 2 (1.0), 1 -> 2 (4.0), 3 isolated.
    fn sample() -> CommGraph {
        let mut b = GraphBuilder::new();
        b.add_event(n(0), n(1), 2.0);
        b.add_event(n(0), n(2), 1.0);
        b.add_event(n(1), n(2), 4.0);
        b.build(4)
    }

    #[test]
    fn degrees_and_sums() {
        let g = sample();
        assert_eq!(g.out_degree(n(0)), 2);
        assert_eq!(g.out_degree(n(3)), 0);
        assert_eq!(g.in_degree(n(2)), 2);
        assert_eq!(g.in_degree(n(0)), 0);
        assert_eq!(g.out_weight_sum(n(0)), 3.0);
        assert_eq!(g.in_weight_sum(n(2)), 5.0);
        assert_eq!(g.total_weight(), 7.0);
    }

    #[test]
    fn neighbor_iteration_sorted() {
        let g = sample();
        let outs: Vec<_> = g.out_neighbors(n(0)).collect();
        assert_eq!(outs, vec![(n(1), 2.0), (n(2), 1.0)]);
        let ins: Vec<_> = g.in_neighbors(n(2)).collect();
        assert_eq!(ins, vec![(n(0), 1.0), (n(1), 4.0)]);
        assert_eq!(g.out_neighbors(n(0)).len(), 2);
    }

    #[test]
    fn edge_weight_lookup() {
        let g = sample();
        assert_eq!(g.edge_weight(n(0), n(1)), Some(2.0));
        assert_eq!(g.edge_weight(n(1), n(0)), None);
        assert!(g.has_edge(n(1), n(2)));
        assert!(!g.has_edge(n(2), n(1)));
    }

    #[test]
    fn edges_round_trip() {
        let g = sample();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        assert_eq!(edges[0], Edge::new(n(0), n(1), 2.0));
        assert_eq!(edges[2], Edge::new(n(1), n(2), 4.0));
    }

    #[test]
    fn active_nodes_and_sources() {
        let g = sample();
        let sources: Vec<_> = g.active_sources().collect();
        assert_eq!(sources, vec![n(0), n(1)]);
        let active: Vec<_> = g.active_nodes().collect();
        assert_eq!(active, vec![n(0), n(1), n(2)]);
    }

    #[test]
    fn transition_row_normalised() {
        let g = sample();
        let row: Vec<_> = g.transition_row(n(0)).unwrap().collect();
        assert_eq!(row.len(), 2);
        let total: f64 = row.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(g.transition_row(n(3)).is_none());
    }

    #[test]
    fn rebuild_from_sorted_edges_matches() {
        let g = sample();
        let edges: Vec<_> = g.edges().collect();
        let g2 = CommGraph::from_sorted_edges(4, edges);
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(g2.total_weight(), g.total_weight());
        assert_eq!(
            g2.edge_weight(n(1), n(2)),
            g.edge_weight(n(1), n(2))
        );
    }

    #[test]
    #[should_panic(expected = "strictly sorted")]
    fn unsorted_edges_rejected() {
        let edges = vec![Edge::new(n(1), n(0), 1.0), Edge::new(n(0), n(1), 1.0)];
        let _ = CommGraph::from_sorted_edges(2, edges);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_weight_rejected() {
        let edges = vec![Edge::new(n(0), n(1), 0.0)];
        let _ = CommGraph::from_sorted_edges(2, edges);
    }
}
