//! Shard planning for deterministic multi-core work partitioning.
//!
//! The streaming advance parallelises over *subjects*: a [`ShardPlan`]
//! carves an ordered work list into contiguous per-thread shards. Two
//! properties make this the right primitive for bit-identical
//! parallelism:
//!
//! 1. **The partition is pure scheduling.** Shards are contiguous
//!    sub-ranges of the caller's ordered work list, so concatenating
//!    per-shard results in shard order reproduces exactly the serial
//!    iteration order — no sort, no nondeterministic interleaving.
//! 2. **The arithmetic matches the historical chunking.** `ranges`
//!    uses the same ceil-division split as the vendored `rayon`
//!    stand-in's internal chunker, so a default (`auto`) plan assigns
//!    work to shards exactly as the previous `par_iter` batch paths
//!    did.
//!
//! Every consumer (`SignaturePipeline`, `PostingsIndex::update_with`,
//! the detectors, `comsig stream --threads`) takes a plan explicitly
//! instead of reading ad-hoc globals, so one config struct pins the
//! thread count end to end.

use std::ops::Range;

/// An explicit thread-count configuration for sharded batch work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    threads: usize,
}

impl Default for ShardPlan {
    fn default() -> Self {
        ShardPlan::auto()
    }
}

impl ShardPlan {
    /// A plan with exactly `threads` workers (clamped to at least 1).
    #[must_use]
    pub fn new(threads: usize) -> ShardPlan {
        ShardPlan {
            threads: threads.max(1),
        }
    }

    /// A plan sized to the machine: `rayon::current_num_threads()`
    /// (which honours `RAYON_NUM_THREADS`).
    #[must_use]
    pub fn auto() -> ShardPlan {
        ShardPlan::new(rayon::current_num_threads())
    }

    /// The configured worker count (always ≥ 1).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this plan runs everything on the calling thread.
    #[must_use]
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// Partitions `0..n` into at most [`threads`](Self::threads)
    /// contiguous, non-empty, ascending ranges — one per shard. Uses
    /// ceil-division chunks (the vendored rayon arithmetic), so every
    /// shard but possibly the last has the same size. `n == 0` yields
    /// no ranges.
    #[must_use]
    pub fn ranges(&self, n: usize) -> Vec<Range<usize>> {
        if n == 0 {
            return Vec::new();
        }
        let shards = self.threads.min(n);
        let chunk = n.div_ceil(shards);
        (0..shards)
            .filter_map(|t| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                (lo < hi).then_some(lo..hi)
            })
            .collect()
    }

    /// Splits an ordered work slice into per-shard contiguous
    /// sub-slices, aligned with [`ranges`](Self::ranges).
    #[must_use]
    pub fn split<'w, T>(&self, work: &'w [T]) -> Vec<&'w [T]> {
        self.ranges(work.len())
            .into_iter()
            .map(|r| &work[r])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_clamps_to_one_thread() {
        assert_eq!(ShardPlan::new(0).threads(), 1);
        assert!(ShardPlan::new(0).is_serial());
        assert!(!ShardPlan::new(2).is_serial());
    }

    #[test]
    fn ranges_cover_exactly_once_in_order() {
        for threads in [1usize, 2, 3, 4, 8, 17] {
            for n in [0usize, 1, 2, 7, 8, 9, 100] {
                let ranges = ShardPlan::new(threads).ranges(n);
                let mut covered = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, covered, "t={threads} n={n}");
                    assert!(r.end > r.start, "t={threads} n={n}");
                    covered = r.end;
                }
                assert_eq!(covered, n, "t={threads} n={n}");
                assert!(ranges.len() <= threads.min(n.max(1)));
            }
        }
    }

    #[test]
    fn ranges_match_ceil_division_chunking() {
        // 10 items over 4 threads: ceil(10/4) = 3 → 3,3,3,1.
        let sizes: Vec<usize> = ShardPlan::new(4)
            .ranges(10)
            .iter()
            .map(std::ops::Range::len)
            .collect();
        assert_eq!(sizes, vec![3, 3, 3, 1]);
        // 8 over 8: one item each.
        assert_eq!(ShardPlan::new(8).ranges(8).len(), 8);
        // More threads than items: one shard per item.
        assert_eq!(ShardPlan::new(8).ranges(3).len(), 3);
    }

    #[test]
    fn split_aligns_with_ranges() {
        let work: Vec<u32> = (0..10).collect();
        let plan = ShardPlan::new(3);
        let shards = plan.split(&work);
        let flat: Vec<u32> = shards.iter().flat_map(|s| s.iter().copied()).collect();
        assert_eq!(flat, work);
        assert_eq!(shards.len(), plan.ranges(10).len());
    }

    #[test]
    fn serial_plan_is_one_shard() {
        let plan = ShardPlan::new(1);
        assert_eq!(plan.ranges(100), vec![0..100]);
    }
}
