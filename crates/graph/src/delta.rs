//! Incremental window deltas over edge-event streams.
//!
//! The batch path ([`GraphSequence`](crate::window::GraphSequence)) treats
//! each window as an independent rebuild. Following the stream-graph view
//! (Latapy et al.), this module treats the *event stream* as the primary
//! object and windows as sliding views over it: a [`SlidingWindower`]
//! consumes [`EdgeEvent`]s and, per window advance, emits a [`WindowDelta`]
//! — the set of aggregated edges whose weight changed (insertions, weight
//! updates and retractions) relative to the previous window.
//!
//! # Bit-identity discipline
//!
//! Deltas feed [`CommGraph::apply_delta`](crate::CommGraph::apply_delta),
//! whose output must be **bit-identical** to a cold
//! [`GraphBuilder`](crate::GraphBuilder) rebuild of the same window. Two
//! rules make that possible:
//!
//! 1. Aggregated pair weights are never decremented when events leave the
//!    window — floating-point subtraction does not round-trip. Instead a
//!    pair's surviving events are **re-summed in arrival order**, which is
//!    exactly the accumulation order of `GraphBuilder::add_event` over the
//!    window's events.
//! 2. A change whose re-summed weight is bitwise equal to the previous
//!    aggregate is elided from the delta: every downstream value derived
//!    from it is bitwise unchanged.

use std::collections::BTreeMap;

use rustc_hash::{FxHashMap, FxHashSet};

use crate::edge::{EdgeEvent, Weight};
use crate::node::NodeId;

/// One aggregated-edge change between consecutive windows.
///
/// `old == None` is an insertion, `new == None` a retraction, and both
/// `Some` a weight update. `old` carries the weight the previous window's
/// graph must hold (checked bitwise by
/// [`CommGraph::apply_delta`](crate::CommGraph::apply_delta)); `new` is the
/// re-summed aggregate over the new window's events for the pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeChange {
    /// Source of the aggregated edge.
    pub src: NodeId,
    /// Destination of the aggregated edge.
    pub dst: NodeId,
    /// Aggregated weight in the previous window, if the edge existed.
    pub old: Option<Weight>,
    /// Aggregated weight in the new window, if the edge survives.
    pub new: Option<Weight>,
}

impl EdgeChange {
    /// The `(src, dst)` pair this change refers to.
    #[inline]
    #[must_use]
    pub fn pair(&self) -> (NodeId, NodeId) {
        (self.src, self.dst)
    }

    /// Whether this change inserts a previously absent edge.
    #[inline]
    #[must_use]
    pub fn is_insertion(&self) -> bool {
        self.old.is_none() && self.new.is_some()
    }

    /// Whether this change retracts the edge entirely.
    #[inline]
    #[must_use]
    pub fn is_retraction(&self) -> bool {
        self.old.is_some() && self.new.is_none()
    }
}

/// The aggregated-edge difference between two consecutive windows,
/// produced by [`SlidingWindower::advance`].
///
/// `changes` is strictly sorted by `(src, dst)` and contains no entry
/// whose `old` and `new` weights are bitwise equal.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowDelta {
    /// Inclusive start of the window's time range.
    pub start: u64,
    /// Exclusive end of the window's time range.
    pub end: u64,
    /// Aggregated-edge changes, strictly sorted by `(src, dst)`.
    pub changes: Vec<EdgeChange>,
}

impl WindowDelta {
    /// Number of changed aggregated edges.
    #[must_use]
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// Whether the window is edge-identical to its predecessor.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Counts of (insertions, updates, retractions).
    #[must_use]
    pub fn summary(&self) -> (usize, usize, usize) {
        let mut ins = 0;
        let mut upd = 0;
        let mut ret = 0;
        for c in &self.changes {
            if c.is_insertion() {
                ins += 1;
            } else if c.is_retraction() {
                ret += 1;
            } else {
                upd += 1;
            }
        }
        (ins, upd, ret)
    }

    /// Distinct nodes appearing as an endpoint of any change.
    #[must_use]
    pub fn touched_nodes(&self) -> FxHashSet<NodeId> {
        let mut nodes = FxHashSet::default();
        for c in &self.changes {
            nodes.insert(c.src);
            nodes.insert(c.dst);
        }
        nodes
    }
}

/// One surviving event of an aggregated pair: `(arrival seq, time,
/// weight)`. Re-summation sorts by the seq to replay the cold
/// accumulation order.
type PairEvent = (u64, u64, Weight);

/// Slices a pushed [`EdgeEvent`] stream into sliding windows and emits one
/// [`WindowDelta`] per [`advance`](Self::advance).
///
/// Windows are `[start, start + width)`, advancing by `slide` per call:
/// `slide == width` is tumbling (the batch
/// [`WindowSpec`](crate::window::WindowSpec) semantics), `slide < width`
/// overlaps, and `slide > width` leaves gaps whose events are counted and
/// dropped.
///
/// Events may arrive out of order. An event older than the next
/// unemitted window's start can no longer influence any future window; it
/// is counted as late and dropped. Invalid events (self-loops,
/// non-finite or non-positive weights) are rejected with the exact gate
/// used by [`GraphBuilder::add_event`](crate::GraphBuilder::add_event), so
/// the stream the windower aggregates is the stream a cold rebuild would
/// aggregate.
#[derive(Debug, Clone)]
pub struct SlidingWindower {
    width: u64,
    slide: u64,
    next_start: u64,
    seq: u64,
    /// Buffered events not yet emitted into a window, keyed by
    /// `(time, arrival seq)`.
    pending: BTreeMap<(u64, u64), (NodeId, NodeId, Weight)>,
    /// Events inside the current window, keyed by `(time, arrival seq)`.
    active: BTreeMap<(u64, u64), (NodeId, NodeId)>,
    /// Per-pair surviving events, kept sorted by arrival seq so
    /// re-summation replays the cold accumulation order.
    pair_events: FxHashMap<(NodeId, NodeId), Vec<PairEvent>>,
    /// Current aggregated weight per pair (the window's edge weights).
    agg: FxHashMap<(NodeId, NodeId), Weight>,
    invalid_events: u64,
    late_events: u64,
    gap_events: u64,
}

impl SlidingWindower {
    /// Creates a windower whose first window is `[start, start + width)`.
    ///
    /// # Panics
    /// Panics if `width == 0` or `slide == 0`.
    #[must_use]
    pub fn new(start: u64, width: u64, slide: u64) -> Self {
        assert!(width > 0, "window width must be positive");
        assert!(slide > 0, "window slide must be positive");
        SlidingWindower {
            width,
            slide,
            next_start: start,
            seq: 0,
            pending: BTreeMap::new(),
            active: BTreeMap::new(),
            pair_events: FxHashMap::default(),
            agg: FxHashMap::default(),
            invalid_events: 0,
            late_events: 0,
            gap_events: 0,
        }
    }

    /// Tumbling windows (`slide == width`), matching the batch
    /// [`WindowSpec`](crate::window::WindowSpec) bucketing.
    #[must_use]
    pub fn tumbling(start: u64, width: u64) -> Self {
        SlidingWindower::new(start, width, width)
    }

    /// The time range of the next window [`advance`](Self::advance) will
    /// emit, or `None` if it would overflow the `u64` time axis.
    #[must_use]
    pub fn next_window(&self) -> Option<(u64, u64)> {
        let end = self.next_start.checked_add(self.width)?;
        Some((self.next_start, end))
    }

    /// Feeds one event. Returns `false` (and counts the event) if it is
    /// invalid or too late to land in any future window.
    pub fn push(&mut self, event: EdgeEvent) -> bool {
        // Exactly the `GraphBuilder::add_event` gate, so the accepted
        // stream equals the stream a cold rebuild would aggregate.
        if event.src == event.dst || !event.weight.is_finite() || event.weight <= 0.0 {
            self.invalid_events += 1;
            return false;
        }
        if event.time < self.next_start {
            self.late_events += 1;
            return false;
        }
        let key = (event.time, self.seq);
        self.seq += 1;
        self.pending
            .insert(key, (event.src, event.dst, event.weight));
        true
    }

    /// Emits the next window `[s, s + width)` and returns the aggregated
    /// delta against the previous window.
    ///
    /// # Panics
    /// Panics if the window range or the next start would overflow `u64`.
    pub fn advance(&mut self) -> WindowDelta {
        let s = self.next_start;
        let e = s
            .checked_add(self.width)
            .expect("window end overflows the u64 time axis");

        // Events that fell in the gap between the previous window's end
        // and this window's start (only possible when slide > width).
        let keep = self.pending.split_off(&(s, 0));
        let gapped = std::mem::replace(&mut self.pending, keep);
        self.gap_events += gapped.len() as u64;

        // Entering: buffered events with time in [s, e).
        let keep = self.pending.split_off(&(e, 0));
        let entering = std::mem::replace(&mut self.pending, keep);

        // Leaving: active events with time < s.
        let keep = self.active.split_off(&(s, 0));
        let leaving = std::mem::replace(&mut self.active, keep);

        let mut dirty: FxHashSet<(NodeId, NodeId)> = FxHashSet::default();
        for &(src, dst) in leaving.values() {
            dirty.insert((src, dst));
        }
        for (&(time, seq), &(src, dst, w)) in &entering {
            dirty.insert((src, dst));
            self.pair_events
                .entry((src, dst))
                .or_default()
                .push((seq, time, w));
            self.active.insert((time, seq), (src, dst));
        }

        let mut changes = Vec::with_capacity(dirty.len());
        for &(src, dst) in &dirty {
            let new = match self.pair_events.get_mut(&(src, dst)) {
                Some(events) => {
                    events.retain(|&(_, t, _)| t >= s);
                    // Entering events were appended after older survivors;
                    // restore arrival order before re-summing.
                    events.sort_unstable_by_key(|&(seq, _, _)| seq);
                    if events.is_empty() {
                        None
                    } else {
                        // Re-sum in arrival order — never subtract; this
                        // replays `GraphBuilder::add_event` bit for bit.
                        let mut sum = 0.0;
                        for &(_, _, w) in events.iter() {
                            sum += w;
                        }
                        Some(sum)
                    }
                }
                None => None,
            };
            let old = match new {
                Some(w) => self.agg.insert((src, dst), w),
                None => {
                    self.pair_events.remove(&(src, dst));
                    self.agg.remove(&(src, dst))
                }
            };
            if old.map(f64::to_bits) != new.map(f64::to_bits) {
                changes.push(EdgeChange { src, dst, old, new });
            }
        }
        changes.sort_unstable_by_key(EdgeChange::pair);

        self.next_start = s
            .checked_add(self.slide)
            .expect("next window start overflows the u64 time axis");
        WindowDelta {
            start: s,
            end: e,
            changes,
        }
    }

    /// Current aggregated weight of `(src, dst)` in the active window.
    #[must_use]
    pub fn aggregate_weight(&self, src: NodeId, dst: NodeId) -> Option<Weight> {
        self.agg.get(&(src, dst)).copied()
    }

    /// Number of distinct aggregated edges in the active window.
    #[must_use]
    pub fn active_edges(&self) -> usize {
        self.agg.len()
    }

    /// Events buffered for future windows.
    #[must_use]
    pub fn pending_events(&self) -> usize {
        self.pending.len()
    }

    /// Events rejected by the validity gate (self-loop / non-finite /
    /// non-positive weight).
    #[must_use]
    pub fn invalid_events(&self) -> u64 {
        self.invalid_events
    }

    /// Events dropped because they arrived after their window was emitted.
    #[must_use]
    pub fn late_events(&self) -> u64 {
        self.late_events
    }

    /// Events dropped because they fell between windows (`slide > width`).
    #[must_use]
    pub fn gap_events(&self) -> u64 {
        self.gap_events
    }

    /// Exports the windower's complete state as a deterministic,
    /// serialisable image: map contents are emitted in sorted key order,
    /// so two bit-identical windowers export byte-identical states
    /// regardless of hash-map iteration order.
    #[must_use]
    pub fn export_state(&self) -> WindowerState {
        let pending = self
            .pending
            .iter()
            .map(|(&(time, seq), &(src, dst, w))| (time, seq, src, dst, w))
            .collect();
        let active = self
            .active
            .iter()
            .map(|(&(time, seq), &(src, dst))| (time, seq, src, dst))
            .collect();
        let mut pair_events: Vec<((NodeId, NodeId), Vec<PairEvent>)> = self
            .pair_events
            .iter()
            .map(|(&pair, events)| (pair, events.clone()))
            .collect();
        pair_events.sort_unstable_by_key(|&(pair, _)| pair);
        let mut agg: Vec<((NodeId, NodeId), Weight)> =
            self.agg.iter().map(|(&pair, &w)| (pair, w)).collect();
        agg.sort_unstable_by_key(|&(pair, _)| pair);
        WindowerState {
            width: self.width,
            slide: self.slide,
            next_start: self.next_start,
            seq: self.seq,
            invalid_events: self.invalid_events,
            late_events: self.late_events,
            gap_events: self.gap_events,
            pending,
            active,
            pair_events,
            agg,
        }
    }

    /// Rebuilds a windower from an exported state. The result is
    /// bit-identical to the windower that produced the state: every
    /// future [`push`](Self::push)/[`advance`](Self::advance) sequence
    /// yields the same deltas.
    ///
    /// # Errors
    /// Returns a description of the first violated invariant (zero
    /// width/slide, unsorted or duplicated keys, invalid event weights)
    /// instead of panicking — restore runs on the recovery path, where
    /// corrupt input must degrade into a typed error.
    pub fn from_state(state: WindowerState) -> Result<SlidingWindower, String> {
        if state.width == 0 {
            return Err("windower state: zero window width".into());
        }
        if state.slide == 0 {
            return Err("windower state: zero window slide".into());
        }
        let valid_event =
            |src: NodeId, dst: NodeId, w: Weight| src != dst && w.is_finite() && w > 0.0;
        let mut pending = BTreeMap::new();
        let mut last: Option<(u64, u64)> = None;
        for &(time, seq, src, dst, w) in &state.pending {
            if last.is_some_and(|k| k >= (time, seq)) {
                return Err("windower state: pending keys not strictly ascending".into());
            }
            last = Some((time, seq));
            if !valid_event(src, dst, w) {
                return Err(format!(
                    "windower state: invalid pending event ({time}, {seq})"
                ));
            }
            pending.insert((time, seq), (src, dst, w));
        }
        let mut active = BTreeMap::new();
        let mut last: Option<(u64, u64)> = None;
        for &(time, seq, src, dst) in &state.active {
            if last.is_some_and(|k| k >= (time, seq)) {
                return Err("windower state: active keys not strictly ascending".into());
            }
            last = Some((time, seq));
            active.insert((time, seq), (src, dst));
        }
        let mut pair_events = FxHashMap::default();
        let mut last_pair: Option<(NodeId, NodeId)> = None;
        for (pair, events) in &state.pair_events {
            if last_pair.is_some_and(|p| p >= *pair) {
                return Err("windower state: pair_events keys not strictly ascending".into());
            }
            last_pair = Some(*pair);
            for &(_, _, w) in events {
                if !(w.is_finite() && w > 0.0) {
                    return Err(format!("windower state: invalid pair event for {pair:?}"));
                }
            }
            pair_events.insert(*pair, events.clone());
        }
        let mut agg = FxHashMap::default();
        let mut last_pair: Option<(NodeId, NodeId)> = None;
        for &(pair, w) in &state.agg {
            if last_pair.is_some_and(|p| p >= pair) {
                return Err("windower state: agg keys not strictly ascending".into());
            }
            last_pair = Some(pair);
            if !(w.is_finite() && w > 0.0) {
                return Err(format!("windower state: invalid aggregate for {pair:?}"));
            }
            agg.insert(pair, w);
        }
        Ok(SlidingWindower {
            width: state.width,
            slide: state.slide,
            next_start: state.next_start,
            seq: state.seq,
            pending,
            active,
            pair_events,
            agg,
            invalid_events: state.invalid_events,
            late_events: state.late_events,
            gap_events: state.gap_events,
        })
    }
}

/// One pair's surviving events, as `(seq, time, weight)` triples keyed
/// by the `(src, dst)` pair.
pub type PairEvents = ((NodeId, NodeId), Vec<(u64, u64, Weight)>);

/// A complete, deterministic image of a [`SlidingWindower`], produced by
/// [`SlidingWindower::export_state`] and consumed by
/// [`SlidingWindower::from_state`]. All map contents appear in sorted key
/// order, so equal windowers produce equal states (and byte-identical
/// serialisations).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowerState {
    /// Window width.
    pub width: u64,
    /// Window slide.
    pub slide: u64,
    /// Start of the next unemitted window.
    pub next_start: u64,
    /// Next arrival sequence number.
    pub seq: u64,
    /// Events rejected by the validity gate so far.
    pub invalid_events: u64,
    /// Events dropped as too late so far.
    pub late_events: u64,
    /// Events dropped in inter-window gaps so far.
    pub gap_events: u64,
    /// Buffered future events as `(time, seq, src, dst, weight)`,
    /// strictly ascending by `(time, seq)`.
    pub pending: Vec<(u64, u64, NodeId, NodeId, Weight)>,
    /// Active-window events as `(time, seq, src, dst)`, strictly
    /// ascending by `(time, seq)`.
    pub active: Vec<(u64, u64, NodeId, NodeId)>,
    /// Per-pair surviving events `(seq, time, weight)`, pairs strictly
    /// ascending.
    pub pair_events: Vec<PairEvents>,
    /// Aggregated weight per pair, pairs strictly ascending.
    pub agg: Vec<((NodeId, NodeId), Weight)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::graph::CommGraph;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn ev(time: u64, src: usize, dst: usize, w: f64) -> EdgeEvent {
        EdgeEvent {
            time,
            src: n(src),
            dst: n(dst),
            weight: w,
        }
    }

    /// Cold rebuild of the window `[s, e)` over `events` in stream order.
    fn cold(num_nodes: usize, events: &[EdgeEvent], s: u64, e: u64) -> CommGraph {
        let mut b = GraphBuilder::new();
        for event in events {
            if event.time >= s && event.time < e {
                b.add_event(event.src, event.dst, event.weight);
            }
        }
        b.build(num_nodes)
    }

    fn graphs_bit_identical(a: &CommGraph, b: &CommGraph) -> bool {
        a.num_nodes() == b.num_nodes()
            && a.num_edges() == b.num_edges()
            && a.total_weight().to_bits() == b.total_weight().to_bits()
            && a.edges().zip(b.edges()).all(|(x, y)| {
                x.src == y.src && x.dst == y.dst && x.weight.to_bits() == y.weight.to_bits()
            })
    }

    /// Replays deltas onto an empty graph and checks each window against a
    /// cold rebuild of the same range.
    fn check_stream(
        num_nodes: usize,
        events: &[EdgeEvent],
        mut w: SlidingWindower,
        windows: usize,
    ) {
        let mut g = CommGraph::from_sorted_edges(num_nodes, Vec::new());
        for _ in 0..windows {
            let delta = w.advance();
            g = g.apply_delta(&delta);
            let oracle = cold(num_nodes, events, delta.start, delta.end);
            assert!(
                graphs_bit_identical(&g, &oracle),
                "window [{}, {}) diverged from cold rebuild",
                delta.start,
                delta.end
            );
        }
    }

    #[test]
    fn tumbling_matches_cold_rebuild() {
        let events = vec![
            ev(0, 0, 1, 2.0),
            ev(1, 0, 1, 0.125),
            ev(3, 1, 2, 1.0),
            ev(11, 0, 1, 4.0),
            ev(12, 2, 0, 0.5),
            ev(25, 1, 2, 3.0),
        ];
        let mut w = SlidingWindower::tumbling(0, 10);
        for &e in &events {
            assert!(w.push(e));
        }
        check_stream(3, &events, w, 3);
    }

    #[test]
    fn overlapping_windows_resum_in_arrival_order() {
        // width 10, slide 5: events in the overlap survive into the next
        // window and their pair weights must re-sum bit-identically.
        let events = vec![
            ev(1, 0, 1, 0.1),
            ev(6, 0, 1, 0.2),
            ev(7, 1, 2, 1.5),
            ev(9, 0, 1, 0.3),
            ev(12, 0, 1, 0.7),
            ev(14, 2, 1, 2.0),
        ];
        let mut w = SlidingWindower::new(0, 10, 5);
        for &e in &events {
            w.push(e);
        }
        let mut g = CommGraph::from_sorted_edges(3, Vec::new());
        for _ in 0..3 {
            let delta = w.advance();
            g = g.apply_delta(&delta);
            let oracle = cold(3, &events, delta.start, delta.end);
            assert!(graphs_bit_identical(&g, &oracle));
        }
    }

    #[test]
    fn gapped_windows_drop_and_count() {
        // width 5, slide 10: events in [5, 10) fall in the gap.
        let events = vec![ev(1, 0, 1, 1.0), ev(7, 0, 1, 1.0), ev(12, 1, 2, 1.0)];
        let mut w = SlidingWindower::new(0, 5, 10);
        for &e in &events {
            w.push(e);
        }
        let d0 = w.advance();
        assert_eq!((d0.start, d0.end), (0, 5));
        assert_eq!(d0.len(), 1);
        let d1 = w.advance();
        assert_eq!((d1.start, d1.end), (10, 15));
        assert_eq!(w.gap_events(), 1);
        // Window 1 retracts (0,1) and inserts (1,2).
        assert_eq!(d1.len(), 2);
        assert!(d1.changes[0].is_retraction());
        assert!(d1.changes[1].is_insertion());
    }

    #[test]
    fn invalid_and_late_events_counted() {
        let mut w = SlidingWindower::tumbling(0, 10);
        assert!(!w.push(ev(1, 0, 0, 1.0))); // self-loop
        assert!(!w.push(ev(1, 0, 1, f64::NAN)));
        assert!(!w.push(ev(1, 0, 1, -2.0)));
        assert!(!w.push(ev(1, 0, 1, 0.0)));
        assert_eq!(w.invalid_events(), 4);
        let _ = w.advance();
        assert!(!w.push(ev(3, 0, 1, 1.0))); // window [0,10) already emitted
        assert_eq!(w.late_events(), 1);
        assert!(w.push(ev(10, 0, 1, 1.0)));
    }

    #[test]
    fn bit_equal_resum_is_elided() {
        // Pair (0,1) has one event per window with the same weight: the
        // re-summed aggregate is bitwise unchanged, so no change is
        // emitted even though the underlying events differ.
        let events = vec![ev(1, 0, 1, 1.5), ev(11, 0, 1, 1.5), ev(12, 1, 2, 1.0)];
        let mut w = SlidingWindower::tumbling(0, 10);
        for &e in &events {
            w.push(e);
        }
        let _ = w.advance();
        let d1 = w.advance();
        assert_eq!(d1.len(), 1, "only (1,2) changed: {:?}", d1.changes);
        assert_eq!(d1.changes[0].pair(), (n(1), n(2)));
        assert_eq!(w.aggregate_weight(n(0), n(1)), Some(1.5));
    }

    #[test]
    fn out_of_order_arrival_resums_in_arrival_order() {
        // Three same-pair events arrive out of time order; the aggregate
        // must follow arrival order (what a cold builder over the pushed
        // stream would compute), not timestamp order.
        let events = vec![ev(9, 0, 1, 0.1), ev(2, 0, 1, 0.2), ev(5, 0, 1, 0.3)];
        let mut w = SlidingWindower::tumbling(0, 10);
        for &e in &events {
            assert!(w.push(e));
        }
        let delta = w.advance();
        let expected: f64 = 0.1 + 0.2 + 0.3;
        assert_eq!(delta.len(), 1);
        assert_eq!(
            delta.changes[0].new.map(f64::to_bits),
            Some(expected.to_bits())
        );
    }

    #[test]
    fn delta_summary_counts() {
        let delta = WindowDelta {
            start: 0,
            end: 10,
            changes: vec![
                EdgeChange {
                    src: n(0),
                    dst: n(1),
                    old: None,
                    new: Some(1.0),
                },
                EdgeChange {
                    src: n(1),
                    dst: n(2),
                    old: Some(2.0),
                    new: Some(3.0),
                },
                EdgeChange {
                    src: n(2),
                    dst: n(0),
                    old: Some(1.0),
                    new: None,
                },
            ],
        };
        assert_eq!(delta.summary(), (1, 1, 1));
        assert_eq!(delta.touched_nodes().len(), 3);
        assert!(!delta.is_empty());
        assert_eq!(delta.len(), 3);
    }

    #[test]
    #[should_panic(expected = "slide must be positive")]
    fn zero_slide_rejected() {
        let _ = SlidingWindower::new(0, 10, 0);
    }

    /// A restored windower must be bit-indistinguishable from the
    /// original: identical counters, identical future deltas, and a
    /// byte-identical re-export.
    #[test]
    fn export_restore_roundtrip_bit_identical() {
        let events = vec![
            ev(1, 0, 1, 0.1),
            ev(6, 0, 1, 0.2),
            ev(7, 1, 2, 1.5),
            ev(9, 0, 1, 0.3),
            ev(12, 0, 1, 0.7),
            ev(14, 2, 1, 2.0),
            ev(22, 1, 0, 0.25),
        ];
        let mut w = SlidingWindower::new(0, 10, 5);
        for &e in &events {
            w.push(e);
        }
        let _ = w.advance();
        let _ = w.advance();
        let state = w.export_state();
        let mut restored = SlidingWindower::from_state(state.clone()).expect("valid state");
        assert_eq!(restored.export_state(), state, "re-export must round-trip");
        // Both continue identically: same pushes, same deltas.
        let more = vec![ev(16, 0, 2, 1.0), ev(21, 2, 0, 0.5)];
        for &e in &more {
            assert_eq!(w.push(e), restored.push(e));
        }
        for _ in 0..3 {
            let a = w.advance();
            let b = restored.advance();
            assert_eq!((a.start, a.end), (b.start, b.end));
            assert_eq!(a.changes.len(), b.changes.len());
            for (x, y) in a.changes.iter().zip(&b.changes) {
                assert_eq!(x.pair(), y.pair());
                assert_eq!(x.old.map(f64::to_bits), y.old.map(f64::to_bits));
                assert_eq!(x.new.map(f64::to_bits), y.new.map(f64::to_bits));
            }
        }
        assert_eq!(w.invalid_events(), restored.invalid_events());
        assert_eq!(w.late_events(), restored.late_events());
        assert_eq!(w.gap_events(), restored.gap_events());
        assert_eq!(w.pending_events(), restored.pending_events());
        assert_eq!(w.active_edges(), restored.active_edges());
    }

    /// Corrupt states must come back as typed errors, never panics.
    #[test]
    fn corrupt_state_rejected_with_error() {
        let base = SlidingWindower::tumbling(0, 10).export_state();
        let mut zero_width = base.clone();
        zero_width.width = 0;
        assert!(SlidingWindower::from_state(zero_width).is_err());
        let mut bad_agg = base.clone();
        bad_agg.agg.push(((n(0), n(1)), f64::NAN));
        assert!(SlidingWindower::from_state(bad_agg).is_err());
        let mut dup_pending = base;
        dup_pending.pending.push((5, 1, n(0), n(1), 1.0));
        dup_pending.pending.push((5, 1, n(0), n(2), 1.0));
        assert!(SlidingWindower::from_state(dup_pending).is_err());
    }
}
