//! # comsig-graph
//!
//! Communication-graph substrate for the `comsig` workspace.
//!
//! A *communication graph* `G_t = (V, E_t)` records aggregated, weighted,
//! directed communication between labelled nodes over a time window `t`
//! (Section II of Cormode, Korn, Muthukrishnan & Wu, *On Signatures for
//! Communication Graphs*, ICDE 2008). The weight `C[v, u]` of an edge
//! reflects the volume of communication from `v` to `u` — for example the
//! number of TCP sessions, calls or queries observed in the window.
//!
//! This crate provides:
//!
//! * [`NodeId`] / [`Interner`] — compact node identifiers and the mapping
//!   between external labels (IP addresses, user names, …) and internal ids.
//! * [`GraphBuilder`] — accumulates individual communication events or
//!   pre-aggregated edges into a weighted digraph.
//! * [`CommGraph`] — an immutable CSR (compressed sparse row) digraph with
//!   both out- and in-adjacency, supporting the degree/weight queries that
//!   signature schemes need (`C[i,j]`, `|I(j)|`, `|O(i)|`, row sums).
//! * [`Partition`] — optional bipartite node classes (e.g. local hosts vs
//!   external hosts, users vs tables).
//! * [`window`] — slicing a timestamped event stream into a
//!   [`GraphSequence`](window::GraphSequence) of per-window graphs over a
//!   shared node space.
//! * [`SlidingWindower`] / [`WindowDelta`] — the streaming counterpart:
//!   incremental window advances that emit aggregated-edge deltas, applied
//!   by [`CommGraph::apply_delta`] bit-identically to a cold rebuild.
//! * [`traversal`] — BFS, h-hop neighbourhoods, connected components and
//!   effective-diameter estimation.
//! * [`stats`] — degree/weight distributions and tail diagnostics used to
//!   check that synthetic workloads have the characteristics the paper
//!   relies on (Section III).
//! * [`perturb`] — the paper's robustness perturbation model: insert
//!   `α·|E|` edges (endpoints sampled by degree, weights from the empirical
//!   weight distribution) and apply `β·|E|` unit-weight decrements
//!   (Section IV-C, "Signature robustness").
//! * [`ShardPlan`] — explicit thread-count configuration that carves an
//!   ordered work list into contiguous per-thread shards, the scheduling
//!   substrate of the bit-identical sharded streaming advance.
//! * [`io`] — plain-text edge-list input/output in a flow-record-like
//!   format, with configurable fault handling ([`IngestPolicy`]:
//!   strict / quarantine / repair) and per-run [`IngestReport`]s.
//! * [`ops`] — graph transformations: reversal, symmetrisation, edge
//!   filtering, induced/incident subgraphs, window sums.
//!
//! ## Example
//!
//! ```
//! use comsig_graph::{GraphBuilder, Interner};
//!
//! let mut interner = Interner::new();
//! let a = interner.intern("10.0.0.1");
//! let b = interner.intern("search.example.com");
//! let c = interner.intern("mail.example.com");
//!
//! let mut builder = GraphBuilder::new();
//! builder.add_event(a, b, 3.0); // three sessions a -> b
//! builder.add_event(a, c, 1.0);
//! builder.add_event(a, b, 2.0); // aggregated with the first event
//!
//! let g = builder.build(interner.len());
//! assert_eq!(g.edge_weight(a, b), Some(5.0));
//! assert_eq!(g.out_degree(a), 2);
//! assert_eq!(g.in_degree(b), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod builder;
mod delta;
mod edge;
mod error;
mod fenwick;
mod graph;
mod node;
mod shard;

pub mod bipartite;
pub mod io;
pub mod ops;
pub mod perturb;
pub mod stats;
pub mod traversal;
pub mod window;

pub use builder::GraphBuilder;
pub use delta::{EdgeChange, SlidingWindower, WindowDelta, WindowerState};
pub use edge::{Edge, EdgeEvent, Weight};
pub use error::GraphError;
pub use graph::{CommGraph, NeighborIter};
pub use io::{IngestPolicy, IngestReport};
pub use node::{Interner, NodeId};
pub use shard::ShardPlan;

pub use bipartite::{NodeClass, Partition};
