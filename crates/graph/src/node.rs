//! Compact node identifiers and label interning.

use std::fmt;

use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// A compact identifier for a node in a communication graph.
///
/// Node ids are dense indices (`0..n`) into the node space managed by an
/// [`Interner`]. Using a 32-bit id halves the memory footprint of adjacency
/// arrays relative to `usize` on 64-bit platforms, which matters because a
/// six-week flow collection can contain hundreds of thousands of nodes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }

    /// Returns the dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw 32-bit value.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Bidirectional mapping between external node labels and dense [`NodeId`]s.
///
/// The paper distinguishes *individuals* (the hidden users) from *labels*
/// (what we observe: IP addresses, account names, phone numbers). The
/// interner manages the observable label space; everything downstream works
/// with dense ids.
///
/// ```
/// use comsig_graph::Interner;
///
/// let mut interner = Interner::new();
/// let a = interner.intern("10.1.2.3");
/// let b = interner.intern("10.1.2.4");
/// assert_ne!(a, b);
/// assert_eq!(interner.intern("10.1.2.3"), a); // idempotent
/// assert_eq!(interner.label(a), Some("10.1.2.3"));
/// assert_eq!(interner.len(), 2);
/// ```
#[derive(Debug, Default, Clone)]
pub struct Interner {
    labels: Vec<String>,
    index: FxHashMap<String, NodeId>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty interner with capacity for `n` labels.
    pub fn with_capacity(n: usize) -> Self {
        Interner {
            labels: Vec::with_capacity(n),
            index: FxHashMap::with_capacity_and_hasher(n, Default::default()),
        }
    }

    /// Interns `label`, returning its id. Re-interning an existing label
    /// returns the previously assigned id.
    pub fn intern(&mut self, label: &str) -> NodeId {
        if let Some(&id) = self.index.get(label) {
            return id;
        }
        let id = NodeId::new(self.labels.len());
        self.labels.push(label.to_owned());
        self.index.insert(label.to_owned(), id);
        id
    }

    /// Returns the id previously assigned to `label`, if any.
    pub fn get(&self, label: &str) -> Option<NodeId> {
        self.index.get(label).copied()
    }

    /// Returns the label of `id`, if `id` is in range.
    pub fn label(&self, id: NodeId) -> Option<&str> {
        self.labels.get(id.index()).map(String::as_str)
    }

    /// Number of interned labels (the size of the node space `|V|`).
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Iterates over `(NodeId, label)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &str)> {
        self.labels
            .iter()
            .enumerate()
            .map(|(i, s)| (NodeId::new(i), s.as_str()))
    }

    /// Pre-registers `n` anonymous nodes named `prefix0..prefix(n-1)`,
    /// returning the id of the first. Useful for synthetic generators that
    /// address nodes by index rather than by meaningful label.
    pub fn intern_range(&mut self, prefix: &str, n: usize) -> NodeId {
        let first = NodeId::new(self.labels.len());
        for i in 0..n {
            self.intern(&format!("{prefix}{i}"));
        }
        first
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.raw(), 42);
        assert_eq!(NodeId::from(42u32), id);
        assert_eq!(format!("{id:?}"), "n42");
        assert_eq!(format!("{id}"), "42");
    }

    #[test]
    fn intern_is_idempotent() {
        let mut it = Interner::new();
        let a = it.intern("x");
        let b = it.intern("y");
        assert_eq!(it.intern("x"), a);
        assert_eq!(it.intern("y"), b);
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn label_lookup() {
        let mut it = Interner::with_capacity(4);
        let a = it.intern("alpha");
        assert_eq!(it.label(a), Some("alpha"));
        assert_eq!(it.get("alpha"), Some(a));
        assert_eq!(it.get("missing"), None);
        assert_eq!(it.label(NodeId::new(99)), None);
    }

    #[test]
    fn iter_in_id_order() {
        let mut it = Interner::new();
        it.intern("a");
        it.intern("b");
        it.intern("c");
        let collected: Vec<_> = it.iter().map(|(id, s)| (id.index(), s)).collect();
        assert_eq!(collected, vec![(0, "a"), (1, "b"), (2, "c")]);
    }

    #[test]
    fn intern_range_assigns_dense_block() {
        let mut it = Interner::new();
        it.intern("seed");
        let first = it.intern_range("host", 3);
        assert_eq!(first.index(), 1);
        assert_eq!(it.label(NodeId::new(2)), Some("host1"));
        assert_eq!(it.len(), 4);
    }

    #[test]
    fn empty_interner() {
        let it = Interner::new();
        assert!(it.is_empty());
        assert_eq!(it.len(), 0);
    }
}
