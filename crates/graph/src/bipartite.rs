//! Bipartite node partitions.
//!
//! Many communication graphs are naturally bipartite (Section II-B of the
//! paper): clients × servers, users × tables, customers × movies. A
//! [`Partition`] assigns each node to a class; signature schemes restrict
//! the signature of a [`NodeClass::Left`] node to [`NodeClass::Right`]
//! members when asked to.

use serde::{Deserialize, Serialize};

use crate::graph::CommGraph;
use crate::node::NodeId;
use crate::GraphError;

/// Which side of a bipartite graph a node belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeClass {
    /// The "source" class `V_1` (e.g. monitored local hosts, users).
    Left,
    /// The "destination" class `V_2` (e.g. external hosts, tables).
    Right,
}

/// Assignment of every node to a bipartite class.
///
/// ```
/// use comsig_graph::{NodeClass, Partition, NodeId};
///
/// // First 2 nodes are local hosts, remaining 3 are external.
/// let p = Partition::split_at(5, 2);
/// assert_eq!(p.class(NodeId::new(1)), NodeClass::Left);
/// assert_eq!(p.class(NodeId::new(2)), NodeClass::Right);
/// assert_eq!(p.left_count(), 2);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Partition {
    classes: Vec<NodeClass>,
    left_count: usize,
}

impl Partition {
    /// Builds a partition from an explicit class vector.
    pub fn new(classes: Vec<NodeClass>) -> Self {
        let left_count = classes.iter().filter(|&&c| c == NodeClass::Left).count();
        Partition {
            classes,
            left_count,
        }
    }

    /// Builds the common layout where node ids `0..boundary` are
    /// [`NodeClass::Left`] and `boundary..n` are [`NodeClass::Right`].
    ///
    /// # Panics
    /// Panics if `boundary > n`.
    pub fn split_at(n: usize, boundary: usize) -> Self {
        assert!(boundary <= n, "boundary {boundary} exceeds node count {n}");
        let mut classes = vec![NodeClass::Right; n];
        classes[..boundary].fill(NodeClass::Left);
        Partition {
            classes,
            left_count: boundary,
        }
    }

    /// The class of `v`.
    ///
    /// # Panics
    /// Panics if `v` is outside the partition's node space.
    #[inline]
    pub fn class(&self, v: NodeId) -> NodeClass {
        self.classes[v.index()]
    }

    /// Whether `v` is in the left class.
    #[inline]
    pub fn is_left(&self, v: NodeId) -> bool {
        self.class(v) == NodeClass::Left
    }

    /// Number of nodes in this partition's node space.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the partition covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Number of left-class nodes `|V_1|`.
    pub fn left_count(&self) -> usize {
        self.left_count
    }

    /// Number of right-class nodes `|V_2|`.
    pub fn right_count(&self) -> usize {
        self.classes.len() - self.left_count
    }

    /// Iterates over left-class node ids.
    pub fn left_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.classes
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == NodeClass::Left)
            .map(|(i, _)| NodeId::new(i))
    }

    /// Iterates over right-class node ids.
    pub fn right_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.classes
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == NodeClass::Right)
            .map(|(i, _)| NodeId::new(i))
    }

    /// Verifies that every edge of `g` crosses the partition from left to
    /// right (the bipartite constraint `E_t ⊆ V_1 × V_2`).
    pub fn validate(&self, g: &CommGraph) -> Result<(), GraphError> {
        for e in g.edges() {
            if !self.is_left(e.src) || self.is_left(e.dst) {
                return Err(GraphError::BipartiteViolation {
                    src: e.src.index(),
                    dst: e.dst.index(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn split_at_layout() {
        let p = Partition::split_at(4, 2);
        assert!(p.is_left(n(0)) && p.is_left(n(1)));
        assert!(!p.is_left(n(2)) && !p.is_left(n(3)));
        assert_eq!(p.left_count(), 2);
        assert_eq!(p.right_count(), 2);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
    }

    #[test]
    fn explicit_classes() {
        let p = Partition::new(vec![NodeClass::Right, NodeClass::Left, NodeClass::Left]);
        assert_eq!(p.left_count(), 2);
        let lefts: Vec<_> = p.left_nodes().collect();
        assert_eq!(lefts, vec![n(1), n(2)]);
        let rights: Vec<_> = p.right_nodes().collect();
        assert_eq!(rights, vec![n(0)]);
    }

    #[test]
    fn validate_accepts_bipartite() {
        let mut b = GraphBuilder::new();
        b.add_event(n(0), n(2), 1.0);
        b.add_event(n(1), n(3), 1.0);
        let g = b.build(4);
        let p = Partition::split_at(4, 2);
        assert!(p.validate(&g).is_ok());
    }

    #[test]
    fn validate_rejects_within_class_edge() {
        let mut b = GraphBuilder::new();
        b.add_event(n(0), n(1), 1.0); // left -> left
        let g = b.build(4);
        let p = Partition::split_at(4, 2);
        assert!(p.validate(&g).is_err());
    }

    #[test]
    fn validate_rejects_reversed_edge() {
        let mut b = GraphBuilder::new();
        b.add_event(n(3), n(0), 1.0); // right -> left
        let g = b.build(4);
        let p = Partition::split_at(4, 2);
        assert!(p.validate(&g).is_err());
    }

    #[test]
    #[should_panic(expected = "boundary")]
    fn split_at_rejects_bad_boundary() {
        let _ = Partition::split_at(2, 3);
    }
}
