//! Descriptive statistics of communication graphs.
//!
//! Section III of the paper ties signature properties to four graph
//! characteristics: engagement (edge weights), novelty (skewed in-degree),
//! locality (sparsity / hop structure) and transitivity (path diversity).
//! These diagnostics measure the first three directly, and are used by the
//! data generators' tests to confirm synthetic workloads exhibit the
//! power-law-like shape the paper's datasets had.

use serde::{Deserialize, Serialize};

use crate::graph::CommGraph;
use crate::node::NodeId;

/// Summary statistics of one communication graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GraphStats {
    /// `|V|` including isolated nodes.
    pub num_nodes: usize,
    /// Number of nodes with at least one incident edge.
    pub active_nodes: usize,
    /// `|E_t|`.
    pub num_edges: usize,
    /// Total edge weight.
    pub total_weight: f64,
    /// Mean out-degree over nodes with out-degree > 0.
    pub mean_out_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Mean in-degree over nodes with in-degree > 0.
    pub mean_in_degree: f64,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Mean edge weight.
    pub mean_weight: f64,
    /// Maximum edge weight.
    pub max_weight: f64,
    /// Gini coefficient of the in-degree distribution (0 = uniform,
    /// → 1 = extremely skewed); a cheap proxy for "power-law-likeness".
    pub in_degree_gini: f64,
}

/// Computes [`GraphStats`] for `g`.
pub fn graph_stats(g: &CommGraph) -> GraphStats {
    let mut out_degrees = Vec::new();
    let mut in_degrees = Vec::new();
    let mut active = 0usize;
    for v in g.nodes() {
        let od = g.out_degree(v);
        let id = g.in_degree(v);
        if od > 0 {
            out_degrees.push(od);
        }
        if id > 0 {
            in_degrees.push(id);
        }
        if od > 0 || id > 0 {
            active += 1;
        }
    }
    let mut mean_weight = 0.0;
    let mut max_weight: f64 = 0.0;
    if g.num_edges() > 0 {
        mean_weight = g.total_weight() / g.num_edges() as f64;
        for e in g.edges() {
            max_weight = max_weight.max(e.weight);
        }
    }
    GraphStats {
        num_nodes: g.num_nodes(),
        active_nodes: active,
        num_edges: g.num_edges(),
        total_weight: g.total_weight(),
        mean_out_degree: mean_usize(&out_degrees),
        max_out_degree: out_degrees.iter().copied().max().unwrap_or(0),
        mean_in_degree: mean_usize(&in_degrees),
        max_in_degree: in_degrees.iter().copied().max().unwrap_or(0),
        mean_weight,
        max_weight,
        in_degree_gini: gini(&in_degrees),
    }
}

fn mean_usize(xs: &[usize]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<usize>() as f64 / xs.len() as f64
    }
}

/// Gini coefficient of a non-negative sample. Returns 0 for empty or
/// all-zero samples.
pub fn gini(xs: &[usize]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.iter().map(|&x| x as f64).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("degrees are finite"));
    let n = sorted.len() as f64;
    let sum: f64 = sorted.iter().sum();
    // Degrees are non-negative, so a non-positive sum means "no mass";
    // <= also dodges an exact-zero float comparison.
    if sum <= 0.0 {
        return 0.0;
    }
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted) / (n * sum) - (n + 1.0) / n
}

/// Histogram of a degree distribution: `hist[d]` = number of nodes with
/// degree exactly `d` (0 excluded).
pub fn degree_histogram(degrees: impl Iterator<Item = usize>) -> Vec<(usize, usize)> {
    let mut counts: rustc_hash::FxHashMap<usize, usize> = Default::default();
    for d in degrees {
        if d > 0 {
            *counts.entry(d).or_insert(0) += 1;
        }
    }
    let mut hist: Vec<(usize, usize)> = counts.into_iter().collect();
    hist.sort_unstable();
    hist
}

/// In-degree histogram of `g`.
pub fn in_degree_histogram(g: &CommGraph) -> Vec<(usize, usize)> {
    degree_histogram(g.nodes().map(|v| g.in_degree(v)))
}

/// Out-degree histogram of `g`.
pub fn out_degree_histogram(g: &CommGraph) -> Vec<(usize, usize)> {
    degree_histogram(g.nodes().map(|v| g.out_degree(v)))
}

/// Least-squares slope of `log(count)` vs `log(degree)` over a degree
/// histogram — a crude power-law exponent estimate. For a distribution
/// `count ∝ degree^(-γ)` the returned value approximates `-γ`. Returns
/// `None` when fewer than 3 distinct degrees exist.
pub fn log_log_slope(hist: &[(usize, usize)]) -> Option<f64> {
    if hist.len() < 3 {
        return None;
    }
    let pts: Vec<(f64, f64)> = hist
        .iter()
        .map(|&(d, c)| ((d as f64).ln(), (c as f64).ln()))
        .collect();
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    Some((n * sxy - sx * sy) / denom)
}

/// The `k` nodes with the largest in-degree — candidate "universally
/// popular" destinations (search engines, mail servers) that UT
/// downweights.
pub fn top_in_degree_nodes(g: &CommGraph, k: usize) -> Vec<(NodeId, usize)> {
    let mut nodes: Vec<(NodeId, usize)> = g
        .nodes()
        .map(|v| (v, g.in_degree(v)))
        .filter(|&(_, d)| d > 0)
        .collect();
    nodes.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    nodes.truncate(k);
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn star_plus_edge() -> CommGraph {
        // 0,1,2 all point at 3; 0 also points at 4.
        let mut b = GraphBuilder::new();
        b.add_event(n(0), n(3), 2.0);
        b.add_event(n(1), n(3), 1.0);
        b.add_event(n(2), n(3), 1.0);
        b.add_event(n(0), n(4), 4.0);
        b.build(6)
    }

    #[test]
    fn stats_basic() {
        let s = graph_stats(&star_plus_edge());
        assert_eq!(s.num_nodes, 6);
        assert_eq!(s.active_nodes, 5);
        assert_eq!(s.num_edges, 4);
        assert_eq!(s.total_weight, 8.0);
        assert_eq!(s.max_in_degree, 3);
        assert_eq!(s.max_out_degree, 2);
        assert_eq!(s.mean_weight, 2.0);
        assert_eq!(s.max_weight, 4.0);
        assert!(s.in_degree_gini > 0.0);
    }

    #[test]
    fn stats_empty_graph() {
        let s = graph_stats(&GraphBuilder::new().build(3));
        assert_eq!(s.active_nodes, 0);
        assert_eq!(s.mean_out_degree, 0.0);
        assert_eq!(s.in_degree_gini, 0.0);
    }

    #[test]
    fn gini_uniform_is_zero() {
        assert!(gini(&[5, 5, 5, 5]).abs() < 1e-12);
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0]), 0.0);
    }

    #[test]
    fn gini_skewed_is_positive() {
        let skewed = gini(&[1, 1, 1, 100]);
        let flat = gini(&[25, 26, 25, 27]);
        assert!(skewed > flat);
        assert!(skewed <= 1.0);
    }

    #[test]
    fn histograms() {
        let g = star_plus_edge();
        assert_eq!(in_degree_histogram(&g), vec![(1, 1), (3, 1)]);
        assert_eq!(out_degree_histogram(&g), vec![(1, 2), (2, 1)]);
    }

    #[test]
    fn log_log_slope_of_power_law() {
        // count = 1000 * d^-2
        let hist: Vec<(usize, usize)> = (1..=10)
            .map(|d| (d, (1000.0 / (d as f64).powi(2)).round() as usize))
            .collect();
        let slope = log_log_slope(&hist).unwrap();
        assert!((slope + 2.0).abs() < 0.05, "slope = {slope}");
    }

    #[test]
    fn log_log_slope_degenerate() {
        assert_eq!(log_log_slope(&[(1, 5)]), None);
        assert_eq!(log_log_slope(&[(1, 5), (2, 3)]), None);
    }

    #[test]
    fn top_in_degree() {
        let g = star_plus_edge();
        let top = top_in_degree_nodes(&g, 2);
        assert_eq!(top[0], (n(3), 3));
        assert_eq!(top[1], (n(4), 1));
    }
}
