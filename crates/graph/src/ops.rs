//! Graph transformations: reversal, filtering, induced subgraphs, sums.
//!
//! Utilities a downstream user needs when slicing communication graphs —
//! e.g. restricting a six-week collection to one department's hosts, or
//! symmetrising a one-directional flow capture.

use rustc_hash::FxHashSet;

use crate::builder::GraphBuilder;
use crate::graph::CommGraph;
use crate::node::NodeId;

/// The transpose graph: every edge `(v, u, w)` becomes `(u, v, w)`.
pub fn reverse(g: &CommGraph) -> CommGraph {
    let mut builder = GraphBuilder::with_edge_capacity(g.num_edges());
    for e in g.edges() {
        builder.add_event(e.dst, e.src, e.weight);
    }
    builder.build(g.num_nodes())
}

/// The symmetrised graph: `C'[v,u] = C'[u,v] = C[v,u] + C[u,v]` — what
/// an undirected random walk effectively traverses.
pub fn symmetrize(g: &CommGraph) -> CommGraph {
    let mut builder = GraphBuilder::with_edge_capacity(2 * g.num_edges());
    for e in g.edges() {
        builder.add_event(e.src, e.dst, e.weight);
        builder.add_event(e.dst, e.src, e.weight);
    }
    builder.build(g.num_nodes())
}

/// Keeps only edges accepted by `keep`; node space unchanged.
pub fn filter_edges(g: &CommGraph, mut keep: impl FnMut(NodeId, NodeId, f64) -> bool) -> CommGraph {
    let mut builder = GraphBuilder::new();
    for e in g.edges() {
        if keep(e.src, e.dst, e.weight) {
            builder.add_event(e.src, e.dst, e.weight);
        }
    }
    builder.build(g.num_nodes())
}

/// Keeps only edges with weight `>= min_weight` — pruning the noise floor
/// before signature computation on very large captures.
pub fn prune_light_edges(g: &CommGraph, min_weight: f64) -> CommGraph {
    filter_edges(g, |_, _, w| w >= min_weight)
}

/// The subgraph induced by `nodes`: only edges whose both endpoints are
/// in the set survive. The node space keeps its original size, so node
/// ids remain valid across the original and the subgraph.
pub fn induced_subgraph(g: &CommGraph, nodes: &[NodeId]) -> CommGraph {
    let set: FxHashSet<NodeId> = nodes.iter().copied().collect();
    filter_edges(g, |src, dst, _| set.contains(&src) && set.contains(&dst))
}

/// Keeps every edge incident to `nodes` (either endpoint) — the
/// "neighbourhood capture" of a set of monitored hosts.
pub fn incident_subgraph(g: &CommGraph, nodes: &[NodeId]) -> CommGraph {
    let set: FxHashSet<NodeId> = nodes.iter().copied().collect();
    filter_edges(g, |src, dst, _| set.contains(&src) || set.contains(&dst))
}

/// The edge-wise sum of two graphs over the same node space
/// (`C'[v,u] = C_a[v,u] + C_b[v,u]`) — plain window aggregation.
///
/// # Panics
/// Panics if the node spaces differ.
pub fn sum(a: &CommGraph, b: &CommGraph) -> CommGraph {
    assert_eq!(
        a.num_nodes(),
        b.num_nodes(),
        "graphs must share one node space"
    );
    let mut builder = GraphBuilder::with_edge_capacity(a.num_edges() + b.num_edges());
    for e in a.edges().chain(b.edges()) {
        builder.add_event(e.src, e.dst, e.weight);
    }
    builder.build(a.num_nodes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn sample() -> CommGraph {
        let mut b = GraphBuilder::new();
        b.add_event(n(0), n(1), 2.0);
        b.add_event(n(0), n(2), 5.0);
        b.add_event(n(1), n(2), 1.0);
        b.add_event(n(2), n(0), 3.0);
        b.build(4)
    }

    #[test]
    fn reverse_transposes() {
        let g = sample();
        let r = reverse(&g);
        assert_eq!(r.edge_weight(n(1), n(0)), Some(2.0));
        assert_eq!(r.edge_weight(n(0), n(2)), Some(3.0));
        assert_eq!(r.num_edges(), g.num_edges());
        assert_eq!(r.total_weight(), g.total_weight());
        // Double reversal is the identity.
        let rr = reverse(&r);
        for e in g.edges() {
            assert_eq!(rr.edge_weight(e.src, e.dst), Some(e.weight));
        }
    }

    #[test]
    fn symmetrize_adds_both_directions() {
        let g = sample();
        let s = symmetrize(&g);
        // 0<->2 had both directions: merged weights.
        assert_eq!(s.edge_weight(n(0), n(2)), Some(8.0));
        assert_eq!(s.edge_weight(n(2), n(0)), Some(8.0));
        // 0->1 had one direction: mirrored.
        assert_eq!(s.edge_weight(n(1), n(0)), Some(2.0));
        assert_eq!(s.total_weight(), 2.0 * g.total_weight());
    }

    #[test]
    fn prune_light() {
        let g = sample();
        let p = prune_light_edges(&g, 2.0);
        assert_eq!(p.num_edges(), 3);
        assert!(!p.has_edge(n(1), n(2)));
        assert!(p.has_edge(n(0), n(2)));
    }

    #[test]
    fn induced_vs_incident() {
        let g = sample();
        let induced = induced_subgraph(&g, &[n(0), n(1)]);
        assert_eq!(induced.num_edges(), 1); // only 0->1 survives
        assert!(induced.has_edge(n(0), n(1)));

        let incident = incident_subgraph(&g, &[n(1)]);
        assert_eq!(incident.num_edges(), 2); // 0->1 and 1->2
        assert!(incident.has_edge(n(1), n(2)));
        // Node space preserved in both.
        assert_eq!(induced.num_nodes(), 4);
        assert_eq!(incident.num_nodes(), 4);
    }

    #[test]
    fn sum_aggregates() {
        let g = sample();
        let total = sum(&g, &g);
        assert_eq!(total.edge_weight(n(0), n(1)), Some(4.0));
        assert_eq!(total.num_edges(), g.num_edges());
        assert_eq!(total.total_weight(), 2.0 * g.total_weight());
    }

    #[test]
    #[should_panic(expected = "node space")]
    fn sum_rejects_mismatched_spaces() {
        let g = sample();
        let other = GraphBuilder::new().build(2);
        let _ = sum(&g, &other);
    }
}
