//! Fenwick-tree weighted sampler.
//!
//! The robustness perturbation model (Section IV-C) repeatedly samples an
//! existing edge *proportional to its current weight* and decrements it.
//! A Fenwick (binary indexed) tree over edge weights supports both the
//! weighted sample and the point update in `O(log m)`, keeping a
//! `β·|E|`-step deletion pass near-linear.

/// A dynamic distribution over items `0..n` supporting weighted sampling
/// and weight updates in logarithmic time.
///
/// ```
/// use comsig_graph::perturb::WeightedSampler;
///
/// let mut s = WeightedSampler::new(&[1.0, 0.0, 3.0]);
/// assert_eq!(s.total(), 4.0);
/// assert_eq!(s.sample_at(0.5), Some(0));  // mass in [0,1) -> item 0
/// assert_eq!(s.sample_at(2.0), Some(2));  // mass in [1,4) -> item 2
/// s.add(2, -3.0);
/// assert_eq!(s.sample_at(0.5), Some(0));
/// assert_eq!(s.total(), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct WeightedSampler {
    tree: Vec<f64>,
    weights: Vec<f64>,
}

impl WeightedSampler {
    /// Builds a sampler over the given non-negative weights.
    ///
    /// # Panics
    /// Panics if any weight is negative or non-finite.
    pub fn new(weights: &[f64]) -> Self {
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "weights must be >= 0, got {w}");
        }
        let n = weights.len();
        let mut tree = vec![0.0; n + 1];
        // O(n) Fenwick construction.
        for i in 0..n {
            tree[i + 1] += weights[i];
            let parent = (i + 1) + ((i + 1) & (i + 1).wrapping_neg());
            if parent <= n {
                let v = tree[i + 1];
                tree[parent] += v;
            }
        }
        WeightedSampler {
            tree,
            weights: weights.to_vec(),
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the sampler has no items.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Current weight of item `i`.
    pub fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// Total mass currently in the distribution.
    pub fn total(&self) -> f64 {
        let mut sum = 0.0;
        let mut i = self.weights.len();
        while i > 0 {
            sum += self.tree[i];
            i &= i - 1;
        }
        sum
    }

    /// Adds `delta` to the weight of item `i`, clamping at zero (tiny
    /// negative residue from floating-point cancellation is treated as 0).
    pub fn add(&mut self, i: usize, delta: f64) {
        let new = (self.weights[i] + delta).max(0.0);
        let applied = new - self.weights[i];
        self.weights[i] = new;
        let mut k = i + 1;
        while k <= self.weights.len() {
            self.tree[k] += applied;
            k += k & k.wrapping_neg();
        }
    }

    /// Returns the item whose cumulative-weight interval contains `mass`
    /// (`0 <= mass < total()`), or `None` if the distribution is empty /
    /// `mass` exceeds the total.
    ///
    /// Deterministic given `mass`; callers draw `mass` uniformly from
    /// `[0, total())` to sample proportionally to weight.
    pub fn sample_at(&self, mass: f64) -> Option<usize> {
        if self.weights.is_empty() || mass < 0.0 || mass >= self.total() {
            return None;
        }
        let mut idx = 0usize;
        let mut remaining = mass;
        let mut bit = self.weights.len().next_power_of_two();
        while bit > 0 {
            let next = idx + bit;
            if next <= self.weights.len() && self.tree[next] <= remaining {
                remaining -= self.tree[next];
                idx = next;
            }
            bit >>= 1;
        }
        // idx is the count of items whose cumulative weight is <= mass.
        if idx < self.weights.len() {
            Some(idx)
        } else {
            None
        }
    }

    /// Samples an item proportionally to weight using `rng`, or `None` if
    /// all mass is gone.
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> Option<usize> {
        let total = self.total();
        if total <= 0.0 {
            return None;
        }
        // Retry on the (measure-zero, float-rounding) failure cases.
        for _ in 0..8 {
            let mass = rng.random_range(0.0..total);
            if let Some(i) = self.sample_at(mass) {
                if self.weights[i] > 0.0 {
                    return Some(i);
                }
            }
        }
        // Fall back to a linear scan — unreachable in practice.
        self.weights.iter().position(|&w| w > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_and_total() {
        let s = WeightedSampler::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.len(), 4);
        assert!((s.total() - 10.0).abs() < 1e-12);
        assert_eq!(s.weight(2), 3.0);
    }

    #[test]
    fn sample_at_boundaries() {
        let s = WeightedSampler::new(&[1.0, 2.0, 3.0]);
        assert_eq!(s.sample_at(0.0), Some(0));
        assert_eq!(s.sample_at(0.999), Some(0));
        assert_eq!(s.sample_at(1.0), Some(1));
        assert_eq!(s.sample_at(2.999), Some(1));
        assert_eq!(s.sample_at(3.0), Some(2));
        assert_eq!(s.sample_at(5.999), Some(2));
        assert_eq!(s.sample_at(6.0), None);
        assert_eq!(s.sample_at(-0.1), None);
    }

    #[test]
    fn zero_weight_items_skipped() {
        let s = WeightedSampler::new(&[0.0, 5.0, 0.0]);
        assert_eq!(s.sample_at(0.0), Some(1));
        assert_eq!(s.sample_at(4.9), Some(1));
    }

    #[test]
    fn updates_shift_mass() {
        let mut s = WeightedSampler::new(&[2.0, 2.0]);
        s.add(0, -2.0);
        assert_eq!(s.sample_at(0.5), Some(1));
        assert!((s.total() - 2.0).abs() < 1e-12);
        s.add(0, 1.0);
        assert_eq!(s.sample_at(0.5), Some(0));
    }

    #[test]
    fn add_clamps_at_zero() {
        let mut s = WeightedSampler::new(&[1.0]);
        s.add(0, -5.0);
        assert_eq!(s.weight(0), 0.0);
        assert!(s.total().abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(s.sample(&mut rng), None);
    }

    #[test]
    fn empty_sampler() {
        let s = WeightedSampler::new(&[]);
        assert!(s.is_empty());
        assert_eq!(s.sample_at(0.0), None);
        assert_eq!(s.total(), 0.0);
    }

    #[test]
    fn sampling_respects_proportions() {
        let s = WeightedSampler::new(&[1.0, 3.0]);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 2];
        for _ in 0..4000 {
            counts[s.sample(&mut rng).unwrap()] += 1;
        }
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((2.0..4.2).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    #[should_panic(expected = "weights must be")]
    fn negative_weight_rejected() {
        let _ = WeightedSampler::new(&[1.0, -1.0]);
    }
}
