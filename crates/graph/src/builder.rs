//! Accumulating communication events into an aggregated weighted digraph.

use rustc_hash::FxHashMap;

use crate::edge::{Edge, Weight};
use crate::graph::CommGraph;
use crate::node::NodeId;

/// Builds a [`CommGraph`] by aggregating communication events.
///
/// Events between the same ordered pair are summed, matching the paper's
/// model where `C[v, u]` is the total volume (e.g. number of TCP sessions)
/// observed in the window.
///
/// The builder is deliberately tolerant: it accepts events in any order and
/// any multiplicity, and only materialises the CSR representation once, at
/// [`build`](GraphBuilder::build) time.
///
/// ```
/// use comsig_graph::{GraphBuilder, NodeId};
///
/// let mut b = GraphBuilder::new();
/// b.add_event(NodeId::new(0), NodeId::new(1), 1.0);
/// b.add_event(NodeId::new(0), NodeId::new(1), 2.0);
/// b.add_event(NodeId::new(1), NodeId::new(0), 4.0);
/// let g = b.build(2);
/// assert_eq!(g.edge_weight(NodeId::new(0), NodeId::new(1)), Some(3.0));
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    weights: FxHashMap<(NodeId, NodeId), Weight>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder sized for roughly `n` distinct edges.
    pub fn with_edge_capacity(n: usize) -> Self {
        GraphBuilder {
            weights: FxHashMap::with_capacity_and_hasher(n, Default::default()),
        }
    }

    /// Records a communication event from `src` to `dst` carrying `weight`
    /// units of volume. Events aggregate additively; self-loops are ignored
    /// (a node does not communicate with itself in the paper's model, and
    /// Definition 1 excludes `u = v` from signatures).
    ///
    /// Non-finite or negative weights are ignored rather than poisoning the
    /// aggregate; use [`try_add_event`](GraphBuilder::try_add_event) to
    /// surface them as errors.
    pub fn add_event(&mut self, src: NodeId, dst: NodeId, weight: Weight) {
        if src == dst || !weight.is_finite() || weight <= 0.0 {
            return;
        }
        *self.weights.entry((src, dst)).or_insert(0.0) += weight;
    }

    /// Like [`add_event`](GraphBuilder::add_event) but reports invalid
    /// weights instead of skipping them. Self-loops are still skipped
    /// silently (they are well-formed input, just irrelevant).
    pub fn try_add_event(
        &mut self,
        src: NodeId,
        dst: NodeId,
        weight: Weight,
    ) -> Result<(), crate::GraphError> {
        if !weight.is_finite() || weight < 0.0 {
            return Err(crate::GraphError::InvalidWeight { weight });
        }
        self.add_event(src, dst, weight);
        Ok(())
    }

    /// Adds every edge of an iterator.
    pub fn extend_edges<I: IntoIterator<Item = Edge>>(&mut self, edges: I) {
        for e in edges {
            self.add_event(e.src, e.dst, e.weight);
        }
    }

    /// Number of distinct directed edges accumulated so far.
    pub fn num_edges(&self) -> usize {
        self.weights.len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Largest node index referenced so far, if any edge exists.
    pub fn max_node_index(&self) -> Option<usize> {
        self.weights
            .keys()
            .map(|&(s, d)| s.index().max(d.index()))
            .max()
    }

    /// Consumes the builder and produces an immutable [`CommGraph`] over a
    /// node space of size `num_nodes`.
    ///
    /// # Panics
    /// Panics if any accumulated edge references a node `>= num_nodes`;
    /// this is a programming error (the caller controls both the interner
    /// and the events).
    pub fn build(self, num_nodes: usize) -> CommGraph {
        let mut edges: Vec<Edge> = self
            .weights
            .into_iter()
            .map(|((src, dst), weight)| Edge { src, dst, weight })
            .collect();
        // Deterministic order regardless of hash-map iteration order.
        edges.sort_unstable_by_key(|e| (e.src, e.dst));
        CommGraph::from_sorted_edges(num_nodes, edges)
    }

    /// Consumes the builder and produces a graph sized to the largest node
    /// index observed (`max + 1`), or an empty graph if no edges exist.
    pub fn build_auto(self) -> CommGraph {
        let n = self.max_node_index().map_or(0, |m| m + 1);
        self.build(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn aggregates_parallel_events() {
        let mut b = GraphBuilder::new();
        b.add_event(n(0), n(1), 1.0);
        b.add_event(n(0), n(1), 2.5);
        let g = b.build(2);
        assert_eq!(g.edge_weight(n(0), n(1)), Some(3.5));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn ignores_self_loops_and_bad_weights() {
        let mut b = GraphBuilder::new();
        b.add_event(n(0), n(0), 5.0);
        b.add_event(n(0), n(1), f64::NAN);
        b.add_event(n(0), n(1), -3.0);
        b.add_event(n(0), n(1), 0.0);
        assert!(b.is_empty());
    }

    #[test]
    fn try_add_event_reports_invalid() {
        let mut b = GraphBuilder::new();
        assert!(b.try_add_event(n(0), n(1), f64::INFINITY).is_err());
        assert!(b.try_add_event(n(0), n(1), -1.0).is_err());
        assert!(b.try_add_event(n(0), n(1), 2.0).is_ok());
        assert_eq!(b.num_edges(), 1);
    }

    #[test]
    fn extend_edges_and_auto_build() {
        let mut b = GraphBuilder::new();
        b.extend_edges(vec![Edge::new(n(3), n(1), 1.0), Edge::new(n(1), n(2), 2.0)]);
        assert_eq!(b.max_node_index(), Some(3));
        let g = b.build_auto();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn empty_build() {
        let g = GraphBuilder::new().build(0);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        let g = GraphBuilder::new().build_auto();
        assert_eq!(g.num_nodes(), 0);
    }

    #[test]
    #[should_panic(expected = "node index")]
    fn build_panics_on_out_of_range() {
        let mut b = GraphBuilder::new();
        b.add_event(n(0), n(5), 1.0);
        let _ = b.build(2);
    }
}
