//! Error type for graph construction and I/O.

use std::fmt;
use std::io;

/// Errors produced by the graph substrate.
#[derive(Debug)]
pub enum GraphError {
    /// A node id referenced a node outside the declared node space.
    NodeOutOfRange {
        /// The offending node index.
        index: usize,
        /// The declared number of nodes.
        num_nodes: usize,
    },
    /// An edge weight was non-finite or negative.
    InvalidWeight {
        /// The offending weight value.
        weight: f64,
    },
    /// A line of an edge-list file could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation of what failed.
        message: String,
    },
    /// Underlying I/O failure.
    Io(io::Error),
    /// A quarantining ingest exceeded its bad-record budget
    /// (`IngestPolicy::Quarantine { max_bad_fraction }`).
    TooManyBadRecords {
        /// Number of records quarantined.
        quarantined: usize,
        /// Number of records attempted (non-blank, non-comment lines).
        records: usize,
        /// The configured budget, as a fraction of `records`.
        max_bad_fraction: f64,
    },
    /// A bipartite constraint was violated (edge within one node class).
    BipartiteViolation {
        /// Source node index.
        src: usize,
        /// Destination node index.
        dst: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { index, num_nodes } => {
                write!(f, "node index {index} out of range (|V| = {num_nodes})")
            }
            GraphError::InvalidWeight { weight } => {
                write!(f, "edge weight {weight} is not finite and non-negative")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::TooManyBadRecords {
                quarantined,
                records,
                max_bad_fraction,
            } => {
                write!(
                    f,
                    "quarantined {quarantined} of {records} records, exceeding the \
                     policy budget (max_bad_fraction = {max_bad_fraction})"
                )
            }
            GraphError::BipartiteViolation { src, dst } => {
                write!(
                    f,
                    "edge {src} -> {dst} connects nodes in the same bipartite class"
                )
            }
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GraphError::NodeOutOfRange {
            index: 9,
            num_nodes: 4,
        };
        assert!(e.to_string().contains("out of range"));
        let e = GraphError::InvalidWeight { weight: -1.0 };
        assert!(e.to_string().contains("-1"));
        let e = GraphError::Parse {
            line: 3,
            message: "bad field".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = GraphError::BipartiteViolation { src: 1, dst: 2 };
        assert!(e.to_string().contains("bipartite"));
        let e = GraphError::TooManyBadRecords {
            quarantined: 7,
            records: 10,
            max_bad_fraction: 0.5,
        };
        assert!(e.to_string().contains("7 of 10"));
        assert!(e.to_string().contains("0.5"));
    }

    #[test]
    fn io_error_source() {
        use std::error::Error;
        let e = GraphError::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }
}
