//! Time-windowed aggregation of event streams.
//!
//! The paper aggregates flows "over regular time windows to form
//! communication graphs" (Section IV-A), producing a sequence
//! `G_1, G_2, …` over a (mostly) shared node space. This module slices a
//! stream of [`EdgeEvent`]s into such a [`GraphSequence`].

use serde::{Deserialize, Serialize};

use crate::builder::GraphBuilder;
use crate::edge::EdgeEvent;
use crate::graph::CommGraph;
use crate::node::NodeId;

/// Specification of a regular windowing of the time axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowSpec {
    /// Timestamp at which window 0 starts.
    pub start: u64,
    /// Width of each window, in the same (opaque) units as event times.
    pub width: u64,
}

impl WindowSpec {
    /// Creates a window spec.
    ///
    /// # Panics
    /// Panics if `width == 0`.
    pub fn new(start: u64, width: u64) -> Self {
        assert!(width > 0, "window width must be positive");
        WindowSpec { start, width }
    }

    /// The index of the window containing `time`, or `None` for events
    /// before `start` or for window indices that do not fit in `usize`
    /// (possible on 32-bit targets, where `u64::MAX / width` can exceed
    /// `usize::MAX`).
    #[inline]
    pub fn window_of(&self, time: u64) -> Option<usize> {
        time.checked_sub(self.start)
            .and_then(|dt| usize::try_from(dt / self.width).ok())
    }

    /// The half-open time range `[lo, hi)` covered by window `w`, or
    /// `None` if the range overflows the `u64` time axis.
    pub fn range_of(&self, w: usize) -> Option<(u64, u64)> {
        let lo = u64::try_from(w)
            .ok()
            .and_then(|w| w.checked_mul(self.width))
            .and_then(|dw| self.start.checked_add(dw))?;
        let hi = lo.checked_add(self.width)?;
        Some((lo, hi))
    }
}

/// A sequence of communication graphs `G_1 … G_T` over a shared node space.
#[derive(Debug, Clone)]
pub struct GraphSequence {
    num_nodes: usize,
    graphs: Vec<CommGraph>,
}

impl GraphSequence {
    /// Builds a sequence by bucketing `events` into windows per `spec`.
    ///
    /// Events before `spec.start` are dropped. `num_nodes` fixes the shared
    /// node space (usually `interner.len()`). Trailing empty windows are
    /// retained so the sequence length is determined by the latest event.
    pub fn from_events(num_nodes: usize, spec: WindowSpec, events: &[EdgeEvent]) -> Self {
        let last_window = events.iter().filter_map(|e| spec.window_of(e.time)).max();
        let count = last_window.map_or(0, |w| w + 1);
        let mut builders: Vec<GraphBuilder> = (0..count).map(|_| GraphBuilder::new()).collect();
        for e in events {
            if let Some(w) = spec.window_of(e.time) {
                builders[w].add_event(e.src, e.dst, e.weight);
            }
        }
        let graphs = builders.into_iter().map(|b| b.build(num_nodes)).collect();
        GraphSequence { num_nodes, graphs }
    }

    /// Wraps pre-built per-window graphs.
    ///
    /// # Panics
    /// Panics if the graphs do not all share the same node-space size.
    pub fn from_graphs(graphs: Vec<CommGraph>) -> Self {
        let num_nodes = graphs.first().map_or(0, CommGraph::num_nodes);
        assert!(
            graphs.iter().all(|g| g.num_nodes() == num_nodes),
            "all windows must share one node space"
        );
        GraphSequence { num_nodes, graphs }
    }

    /// Number of windows `T`.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// Whether the sequence has no windows.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// Size of the shared node space.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The graph of window `t`, if it exists.
    pub fn window(&self, t: usize) -> Option<&CommGraph> {
        self.graphs.get(t)
    }

    /// Iterates over the window graphs in time order.
    pub fn iter(&self) -> impl Iterator<Item = &CommGraph> {
        self.graphs.iter()
    }

    /// Iterates over consecutive window pairs `(G_t, G_{t+1})` — the unit
    /// of the paper's persistence and cross-time ROC evaluations.
    pub fn consecutive_pairs(&self) -> impl Iterator<Item = (&CommGraph, &CommGraph)> {
        self.graphs.windows(2).map(|w| (&w[0], &w[1]))
    }

    /// Nodes with at least one outgoing edge in *every* window — the stable
    /// population over which cross-window properties are best measured.
    ///
    /// Computed in one pass over the windows with a per-node counter:
    /// each window contributes its active sources once, so the cost is
    /// `O(Σ_t |sources(G_t)| + N)` rather than the `O(T·N)` of probing
    /// every node in every window.
    pub fn persistent_sources(&self) -> Vec<NodeId> {
        if self.graphs.is_empty() {
            return (0..self.num_nodes).map(NodeId::new).collect();
        }
        let mut counts = vec![0usize; self.num_nodes];
        for g in &self.graphs {
            for v in g.active_sources() {
                counts[v.index()] += 1;
            }
        }
        let t = self.graphs.len();
        counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == t)
            .map(|(i, _)| NodeId::new(i))
            .collect()
    }

    /// Consumes the sequence and returns the window graphs.
    pub fn into_graphs(self) -> Vec<CommGraph> {
        self.graphs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn window_of_and_range() {
        let spec = WindowSpec::new(100, 10);
        assert_eq!(spec.window_of(99), None);
        assert_eq!(spec.window_of(100), Some(0));
        assert_eq!(spec.window_of(109), Some(0));
        assert_eq!(spec.window_of(110), Some(1));
        assert_eq!(spec.range_of(2), Some((120, 130)));
    }

    #[test]
    fn range_of_overflow_is_none() {
        let spec = WindowSpec::new(u64::MAX - 5, 10);
        // lo itself overflows for w >= 1, and even w = 0 has hi > u64::MAX.
        assert_eq!(spec.range_of(0), None);
        assert_eq!(spec.range_of(usize::MAX), None);
        // A huge but representable window is fine.
        let wide = WindowSpec::new(0, 1 << 32);
        assert_eq!(wide.range_of(3), Some((3 << 32, 4 << 32)));
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_rejected() {
        let _ = WindowSpec::new(0, 0);
    }

    #[test]
    fn events_bucketed_into_windows() {
        let events = vec![
            EdgeEvent::unit(0, n(0), n(1)),
            EdgeEvent::unit(5, n(0), n(1)),
            EdgeEvent::unit(10, n(0), n(2)),
            EdgeEvent::unit(25, n(1), n(2)),
        ];
        let seq = GraphSequence::from_events(3, WindowSpec::new(0, 10), &events);
        assert_eq!(seq.len(), 3);
        assert_eq!(seq.window(0).unwrap().edge_weight(n(0), n(1)), Some(2.0));
        assert_eq!(seq.window(1).unwrap().edge_weight(n(0), n(2)), Some(1.0));
        assert_eq!(seq.window(2).unwrap().edge_weight(n(1), n(2)), Some(1.0));
    }

    #[test]
    fn early_events_dropped() {
        let events = vec![
            EdgeEvent::unit(3, n(0), n(1)), // before start
            EdgeEvent::unit(12, n(0), n(1)),
        ];
        let seq = GraphSequence::from_events(2, WindowSpec::new(10, 10), &events);
        assert_eq!(seq.len(), 1);
        assert_eq!(seq.window(0).unwrap().num_edges(), 1);
    }

    #[test]
    fn empty_event_stream() {
        let seq = GraphSequence::from_events(5, WindowSpec::new(0, 10), &[]);
        assert!(seq.is_empty());
        assert_eq!(seq.num_nodes(), 5);
    }

    #[test]
    fn consecutive_pairs_and_persistent_sources() {
        let events = vec![
            EdgeEvent::unit(0, n(0), n(2)),
            EdgeEvent::unit(1, n(1), n(2)),
            EdgeEvent::unit(10, n(0), n(2)),
            EdgeEvent::unit(20, n(0), n(1)),
        ];
        let seq = GraphSequence::from_events(3, WindowSpec::new(0, 10), &events);
        assert_eq!(seq.consecutive_pairs().count(), 2);
        // node 0 speaks in all three windows; node 1 only in window 0.
        assert_eq!(seq.persistent_sources(), vec![n(0)]);
    }

    #[test]
    fn persistent_sources_matches_per_node_probe() {
        // Regression for the one-pass counter rewrite: the result must
        // agree with the original per-node all-windows probe, in order.
        let events = vec![
            EdgeEvent::unit(0, n(0), n(2)),
            EdgeEvent::unit(1, n(1), n(2)),
            EdgeEvent::unit(2, n(3), n(0)),
            EdgeEvent::unit(10, n(0), n(1)),
            EdgeEvent::unit(11, n(1), n(0)),
            EdgeEvent::unit(12, n(3), n(2)),
            EdgeEvent::unit(20, n(0), n(3)),
            EdgeEvent::unit(21, n(3), n(1)),
        ];
        let seq = GraphSequence::from_events(4, WindowSpec::new(0, 10), &events);
        let brute: Vec<NodeId> = (0..seq.num_nodes())
            .map(NodeId::new)
            .filter(|&v| seq.iter().all(|g| g.out_degree(v) > 0))
            .collect();
        assert_eq!(seq.persistent_sources(), brute);
        assert_eq!(seq.persistent_sources(), vec![n(0), n(3)]);

        // With no windows every node is vacuously persistent (unchanged
        // behaviour of the old implementation).
        let empty = GraphSequence::from_events(3, WindowSpec::new(0, 10), &[]);
        assert_eq!(empty.persistent_sources().len(), 3);
    }

    #[test]
    #[should_panic(expected = "node space")]
    fn from_graphs_rejects_mismatched_sizes() {
        let g1 = GraphBuilder::new().build(2);
        let g2 = GraphBuilder::new().build(3);
        let _ = GraphSequence::from_graphs(vec![g1, g2]);
    }
}
