//! Plain-text edge-list input/output with configurable fault policies.
//!
//! Format (one record per line, whitespace-separated):
//!
//! ```text
//! # comments and blank lines are ignored
//! <time> <src-label> <dst-label> <weight>
//! ```
//!
//! This mirrors the shape of aggregated flow records ("NetFlow for
//! summarizing IP traffic", Section II-B): each line is one aggregated
//! communication observation. Weight may be omitted (defaults to `1`).
//!
//! Real flow feeds are lossy and noisy, so ingestion supports three
//! [`IngestPolicy`] modes: `Strict` (abort on the first malformed
//! record — the historical behaviour), `Quarantine` (skip bad records,
//! recording line numbers and reasons in an [`IngestReport`], up to a
//! configurable budget) and `Repair` (additionally clamp out-of-domain
//! weights into `[0, REPAIR_WEIGHT_CAP]`). See DESIGN.md §8.

use std::io::{BufRead, ErrorKind, Write};

use serde::Serialize;

use crate::edge::EdgeEvent;
use crate::error::GraphError;
use crate::node::Interner;

/// Upper clamp applied to non-finite positive weights under
/// [`IngestPolicy::Repair`]. Large enough to dominate any legitimate
/// aggregated flow volume, small enough that window sums stay finite.
pub const REPAIR_WEIGHT_CAP: f64 = 1e12;

/// How ingestion reacts to malformed records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IngestPolicy {
    /// Abort on the first malformed record with a typed [`GraphError`].
    /// Byte-identical to the historical `read_events` behaviour.
    Strict,
    /// Skip malformed records, recording each in the [`IngestReport`].
    /// Fails with [`GraphError::TooManyBadRecords`] if more than
    /// `max_bad_fraction · records` records end up quarantined.
    Quarantine {
        /// Bad-record budget as a fraction of attempted records.
        max_bad_fraction: f64,
    },
    /// Like `Quarantine` with an unlimited budget, but weights that are
    /// merely out of domain (negative or infinite) are clamped into
    /// `[0, REPAIR_WEIGHT_CAP]` instead of quarantined. `NaN` carries no
    /// information and is still quarantined.
    Repair,
}

/// One record skipped by a tolerant ingest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Quarantined {
    /// 1-based line number in the input stream.
    pub line: usize,
    /// Why the record was rejected (same wording as the `Strict` error).
    pub reason: String,
}

/// One weight clamped by [`IngestPolicy::Repair`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Repaired {
    /// 1-based line number in the input stream.
    pub line: usize,
    /// The weight as parsed.
    pub original: f64,
    /// The weight after clamping into `[0, REPAIR_WEIGHT_CAP]`.
    pub repaired: f64,
}

/// Accounting of one ingest run: what was read, kept, skipped, patched.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct IngestReport {
    /// Physical lines read, including blanks and comments.
    pub lines_read: usize,
    /// Records attempted (non-blank, non-comment lines).
    pub records: usize,
    /// Events accepted into the output.
    pub events: usize,
    /// Records skipped, with line numbers and reasons.
    pub quarantined: Vec<Quarantined>,
    /// Weights clamped under [`IngestPolicy::Repair`].
    pub repaired: Vec<Repaired>,
}

impl IngestReport {
    /// Fraction of attempted records that were quarantined (0 for an
    /// empty input).
    #[must_use]
    pub fn bad_fraction(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.quarantined.len() as f64 / self.records as f64
        }
    }

    /// Whether the input parsed without any quarantine or repair.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty() && self.repaired.is_empty()
    }
}

/// A structurally valid line, before weight-domain validation.
struct RawLine<'a> {
    time: u64,
    src: &'a str,
    dst: &'a str,
    weight: f64,
}

/// The outcome of parsing one trimmed, non-comment line.
enum LineOutcome<'a> {
    /// Fully valid record.
    Good(RawLine<'a>),
    /// Structure parsed but the weight is non-finite or negative.
    /// `extra_fields` records whether the line also had trailing junk
    /// (checked *after* the weight in `Strict`, so the weight fault wins
    /// there, but `Repair` must still reject the malformed structure).
    BadWeight {
        raw: RawLine<'a>,
        extra_fields: bool,
    },
    /// Structurally malformed; the message matches the `Strict` error.
    Malformed(String),
}

/// Parses one record line, reproducing the historical field-by-field
/// validation order exactly (time, src, dst, weight parse, weight
/// domain, field count).
fn parse_line(trimmed: &str) -> LineOutcome<'_> {
    let mut fields = trimmed.split_whitespace();
    let time: u64 = match fields.next() {
        None => return LineOutcome::Malformed("missing time field".to_owned()),
        Some(t) => match t.parse() {
            Ok(t) => t,
            Err(_) => {
                return LineOutcome::Malformed("time is not a non-negative integer".to_owned())
            }
        },
    };
    let Some(src) = fields.next() else {
        return LineOutcome::Malformed("missing source".to_owned());
    };
    let Some(dst) = fields.next() else {
        return LineOutcome::Malformed("missing destination".to_owned());
    };
    let weight: f64 = match fields.next() {
        Some(w) => match w.parse() {
            Ok(w) => w,
            Err(_) => return LineOutcome::Malformed("weight is not a number".to_owned()),
        },
        None => 1.0,
    };
    let raw = RawLine {
        time,
        src,
        dst,
        weight,
    };
    if !weight.is_finite() || weight < 0.0 {
        return LineOutcome::BadWeight {
            raw,
            extra_fields: fields.next().is_some(),
        };
    }
    if fields.next().is_some() {
        return LineOutcome::Malformed("too many fields".to_owned());
    }
    LineOutcome::Good(raw)
}

/// Parses an event stream from `reader`, interning labels into `interner`.
///
/// Labels are interned in first-appearance order, so parsing is
/// deterministic. Lines starting with `#` and blank lines are skipped.
/// Equivalent to [`read_events_with_policy`] under
/// [`IngestPolicy::Strict`]: the first malformed record aborts the parse
/// with a typed error.
pub fn read_events<R: BufRead>(
    reader: R,
    interner: &mut Interner,
) -> Result<Vec<EdgeEvent>, GraphError> {
    read_events_with_policy(reader, interner, IngestPolicy::Strict).map(|(events, _)| events)
}

/// Parses an event stream under `policy`, returning the surviving events
/// and an [`IngestReport`] accounting for every skipped or patched
/// record.
///
/// Only accepted records intern labels, so the node space (and therefore
/// every downstream id) is a function of the surviving records alone —
/// a quarantined line can never perturb the interning order.
pub fn read_events_with_policy<R: BufRead>(
    reader: R,
    interner: &mut Interner,
    policy: IngestPolicy,
) -> Result<(Vec<EdgeEvent>, IngestReport), GraphError> {
    let mut events = Vec::new();
    let mut report = IngestReport::default();
    for (lineno, line) in reader.lines().enumerate() {
        let lineno = lineno + 1;
        report.lines_read += 1;
        let line = match line {
            Ok(line) => line,
            // A line that is not valid UTF-8 is a per-record fault the
            // tolerant policies can skip (the bytes up to the newline
            // are already consumed); any other I/O error is fatal.
            Err(e) if policy != IngestPolicy::Strict && e.kind() == ErrorKind::InvalidData => {
                report.records += 1;
                report.quarantined.push(Quarantined {
                    line: lineno,
                    reason: "line is not valid UTF-8".to_owned(),
                });
                continue;
            }
            Err(e) => return Err(e.into()),
        };
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        report.records += 1;
        let quarantine = |report: &mut IngestReport, reason: String| {
            report.quarantined.push(Quarantined {
                line: lineno,
                reason,
            });
        };
        let accepted: RawLine<'_> = match (parse_line(trimmed), policy) {
            (LineOutcome::Good(raw), _) => raw,
            (LineOutcome::Malformed(message), IngestPolicy::Strict) => {
                return Err(GraphError::Parse {
                    line: lineno,
                    message,
                });
            }
            (LineOutcome::Malformed(message), _) => {
                quarantine(&mut report, message);
                continue;
            }
            (LineOutcome::BadWeight { raw, .. }, IngestPolicy::Strict) => {
                return Err(GraphError::InvalidWeight { weight: raw.weight });
            }
            (LineOutcome::BadWeight { raw, .. }, IngestPolicy::Quarantine { .. }) => {
                quarantine(
                    &mut report,
                    format!("edge weight {} is not finite and non-negative", raw.weight),
                );
                continue;
            }
            (
                LineOutcome::BadWeight {
                    extra_fields: true, ..
                },
                IngestPolicy::Repair,
            ) => {
                quarantine(&mut report, "too many fields".to_owned());
                continue;
            }
            (
                LineOutcome::BadWeight {
                    mut raw,
                    extra_fields: false,
                },
                IngestPolicy::Repair,
            ) => {
                if raw.weight.is_nan() {
                    quarantine(
                        &mut report,
                        "weight is NaN and cannot be repaired".to_owned(),
                    );
                    continue;
                }
                let clamped = raw.weight.clamp(0.0, REPAIR_WEIGHT_CAP);
                report.repaired.push(Repaired {
                    line: lineno,
                    original: raw.weight,
                    repaired: clamped,
                });
                raw.weight = clamped;
                raw
            }
        };
        let src = interner.intern(accepted.src);
        let dst = interner.intern(accepted.dst);
        events.push(EdgeEvent {
            time: accepted.time,
            src,
            dst,
            weight: accepted.weight,
        });
    }
    report.events = events.len();
    if let IngestPolicy::Quarantine { max_bad_fraction } = policy {
        if report.quarantined.len() as f64 > max_bad_fraction * report.records as f64 {
            return Err(GraphError::TooManyBadRecords {
                quarantined: report.quarantined.len(),
                records: report.records,
                max_bad_fraction,
            });
        }
    }
    Ok((events, report))
}

/// Writes an event stream in the same format `read_events` parses.
pub fn write_events<W: Write>(
    mut writer: W,
    interner: &Interner,
    events: &[EdgeEvent],
) -> Result<(), GraphError> {
    for e in events {
        let src = interner.label(e.src).ok_or(GraphError::NodeOutOfRange {
            index: e.src.index(),
            num_nodes: interner.len(),
        })?;
        let dst = interner.label(e.dst).ok_or(GraphError::NodeOutOfRange {
            index: e.dst.index(),
            num_nodes: interner.len(),
        })?;
        writeln!(writer, "{} {} {} {}", e.time, src, dst, e.weight)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parse_basic_stream() {
        let input = "\
# enterprise flows
0 10.0.0.1 93.184.216.34 5
0 10.0.0.2 93.184.216.34

1 10.0.0.1 8.8.8.8
";
        let mut interner = Interner::new();
        let events = read_events(Cursor::new(input), &mut interner).unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].weight, 5.0);
        assert_eq!(events[2].weight, 1.0); // default weight
        assert_eq!(interner.len(), 4);
        assert_eq!(events[0].src, events[2].src); // same label, same id
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let mut interner = Interner::new();
        let err = read_events(Cursor::new("abc 10.0.0.1 x 1"), &mut interner).unwrap_err();
        assert!(err.to_string().contains("line 1"));

        let err = read_events(Cursor::new("0 a"), &mut interner).unwrap_err();
        assert!(err.to_string().contains("destination"));

        let err = read_events(Cursor::new("0 a b 1 extra"), &mut interner).unwrap_err();
        assert!(err.to_string().contains("too many"));

        let err = read_events(Cursor::new("0 a b -2"), &mut interner).unwrap_err();
        assert!(err.to_string().contains("-2"));
    }

    #[test]
    fn round_trip() {
        let input = "0 a b 2\n3 b c 1.5\n";
        let mut interner = Interner::new();
        let events = read_events(Cursor::new(input), &mut interner).unwrap();

        let mut out = Vec::new();
        write_events(&mut out, &interner, &events).unwrap();
        let rendered = String::from_utf8(out).unwrap();

        let mut interner2 = Interner::new();
        let events2 = read_events(Cursor::new(rendered.as_str()), &mut interner2).unwrap();
        assert_eq!(events, events2);
    }

    #[test]
    fn write_rejects_unknown_node() {
        let interner = Interner::new();
        let events = vec![EdgeEvent::unit(
            0,
            crate::NodeId::new(0),
            crate::NodeId::new(1),
        )];
        let err = write_events(Vec::new(), &interner, &events).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    // --- policy machinery ------------------------------------------------

    const MIXED: &str = "\
# header comment
0 a b 2
not-a-time a b 1
1 a c
2 z
3 c d NaN
4 d e -3.5
5 e f 1 junk
6 f g 4
";

    fn quarantine(f: f64) -> IngestPolicy {
        IngestPolicy::Quarantine {
            max_bad_fraction: f,
        }
    }

    #[test]
    fn strict_policy_matches_plain_reader() {
        let mut i1 = Interner::new();
        let e1 = read_events(Cursor::new("0 a b 2\n1 b c\n"), &mut i1).unwrap();
        let mut i2 = Interner::new();
        let (e2, report) = read_events_with_policy(
            Cursor::new("0 a b 2\n1 b c\n"),
            &mut i2,
            IngestPolicy::Strict,
        )
        .unwrap();
        assert_eq!(e1, e2);
        assert_eq!(i1.len(), i2.len());
        assert!(report.is_clean());
        assert_eq!(report.lines_read, 2);
        assert_eq!(report.records, 2);
        assert_eq!(report.events, 2);
    }

    #[test]
    fn quarantine_records_lines_and_reasons() {
        let mut interner = Interner::new();
        let (events, report) =
            read_events_with_policy(Cursor::new(MIXED), &mut interner, quarantine(1.0)).unwrap();
        assert_eq!(events.len(), 3); // lines 2, 4, 9 parse; the rest quarantine
        assert_eq!(report.lines_read, 9);
        assert_eq!(report.records, 8);
        assert_eq!(report.events, 3);
        let lines: Vec<usize> = report.quarantined.iter().map(|q| q.line).collect();
        assert_eq!(lines, vec![3, 5, 6, 7, 8]);
        let reasons: Vec<&str> = report
            .quarantined
            .iter()
            .map(|q| q.reason.as_str())
            .collect();
        assert!(reasons[0].contains("time"));
        assert!(reasons[1].contains("destination"));
        assert!(reasons[2].contains("NaN"));
        assert!(reasons[3].contains("-3.5"));
        assert!(reasons[4].contains("too many"));
        assert!((report.bad_fraction() - 5.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn quarantine_budget_overflow_is_typed() {
        let mut interner = Interner::new();
        let err = read_events_with_policy(Cursor::new(MIXED), &mut interner, quarantine(0.25))
            .unwrap_err();
        match err {
            GraphError::TooManyBadRecords {
                quarantined,
                records,
                ..
            } => {
                assert_eq!(quarantined, 5);
                assert_eq!(records, 8);
            }
            other => panic!("expected TooManyBadRecords, got {other}"),
        }
    }

    #[test]
    fn repair_clamps_weights_and_quarantines_nan() {
        let input = "0 a b -3.5\n1 b c inf\n2 c d NaN\n3 d e 2\n";
        let mut interner = Interner::new();
        let (events, report) =
            read_events_with_policy(Cursor::new(input), &mut interner, IngestPolicy::Repair)
                .unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].weight, 0.0); // -3.5 clamped up
        assert_eq!(events[1].weight, REPAIR_WEIGHT_CAP); // inf clamped down
        assert_eq!(events[2].weight, 2.0); // untouched
        assert_eq!(report.repaired.len(), 2);
        assert_eq!(report.repaired[0].line, 1);
        assert_eq!(report.repaired[0].original, -3.5);
        assert_eq!(report.repaired[1].line, 2);
        assert_eq!(report.quarantined.len(), 1);
        assert!(report.quarantined[0].reason.contains("NaN"));
        assert!(!report.is_clean());
    }

    #[test]
    fn repair_still_rejects_structural_junk() {
        let input = "0 a b -1 extra\n1 a b 2\n";
        let mut interner = Interner::new();
        let (events, report) =
            read_events_with_policy(Cursor::new(input), &mut interner, IngestPolicy::Repair)
                .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(report.quarantined.len(), 1);
        assert!(report.quarantined[0].reason.contains("too many"));
        assert!(report.repaired.is_empty());
    }

    #[test]
    fn quarantined_lines_do_not_intern_labels() {
        // `ghost` appears only on the quarantined line; the surviving
        // node space must not contain it.
        let input = "0 a b 2\nbad ghost b 1\n1 b c 3\n";
        let mut interner = Interner::new();
        let (events, _) =
            read_events_with_policy(Cursor::new(input), &mut interner, quarantine(1.0)).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(interner.len(), 3);
        assert!(interner.get("ghost").is_none());
    }

    #[test]
    fn invalid_utf8_quarantined_not_fatal() {
        let mut bytes = b"0 a b 2\n".to_vec();
        bytes.extend_from_slice(&[0x30, 0x20, 0xFF, 0xFE, 0x20, 0x62, b'\n']); // "0 <junk> b"
        bytes.extend_from_slice(b"1 b c 3\n");

        let mut interner = Interner::new();
        let err = read_events(Cursor::new(bytes.clone()), &mut interner).unwrap_err();
        assert!(matches!(err, GraphError::Io(_)), "strict mode stays fatal");

        let mut interner = Interner::new();
        let (events, report) =
            read_events_with_policy(Cursor::new(bytes), &mut interner, quarantine(1.0)).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].line, 2);
        assert!(report.quarantined[0].reason.contains("UTF-8"));
    }

    #[test]
    fn empty_input_is_clean() {
        let mut interner = Interner::new();
        let (events, report) =
            read_events_with_policy(Cursor::new(""), &mut interner, quarantine(0.0)).unwrap();
        assert!(events.is_empty());
        assert!(report.is_clean());
        assert_eq!(report.bad_fraction(), 0.0);
        assert_eq!(report.lines_read, 0);
    }
}
