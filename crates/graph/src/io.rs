//! Plain-text edge-list input/output.
//!
//! Format (one record per line, whitespace-separated):
//!
//! ```text
//! # comments and blank lines are ignored
//! <time> <src-label> <dst-label> <weight>
//! ```
//!
//! This mirrors the shape of aggregated flow records ("NetFlow for
//! summarizing IP traffic", Section II-B): each line is one aggregated
//! communication observation. Weight may be omitted (defaults to `1`).

use std::io::{BufRead, Write};

use crate::edge::EdgeEvent;
use crate::error::GraphError;
use crate::node::Interner;

/// Parses an event stream from `reader`, interning labels into `interner`.
///
/// Labels are interned in first-appearance order, so parsing is
/// deterministic. Lines starting with `#` and blank lines are skipped.
pub fn read_events<R: BufRead>(
    reader: R,
    interner: &mut Interner,
) -> Result<Vec<EdgeEvent>, GraphError> {
    let mut events = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let parse_err = |message: &str| GraphError::Parse {
            line: lineno + 1,
            message: message.to_owned(),
        };
        let time: u64 = fields
            .next()
            .ok_or_else(|| parse_err("missing time field"))?
            .parse()
            .map_err(|_| parse_err("time is not a non-negative integer"))?;
        let src_label = fields.next().ok_or_else(|| parse_err("missing source"))?;
        let dst_label = fields
            .next()
            .ok_or_else(|| parse_err("missing destination"))?;
        let weight: f64 = match fields.next() {
            Some(w) => w.parse().map_err(|_| parse_err("weight is not a number"))?,
            None => 1.0,
        };
        if !weight.is_finite() || weight < 0.0 {
            return Err(GraphError::InvalidWeight { weight });
        }
        if fields.next().is_some() {
            return Err(parse_err("too many fields"));
        }
        let src = interner.intern(src_label);
        let dst = interner.intern(dst_label);
        events.push(EdgeEvent {
            time,
            src,
            dst,
            weight,
        });
    }
    Ok(events)
}

/// Writes an event stream in the same format `read_events` parses.
pub fn write_events<W: Write>(
    mut writer: W,
    interner: &Interner,
    events: &[EdgeEvent],
) -> Result<(), GraphError> {
    for e in events {
        let src = interner.label(e.src).ok_or(GraphError::NodeOutOfRange {
            index: e.src.index(),
            num_nodes: interner.len(),
        })?;
        let dst = interner.label(e.dst).ok_or(GraphError::NodeOutOfRange {
            index: e.dst.index(),
            num_nodes: interner.len(),
        })?;
        writeln!(writer, "{} {} {} {}", e.time, src, dst, e.weight)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parse_basic_stream() {
        let input = "\
# enterprise flows
0 10.0.0.1 93.184.216.34 5
0 10.0.0.2 93.184.216.34

1 10.0.0.1 8.8.8.8
";
        let mut interner = Interner::new();
        let events = read_events(Cursor::new(input), &mut interner).unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].weight, 5.0);
        assert_eq!(events[2].weight, 1.0); // default weight
        assert_eq!(interner.len(), 4);
        assert_eq!(events[0].src, events[2].src); // same label, same id
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let mut interner = Interner::new();
        let err = read_events(Cursor::new("abc 10.0.0.1 x 1"), &mut interner).unwrap_err();
        assert!(err.to_string().contains("line 1"));

        let err = read_events(Cursor::new("0 a"), &mut interner).unwrap_err();
        assert!(err.to_string().contains("destination"));

        let err = read_events(Cursor::new("0 a b 1 extra"), &mut interner).unwrap_err();
        assert!(err.to_string().contains("too many"));

        let err = read_events(Cursor::new("0 a b -2"), &mut interner).unwrap_err();
        assert!(err.to_string().contains("-2"));
    }

    #[test]
    fn round_trip() {
        let input = "0 a b 2\n3 b c 1.5\n";
        let mut interner = Interner::new();
        let events = read_events(Cursor::new(input), &mut interner).unwrap();

        let mut out = Vec::new();
        write_events(&mut out, &interner, &events).unwrap();
        let rendered = String::from_utf8(out).unwrap();

        let mut interner2 = Interner::new();
        let events2 = read_events(Cursor::new(rendered.as_str()), &mut interner2).unwrap();
        assert_eq!(events, events2);
    }

    #[test]
    fn write_rejects_unknown_node() {
        let interner = Interner::new();
        let events = vec![EdgeEvent::unit(
            0,
            crate::NodeId::new(0),
            crate::NodeId::new(1),
        )];
        let err = write_events(Vec::new(), &interner, &events).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }
}
