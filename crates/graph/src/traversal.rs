//! Graph traversal: BFS, h-hop neighbourhoods, components, diameter.
//!
//! The locality characteristic of Section III ("some nodes are much closer
//! in graph hop distance than others") and the convergence claim of
//! Section IV-C ("for all h larger than the diameter of the graph, RWR^h
//! coincides with RWR^∞") both require hop-distance machinery, which lives
//! here.

use std::collections::VecDeque;

use rustc_hash::FxHashMap;

use crate::graph::CommGraph;
use crate::node::NodeId;

/// Distance (in hops) from a BFS source to every reached node.
///
/// Only reached nodes appear in the map; unreachable nodes are absent.
pub type HopDistances = FxHashMap<NodeId, u32>;

/// Direction in which edges are traversed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow edges forward (`v → u`).
    Out,
    /// Follow edges backward (`u → v`).
    In,
    /// Treat edges as undirected.
    Both,
}

fn push_neighbors(
    g: &CommGraph,
    v: NodeId,
    dir: Direction,
    dist: u32,
    dists: &mut HopDistances,
    queue: &mut VecDeque<(NodeId, u32)>,
) {
    let mut visit = |u: NodeId| {
        if let std::collections::hash_map::Entry::Vacant(slot) = dists.entry(u) {
            slot.insert(dist);
            queue.push_back((u, dist));
        }
    };
    match dir {
        Direction::Out => {
            for (u, _) in g.out_neighbors(v) {
                visit(u);
            }
        }
        Direction::In => {
            for (u, _) in g.in_neighbors(v) {
                visit(u);
            }
        }
        Direction::Both => {
            for (u, _) in g.out_neighbors(v) {
                visit(u);
            }
            for (u, _) in g.in_neighbors(v) {
                visit(u);
            }
        }
    }
}

/// Breadth-first search from `source`, following edges in `dir`, visiting
/// nodes at hop distance `<= max_hops`. Returns hop distances for every
/// reached node, including `source` at distance `0`.
pub fn bfs(g: &CommGraph, source: NodeId, dir: Direction, max_hops: u32) -> HopDistances {
    let mut dists = HopDistances::default();
    let mut queue = VecDeque::new();
    dists.insert(source, 0);
    queue.push_back((source, 0));
    while let Some((v, d)) = queue.pop_front() {
        if d >= max_hops {
            continue;
        }
        push_neighbors(g, v, dir, d + 1, &mut dists, &mut queue);
    }
    dists
}

/// The set of nodes within `h` forward hops of `source` (excluding the
/// source itself), i.e. the support over which `RWR^h` can place mass.
pub fn h_hop_neighborhood(g: &CommGraph, source: NodeId, h: u32) -> Vec<NodeId> {
    let mut nodes: Vec<NodeId> = bfs(g, source, Direction::Out, h)
        .into_iter()
        .filter(|&(v, _)| v != source)
        .map(|(v, _)| v)
        .collect();
    nodes.sort_unstable();
    nodes
}

/// Weakly connected components. Returns `(component_id_per_node, count)`;
/// isolated nodes each form their own component.
pub fn weakly_connected_components(g: &CommGraph) -> (Vec<usize>, usize) {
    let n = g.num_nodes();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0usize;
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        let id = next;
        next += 1;
        let mut queue = VecDeque::new();
        comp[start] = id;
        queue.push_back(NodeId::new(start));
        while let Some(v) = queue.pop_front() {
            for (u, _) in g.out_neighbors(v).chain(g.in_neighbors(v)) {
                if comp[u.index()] == usize::MAX {
                    comp[u.index()] = id;
                    queue.push_back(u);
                }
            }
        }
    }
    (comp, next)
}

/// Estimates the effective diameter (the `q`-quantile of pairwise hop
/// distances, treated undirected) by exact BFS from `sample` source nodes.
///
/// Communication graphs have small diameters (Section IV-C); this estimate
/// is used to validate synthetic data and to bound useful `h` for `RWR^h`.
/// Returns `None` when no pairs are reachable.
pub fn effective_diameter(g: &CommGraph, sources: &[NodeId], q: f64) -> Option<u32> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    let mut dists: Vec<u32> = Vec::new();
    for &s in sources {
        for (&v, &d) in bfs(g, s, Direction::Both, u32::MAX).iter() {
            if v != s {
                dists.push(d);
            }
        }
    }
    if dists.is_empty() {
        return None;
    }
    dists.sort_unstable();
    let idx = ((dists.len() as f64 - 1.0) * q).round() as usize;
    Some(dists[idx])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// Path 0 -> 1 -> 2 -> 3 plus isolated node 4.
    fn path_graph() -> CommGraph {
        let mut b = GraphBuilder::new();
        b.add_event(n(0), n(1), 1.0);
        b.add_event(n(1), n(2), 1.0);
        b.add_event(n(2), n(3), 1.0);
        b.build(5)
    }

    #[test]
    fn bfs_forward_distances() {
        let g = path_graph();
        let d = bfs(&g, n(0), Direction::Out, u32::MAX);
        assert_eq!(d[&n(0)], 0);
        assert_eq!(d[&n(1)], 1);
        assert_eq!(d[&n(3)], 3);
        assert!(!d.contains_key(&n(4)));
    }

    #[test]
    fn bfs_respects_max_hops() {
        let g = path_graph();
        let d = bfs(&g, n(0), Direction::Out, 2);
        assert!(d.contains_key(&n(2)));
        assert!(!d.contains_key(&n(3)));
    }

    #[test]
    fn bfs_backward_and_both() {
        let g = path_graph();
        let d = bfs(&g, n(3), Direction::In, u32::MAX);
        assert_eq!(d[&n(0)], 3);
        let d = bfs(&g, n(2), Direction::Both, 1);
        assert!(d.contains_key(&n(1)) && d.contains_key(&n(3)));
    }

    #[test]
    fn h_hop_neighborhood_excludes_source_and_sorts() {
        let g = path_graph();
        assert_eq!(h_hop_neighborhood(&g, n(0), 2), vec![n(1), n(2)]);
        assert_eq!(h_hop_neighborhood(&g, n(3), 2), Vec::<NodeId>::new());
    }

    #[test]
    fn components_counted() {
        let g = path_graph();
        let (comp, count) = weakly_connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[3]);
        assert_ne!(comp[0], comp[4]);
    }

    #[test]
    fn effective_diameter_of_path() {
        let g = path_graph();
        let d = effective_diameter(&g, &[n(0), n(1), n(2), n(3)], 1.0);
        assert_eq!(d, Some(3));
        let d50 = effective_diameter(&g, &[n(0), n(1), n(2), n(3)], 0.0);
        assert_eq!(d50, Some(1));
    }

    #[test]
    fn effective_diameter_empty() {
        let g = GraphBuilder::new().build(3);
        assert_eq!(effective_diameter(&g, &[n(0)], 0.9), None);
    }
}
