//! Edge and event types.

use serde::{Deserialize, Serialize};

use crate::node::NodeId;

/// Edge weight type: the communication "volume" `C[v, u]` of the paper —
/// e.g. number of TCP sessions, calls, or table accesses in a window.
///
/// Weights are `f64` rather than integer counts so that derived graphs
/// (time-decayed combinations, normalised transition weights, perturbed
/// graphs) stay in the same representation.
pub type Weight = f64;

/// A directed, weighted, aggregated edge `(src → dst, weight)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Aggregated communication volume from `src` to `dst`.
    pub weight: Weight,
}

impl Edge {
    /// Convenience constructor.
    pub fn new(src: NodeId, dst: NodeId, weight: Weight) -> Self {
        Edge { src, dst, weight }
    }
}

/// A single timestamped communication event, before aggregation.
///
/// A stream of events is what a monitoring point actually observes (one
/// flow record, one call record, one query). [`window`](crate::window)
/// aggregates events into per-window [`CommGraph`](crate::CommGraph)s.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeEvent {
    /// Event timestamp (opaque units; windowing only compares/buckets it).
    pub time: u64,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Volume carried by this single event (usually `1.0`).
    pub weight: Weight,
}

impl EdgeEvent {
    /// Convenience constructor for a unit-weight event.
    pub fn unit(time: u64, src: NodeId, dst: NodeId) -> Self {
        EdgeEvent {
            time,
            src,
            dst,
            weight: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_constructor() {
        let e = Edge::new(NodeId::new(1), NodeId::new(2), 3.5);
        assert_eq!(e.src.index(), 1);
        assert_eq!(e.dst.index(), 2);
        assert_eq!(e.weight, 3.5);
    }

    #[test]
    fn unit_event() {
        let ev = EdgeEvent::unit(7, NodeId::new(0), NodeId::new(1));
        assert_eq!(ev.time, 7);
        assert_eq!(ev.weight, 1.0);
    }
}
