//! The paper's robustness perturbation model (Section IV-C).
//!
//! To evaluate robustness, the paper perturbs `G_t` into `G'_t` by:
//!
//! 1. **Insertions** — `α·|E_t|` times: sample a source `v'` proportional
//!    to its out-degree `|O(v')|`, a destination `u'` proportional to its
//!    in-degree `|I(u')|`, and assign the edge `(v', u')` a weight drawn
//!    from the *empirical distribution of all edge weights* (not uniform),
//!    independent of the prior `C[v', u']`.
//! 2. **Deletions** — `β·|E_t|` times: sample an existing edge
//!    proportional to its current weight and decrement its weight by one
//!    unit; edges whose weight reaches zero disappear.
//!
//! For bipartite graphs the sampling ranges are `V_1` and `V_2`; for
//! general graphs they are "nodes with positive out-degree" and "nodes with
//! positive in-degree", which coincides with the bipartite formulation
//! when the graph happens to be bipartite.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rustc_hash::FxHashMap;

use crate::builder::GraphBuilder;
use crate::graph::CommGraph;
use crate::node::NodeId;

pub use crate::fenwick::WeightedSampler;

/// Parameters of the perturbation model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerturbConfig {
    /// Fraction of `|E_t|` edges to insert.
    pub alpha: f64,
    /// Fraction of `|E_t|` unit-weight decrements to apply.
    pub beta: f64,
    /// RNG seed; the same seed reproduces the same `G'_t`.
    pub seed: u64,
}

impl PerturbConfig {
    /// Convenience constructor for the paper's symmetric setting
    /// `α = β` (the paper reports `α = β = 0.1` and `α = β = 0.4`).
    pub fn symmetric(rate: f64, seed: u64) -> Self {
        PerturbConfig {
            alpha: rate,
            beta: rate,
            seed,
        }
    }
}

/// Outcome of a perturbation, for accounting and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerturbReport {
    /// Number of insertion operations performed.
    pub insertions: usize,
    /// How many insertions created a brand-new edge (vs overwrote one).
    pub new_edges: usize,
    /// Number of unit decrements applied.
    pub decrements: usize,
    /// How many edges were fully removed by decrements.
    pub removed_edges: usize,
}

/// Applies the paper's perturbation model to `g`, returning the perturbed
/// graph and an accounting report.
///
/// # Panics
/// Panics if `alpha` or `beta` is negative or non-finite.
pub fn perturb(g: &CommGraph, cfg: &PerturbConfig) -> (CommGraph, PerturbReport) {
    assert!(
        cfg.alpha.is_finite() && cfg.alpha >= 0.0,
        "alpha must be >= 0"
    );
    assert!(cfg.beta.is_finite() && cfg.beta >= 0.0, "beta must be >= 0");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let m = g.num_edges();

    // Mutable edge map seeded from the original graph.
    let mut weights: FxHashMap<(NodeId, NodeId), f64> =
        g.edges().map(|e| ((e.src, e.dst), e.weight)).collect();

    // --- Insertions -----------------------------------------------------
    let out_degrees: Vec<f64> = g.nodes().map(|v| g.out_degree(v) as f64).collect();
    let in_degrees: Vec<f64> = g.nodes().map(|v| g.in_degree(v) as f64).collect();
    let src_sampler = WeightedSampler::new(&out_degrees);
    let dst_sampler = WeightedSampler::new(&in_degrees);
    let edge_weights: Vec<f64> = g.edges().map(|e| e.weight).collect();

    let n_insert = (cfg.alpha * m as f64).round() as usize;
    let mut inserted = 0usize;
    let mut new_edges = 0usize;
    if m > 0 {
        while inserted < n_insert {
            let (Some(si), Some(di)) = (src_sampler.sample(&mut rng), dst_sampler.sample(&mut rng))
            else {
                break;
            };
            let (src, dst) = (NodeId::new(si), NodeId::new(di));
            if src == dst {
                continue; // resample; self-communication is not modelled
            }
            // Weight drawn from the empirical edge-weight distribution.
            let w = edge_weights[rng.random_range(0..edge_weights.len())];
            if weights.insert((src, dst), w).is_none() {
                new_edges += 1;
            }
            inserted += 1;
        }
    }

    // --- Deletions (unit decrements, sampled ∝ current weight) ----------
    // The sampler indexes the *current* edge set (post-insertion), so a
    // decrement can also erode an edge the insertion phase just created —
    // matching the paper's "sampled existing edges" wording.
    let mut edge_list: Vec<(NodeId, NodeId)> = weights.keys().copied().collect();
    edge_list.sort_unstable();
    let current: Vec<f64> = edge_list.iter().map(|k| weights[k]).collect();
    let mut del_sampler = WeightedSampler::new(&current);

    let n_delete = (cfg.beta * m as f64).round() as usize;
    let mut decrements = 0usize;
    for _ in 0..n_delete {
        let Some(i) = del_sampler.sample(&mut rng) else {
            break;
        };
        del_sampler.add(i, -1.0);
        decrements += 1;
    }

    let mut removed_edges = 0usize;
    let mut builder = GraphBuilder::with_edge_capacity(edge_list.len());
    for (i, &(src, dst)) in edge_list.iter().enumerate() {
        let w = del_sampler.weight(i);
        if w > 0.0 {
            builder.add_event(src, dst, w);
        } else {
            removed_edges += 1;
        }
    }

    let report = PerturbReport {
        insertions: inserted,
        new_edges,
        decrements,
        removed_edges,
    };
    let perturbed = builder.build(g.num_nodes());
    // Perturbation contract: the node space is preserved (only edges
    // change) and every surviving weight is finite and positive — the
    // graph constructor hard-asserts the latter, this documents the
    // former.
    debug_assert_eq!(
        perturbed.num_nodes(),
        g.num_nodes(),
        "perturbation must preserve the node set"
    );
    (perturbed, report)
}

/// Applies `perturb` and discards the report.
pub fn perturbed(g: &CommGraph, alpha: f64, beta: f64, seed: u64) -> CommGraph {
    perturb(g, &PerturbConfig { alpha, beta, seed }).0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// Bipartite-ish graph: sources 0..3, destinations 3..8.
    fn sample_graph() -> CommGraph {
        let mut b = GraphBuilder::new();
        b.add_event(n(0), n(3), 5.0);
        b.add_event(n(0), n(4), 2.0);
        b.add_event(n(1), n(3), 3.0);
        b.add_event(n(1), n(5), 1.0);
        b.add_event(n(2), n(6), 4.0);
        b.add_event(n(2), n(7), 2.0);
        b.build(8)
    }

    #[test]
    fn zero_rates_are_identity() {
        let g = sample_graph();
        let (g2, rep) = perturb(&g, &PerturbConfig::symmetric(0.0, 7));
        assert_eq!(rep.insertions, 0);
        assert_eq!(rep.decrements, 0);
        assert_eq!(g2.num_edges(), g.num_edges());
        for e in g.edges() {
            assert_eq!(g2.edge_weight(e.src, e.dst), Some(e.weight));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = sample_graph();
        let a = perturbed(&g, 0.5, 0.5, 99);
        let b = perturbed(&g, 0.5, 0.5, 99);
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea, eb);
        let c = perturbed(&g, 0.5, 0.5, 100);
        // Different seed should (with overwhelming probability) differ.
        let ec: Vec<_> = c.edges().collect();
        assert_ne!(ea, ec);
    }

    #[test]
    fn insertion_count_matches_alpha() {
        let g = sample_graph();
        let (_, rep) = perturb(
            &g,
            &PerturbConfig {
                alpha: 0.5,
                beta: 0.0,
                seed: 3,
            },
        );
        assert_eq!(rep.insertions, 3); // 0.5 * 6 edges
        assert_eq!(rep.decrements, 0);
    }

    #[test]
    fn decrement_count_matches_beta() {
        let g = sample_graph();
        let (g2, rep) = perturb(
            &g,
            &PerturbConfig {
                alpha: 0.0,
                beta: 0.5,
                seed: 3,
            },
        );
        assert_eq!(rep.decrements, 3);
        let lost = g.total_weight() - g2.total_weight();
        assert!((lost - 3.0).abs() < 1e-9, "lost = {lost}");
    }

    #[test]
    fn heavy_deletion_empties_graph() {
        let g = sample_graph();
        // total weight = 17, so 1700 decrements wipe everything out.
        let (g2, rep) = perturb(
            &g,
            &PerturbConfig {
                alpha: 0.0,
                beta: 300.0,
                seed: 5,
            },
        );
        assert_eq!(g2.num_edges(), 0);
        assert_eq!(rep.removed_edges, 6);
        assert!(rep.decrements <= 1800);
    }

    #[test]
    fn inserted_weights_come_from_empirical_distribution() {
        let g = sample_graph();
        let allowed: Vec<f64> = g.edges().map(|e| e.weight).collect();
        let (g2, _) = perturb(
            &g,
            &PerturbConfig {
                alpha: 2.0,
                beta: 0.0,
                seed: 11,
            },
        );
        for e in g2.edges() {
            assert!(
                allowed.contains(&e.weight),
                "weight {} not from original distribution",
                e.weight
            );
        }
    }

    #[test]
    fn sources_stay_sources() {
        // With degree-proportional sampling, nodes that never sent traffic
        // (pure destinations) can never become sources.
        let g = sample_graph();
        let (g2, _) = perturb(&g, &PerturbConfig::symmetric(1.0, 13));
        for v in 3..8 {
            assert_eq!(g2.out_degree(n(v)), 0, "destination {v} became a source");
        }
    }

    #[test]
    fn empty_graph_is_noop() {
        let g = GraphBuilder::new().build(4);
        let (g2, rep) = perturb(&g, &PerturbConfig::symmetric(0.4, 1));
        assert_eq!(g2.num_edges(), 0);
        assert_eq!(rep.insertions, 0);
    }
}
