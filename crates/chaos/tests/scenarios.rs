//! Runs the full chaos-scenario corpus across several seeds.
//!
//! Every scenario must return `Ok` for every seed — a fault that panics
//! or produces an untyped failure anywhere in the pipeline fails this
//! test. Under `--features contracts` the paper-invariant checkers are
//! additionally compiled into the exercised code paths.

use comsig_chaos::scenarios;

const SEEDS: [u64; 3] = [1, 2, 3];

#[test]
fn every_scenario_passes_for_every_seed() {
    let corpus = scenarios::all();
    assert!(
        corpus.len() >= 20,
        "scenario corpus shrank to {}",
        corpus.len()
    );
    let mut failures = Vec::new();
    for scenario in &corpus {
        for seed in SEEDS {
            if let Err(e) = (scenario.run)(seed) {
                failures.push(format!("{} (seed {seed}): {e}", scenario.name));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "failing scenarios:\n{}",
        failures.join("\n")
    );
}

#[test]
fn scenario_summaries_are_seed_stable() {
    for scenario in scenarios::all() {
        let a = (scenario.run)(17);
        let b = (scenario.run)(17);
        assert_eq!(
            a, b,
            "{} is not deterministic for a fixed seed",
            scenario.name
        );
    }
}
