//! Crash-and-recover scenarios for the `comsig serve` durability plane.
//!
//! Each scenario drives a real [`DurableState`] in a scratch data
//! directory, injects one crash-shaped fault — a process kill between
//! durable records (simulated by dropping the state mid-session), a
//! stale snapshot temp file, a torn or bit-flipped WAL tail — and then
//! reopens the directory. The acceptance bar is the durability
//! contract: recovery must reproduce the **bit-identical** state an
//! uninterrupted run reaches (state digests are the oracle), and every
//! injected fault must surface as a typed outcome, never a panic.

use std::fs;
use std::path::{Path, PathBuf};

use comsig_core::distance::SHel;
use comsig_core::scheme::TopTalkers;
use comsig_graph::{EdgeEvent, Interner, NodeId};

use comsig_serve::config::TierSpec;
use comsig_serve::state::subject_sources;
use comsig_serve::{DurableState, Recovery, RecoverySource, ServeConfig, ServeError};
use comsig_sketch::stream::StreamConfig;

/// A scratch data directory, wiped on creation and on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(name: &str, seed: u64) -> Self {
        let dir = std::env::temp_dir()
            .join("comsig-chaos-durability")
            .join(format!("{name}-{}-{seed}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn config() -> ServeConfig {
    ServeConfig {
        width: 10,
        slide: 10,
        k: 4,
        ..ServeConfig::default()
    }
}

/// The sketch-tier twin of [`config`]: same windowing, but signatures
/// come from a [`SketchTier`](comsig_sketch::tier::SketchTier) whose
/// state is snapshotted and WAL-replayed instead of the exact CSR.
fn sketch_config() -> ServeConfig {
    ServeConfig {
        tier: TierSpec::Sketch,
        sketch: StreamConfig {
            cm_width: 64,
            cm_depth: 2,
            candidate_budget: 8,
            fm_bitmaps: 16,
            seed: 1,
            indeg_cells: 0,
            indeg_depth: 2,
        },
        ..config()
    }
}

/// The frozen label space and event lines of the scenario stream: 6
/// hosts, 4 aligned windows of traffic, weights varied by the seed.
/// Line `t` carries time `t`, so lines `[10w, 10w+10)` are exactly
/// window `w` under the width-10 tumbling config.
fn seed_stream(seed: u64) -> (Interner, Vec<NodeId>, Vec<String>) {
    let mut interner = Interner::new();
    let mut lines = Vec::new();
    let mut events = Vec::new();
    for t in 0..40u64 {
        let src = format!("h{}", (t + seed) % 6);
        let dst = format!("h{}", (t + seed + 2) % 6);
        let s = interner.intern(&src);
        let d = interner.intern(&dst);
        let w = 1 + (t + seed) % 5;
        lines.push(format!("{t} {src} {dst} {w}"));
        events.push(EdgeEvent {
            time: t,
            src: s,
            dst: d,
            weight: w as f64,
        });
    }
    let subjects = subject_sources(&events);
    (interner, subjects, lines)
}

type Opened<'a> = (DurableState<'a>, Recovery);

fn open<'a>(
    scheme: &'a TopTalkers,
    dist: &'a SHel,
    dir: &Path,
    seed: u64,
) -> Result<Opened<'a>, ServeError> {
    open_with(scheme, dist, config(), dir, seed)
}

fn open_with<'a>(
    scheme: &'a TopTalkers,
    dist: &'a SHel,
    cfg: ServeConfig,
    dir: &Path,
    seed: u64,
) -> Result<Opened<'a>, ServeError> {
    let (interner, subjects, _) = seed_stream(seed);
    DurableState::open(scheme, dist, cfg, dir, interner, subjects)
}

fn err(e: impl std::fmt::Display) -> String {
    format!("durability scenario failed: {e}")
}

/// Ingests `lines[range]` and advances once, returning the new digest.
fn feed_window(
    state: &mut DurableState<'_>,
    lines: &[String],
    range: std::ops::Range<usize>,
) -> Result<u64, String> {
    state.ingest_lines(&lines[range].join("\n")).map_err(err)?;
    Ok(state.advance().map_err(err)?.digest)
}

/// The digest an uninterrupted run reaches after all four windows.
fn uninterrupted_digest(seed: u64) -> Result<u64, String> {
    let scheme = TopTalkers;
    let dist = SHel;
    let dir = ScratchDir::new("uninterrupted", seed);
    let (mut state, _) = open(&scheme, &dist, dir.path(), seed).map_err(err)?;
    let (_, _, lines) = seed_stream(seed);
    let mut digest = 0;
    for w in 0..4 {
        let lo = lines.len() * w / 4;
        let hi = lines.len() * (w + 1) / 4;
        digest = feed_window(&mut state, &lines, lo..hi)?;
    }
    Ok(digest)
}

/// Kill between two windows (drop without shutdown), reopen, finish the
/// stream: the final digest must equal the uninterrupted run's.
pub fn serve_kill_and_resume(seed: u64) -> Result<String, String> {
    let want = uninterrupted_digest(seed)?;
    let scheme = TopTalkers;
    let dist = SHel;
    let dir = ScratchDir::new("kill-resume", seed);
    let (_, _, lines) = seed_stream(seed);
    {
        let (mut state, _) = open(&scheme, &dist, dir.path(), seed).map_err(err)?;
        for w in 0..2 {
            let lo = lines.len() * w / 4;
            let hi = lines.len() * (w + 1) / 4;
            feed_window(&mut state, &lines, lo..hi)?;
        }
        // SIGKILL: the state is dropped with no snapshot and no goodbye.
    }
    let (mut state, recovery) = open(&scheme, &dist, dir.path(), seed).map_err(err)?;
    if recovery.replayed_windows != 2 {
        return Err(format!(
            "expected 2 replayed windows, got {}",
            recovery.replayed_windows
        ));
    }
    let mut digest = recovery.digest;
    for w in 2..4 {
        let lo = lines.len() * w / 4;
        let hi = lines.len() * (w + 1) / 4;
        digest = feed_window(&mut state, &lines, lo..hi)?;
    }
    if digest != want {
        return Err(format!(
            "resumed digest {digest:016x} != uninterrupted {want:016x}"
        ));
    }
    Ok(format!(
        "kill after window 2 recovered; final digest {digest:016x} matches uninterrupted run"
    ))
}

/// The sketch-tier twin of [`serve_kill_and_resume`]: the snapshot and
/// WAL now carry the full `SemiStream` sketch state (per-source CMs,
/// candidate maps, FM bitmaps). Kill between windows, reopen, finish —
/// the final digest must equal the uninterrupted sketch-tier run's.
pub fn serve_sketch_kill_and_resume(seed: u64) -> Result<String, String> {
    let scheme = TopTalkers;
    let dist = SHel;
    let (_, _, lines) = seed_stream(seed);

    let want = {
        let dir = ScratchDir::new("sketch-uninterrupted", seed);
        let (mut state, _) =
            open_with(&scheme, &dist, sketch_config(), dir.path(), seed).map_err(err)?;
        let mut digest = 0;
        for w in 0..4 {
            let lo = lines.len() * w / 4;
            let hi = lines.len() * (w + 1) / 4;
            digest = feed_window(&mut state, &lines, lo..hi)?;
        }
        digest
    };

    let dir = ScratchDir::new("sketch-kill-resume", seed);
    {
        let (mut state, _) =
            open_with(&scheme, &dist, sketch_config(), dir.path(), seed).map_err(err)?;
        for w in 0..2 {
            let lo = lines.len() * w / 4;
            let hi = lines.len() * (w + 1) / 4;
            feed_window(&mut state, &lines, lo..hi)?;
        }
        // SIGKILL: the sketch state is dropped mid-stream, no snapshot.
    }
    let (mut state, recovery) =
        open_with(&scheme, &dist, sketch_config(), dir.path(), seed).map_err(err)?;
    if recovery.replayed_windows != 2 {
        return Err(format!(
            "expected 2 replayed windows, got {}",
            recovery.replayed_windows
        ));
    }
    let mut digest = recovery.digest;
    for w in 2..4 {
        let lo = lines.len() * w / 4;
        let hi = lines.len() * (w + 1) / 4;
        digest = feed_window(&mut state, &lines, lo..hi)?;
    }
    if digest != want {
        return Err(format!(
            "resumed sketch digest {digest:016x} != uninterrupted {want:016x}"
        ));
    }
    Ok(format!(
        "sketch tier killed after window 2 recovered; final digest {digest:016x} matches"
    ))
}

/// A crash mid-snapshot leaves a stale `snapshot.bin.tmp`; recovery must
/// ignore it and still reach the uninterrupted digest.
pub fn serve_kill_mid_snapshot(seed: u64) -> Result<String, String> {
    let want = uninterrupted_digest(seed)?;
    let scheme = TopTalkers;
    let dist = SHel;
    let dir = ScratchDir::new("mid-snapshot", seed);
    let (_, _, lines) = seed_stream(seed);
    {
        let (mut state, _) = open(&scheme, &dist, dir.path(), seed).map_err(err)?;
        for w in 0..4 {
            let lo = lines.len() * w / 4;
            let hi = lines.len() * (w + 1) / 4;
            feed_window(&mut state, &lines, lo..hi)?;
        }
        state.snapshot_now().map_err(err)?;
    }
    // The torn write_atomic temp file a kill would leave behind.
    let tmp = dir.path().join("snapshot.bin.tmp");
    fs::write(&tmp, b"comsig-serve-snapshot v1\ntorn mid-write").map_err(err)?;
    let (state, recovery) = open(&scheme, &dist, dir.path(), seed).map_err(err)?;
    if !matches!(recovery.source, RecoverySource::Snapshot { .. }) {
        return Err(format!("expected snapshot recovery, got {recovery:?}"));
    }
    let digest = state.live().state_digest();
    if digest != want {
        return Err(format!("digest {digest:016x} != uninterrupted {want:016x}"));
    }
    Ok("stale snapshot.bin.tmp ignored; snapshot recovery bit-identical".to_owned())
}

/// A torn WAL tail (partial final record) is truncated: recovery keeps
/// every complete record and resumes to the uninterrupted digest.
pub fn serve_wal_torn_tail(seed: u64) -> Result<String, String> {
    let want = uninterrupted_digest(seed)?;
    let scheme = TopTalkers;
    let dist = SHel;
    let dir = ScratchDir::new("torn-tail", seed);
    let (_, _, lines) = seed_stream(seed);
    {
        let (mut state, _) = open(&scheme, &dist, dir.path(), seed).map_err(err)?;
        for w in 0..2 {
            let lo = lines.len() * w / 4;
            let hi = lines.len() * (w + 1) / 4;
            feed_window(&mut state, &lines, lo..hi)?;
        }
    }
    // Tear the tail: append a frame header claiming more bytes than
    // exist, exactly what a crash mid-append produces.
    let wal = dir.path().join("wal.0.log");
    let mut bytes = fs::read(&wal).map_err(err)?;
    let before = bytes.len() as u64;
    bytes.extend_from_slice(&500u32.to_le_bytes());
    bytes.extend_from_slice(&0u64.to_le_bytes());
    bytes.extend_from_slice(b"torn");
    fs::write(&wal, &bytes).map_err(err)?;

    let (mut state, recovery) = open(&scheme, &dist, dir.path(), seed).map_err(err)?;
    if recovery.torn_tail.is_none() {
        return Err("recovery did not report the torn tail".to_owned());
    }
    if recovery.dropped_bytes != bytes.len() as u64 - before {
        return Err(format!(
            "expected {} dropped bytes, got {}",
            bytes.len() as u64 - before,
            recovery.dropped_bytes
        ));
    }
    let mut digest = recovery.digest;
    for w in 2..4 {
        let lo = lines.len() * w / 4;
        let hi = lines.len() * (w + 1) / 4;
        digest = feed_window(&mut state, &lines, lo..hi)?;
    }
    if digest != want {
        return Err(format!(
            "digest after torn-tail recovery {digest:016x} != uninterrupted {want:016x}"
        ));
    }
    Ok(format!(
        "torn tail of {} bytes truncated; resumed run bit-identical",
        recovery.dropped_bytes
    ))
}

/// A bit flip inside an early WAL record invalidates that record *and
/// everything after it* — recovery must keep only the trustworthy
/// prefix, and replaying it must still verify.
pub fn serve_wal_bitflip(seed: u64) -> Result<String, String> {
    let scheme = TopTalkers;
    let dist = SHel;
    let dir = ScratchDir::new("bitflip", seed);
    let (_, _, lines) = seed_stream(seed);
    {
        let (mut state, _) = open(&scheme, &dist, dir.path(), seed).map_err(err)?;
        for w in 0..3 {
            let lo = lines.len() * w / 4;
            let hi = lines.len() * (w + 1) / 4;
            feed_window(&mut state, &lines, lo..hi)?;
        }
    }
    let wal = dir.path().join("wal.0.log");
    let mut bytes = fs::read(&wal).map_err(err)?;
    // Flip one payload bit somewhere in the middle of the log, varying
    // the position with the seed (never the first frame header, so at
    // least one record survives).
    let pos = 13 + (seed as usize % (bytes.len() / 2));
    bytes[pos] ^= 0x40;
    fs::write(&wal, &bytes).map_err(err)?;

    let (state, recovery) = open(&scheme, &dist, dir.path(), seed).map_err(err)?;
    if recovery.torn_tail.is_none() {
        return Err("recovery did not report the corrupt record".to_owned());
    }
    if recovery.dropped_bytes == 0 {
        return Err("a flipped bit must drop at least its record".to_owned());
    }
    if recovery.replayed_windows >= 3 && recovery.replayed_events >= 30 {
        return Err("corrupt suffix was replayed in full".to_owned());
    }
    if state.live().state_digest() != recovery.digest {
        return Err("recovery digest does not match the live state".to_owned());
    }
    Ok(format!(
        "bit flip at byte {pos}: {} bytes dropped, {} windows trusted",
        recovery.dropped_bytes, recovery.replayed_windows
    ))
}

/// Recovery is idempotent: reopening twice with no mutations in between
/// must change neither the digest nor a single durable byte.
pub fn serve_double_restart_idempotent(seed: u64) -> Result<String, String> {
    let scheme = TopTalkers;
    let dist = SHel;
    let dir = ScratchDir::new("double-restart", seed);
    let (_, _, lines) = seed_stream(seed);
    {
        let (mut state, _) = open(&scheme, &dist, dir.path(), seed).map_err(err)?;
        for w in 0..2 {
            let lo = lines.len() * w / 4;
            let hi = lines.len() * (w + 1) / 4;
            feed_window(&mut state, &lines, lo..hi)?;
        }
    }
    let wal = dir.path().join("wal.0.log");
    let bytes_before = fs::read(&wal).map_err(err)?;
    let first = {
        let (_, recovery) = open(&scheme, &dist, dir.path(), seed).map_err(err)?;
        recovery
    };
    let second = {
        let (_, recovery) = open(&scheme, &dist, dir.path(), seed).map_err(err)?;
        recovery
    };
    if first != second {
        return Err(format!("recoveries diverged: {first:?} vs {second:?}"));
    }
    let bytes_after = fs::read(&wal).map_err(err)?;
    if bytes_before != bytes_after {
        return Err("recovery rewrote WAL bytes without any mutation".to_owned());
    }
    Ok(format!(
        "two restarts identical: digest {:016x}, WAL untouched ({} bytes)",
        second.digest,
        bytes_after.len()
    ))
}

/// Snapshot rotation mid-run plus a tail of later windows: recovery
/// starts from the snapshot, replays only the tail, and matches the
/// uninterrupted digest.
pub fn serve_snapshot_plus_tail_replay(seed: u64) -> Result<String, String> {
    let want = uninterrupted_digest(seed)?;
    let scheme = TopTalkers;
    let dist = SHel;
    let dir = ScratchDir::new("snapshot-tail", seed);
    let (_, _, lines) = seed_stream(seed);
    {
        let (mut state, _) = open(&scheme, &dist, dir.path(), seed).map_err(err)?;
        for w in 0..2 {
            let lo = lines.len() * w / 4;
            let hi = lines.len() * (w + 1) / 4;
            feed_window(&mut state, &lines, lo..hi)?;
        }
        let epoch = state.snapshot_now().map_err(err)?;
        if epoch != 1 {
            return Err(format!("expected rotation to epoch 1, got {epoch}"));
        }
        for w in 2..4 {
            let lo = lines.len() * w / 4;
            let hi = lines.len() * (w + 1) / 4;
            feed_window(&mut state, &lines, lo..hi)?;
        }
        // Kill: epoch-1 WAL holds windows 3 and 4, superseded epoch 0 is
        // gone.
    }
    if dir.path().join("wal.0.log").exists() {
        return Err("rotation left the superseded wal.0.log behind".to_owned());
    }
    let (state, recovery) = open(&scheme, &dist, dir.path(), seed).map_err(err)?;
    if recovery.source != (RecoverySource::Snapshot { wal_epoch: 1 }) {
        return Err(format!("expected snapshot@1 recovery, got {recovery:?}"));
    }
    if recovery.replayed_windows != 2 {
        return Err(format!(
            "expected 2 tail windows replayed, got {}",
            recovery.replayed_windows
        ));
    }
    let digest = state.live().state_digest();
    if digest != want {
        return Err(format!("digest {digest:016x} != uninterrupted {want:016x}"));
    }
    Ok(format!(
        "snapshot@1 + {} tail windows replayed to the uninterrupted digest",
        recovery.replayed_windows
    ))
}
