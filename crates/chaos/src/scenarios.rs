//! The named chaos-scenario corpus.
//!
//! Each scenario is a pure function of a seed: it builds a small corpus,
//! injects one class of fault, drives the real pipeline, and checks the
//! graceful-degradation contract — the fault is quarantined in an
//! `IngestReport`, surfaced as a typed `GraphError`, or isolated as a
//! `Degraded` subject; **nothing panics**. Scenarios are run by
//! `cargo test -p comsig-chaos` and by the `comsig chaos` subcommand.

use std::io::{BufReader, Cursor};

use comsig_graph::io::{read_events_with_policy, write_events, REPAIR_WEIGHT_CAP};
use comsig_graph::window::{GraphSequence, WindowSpec};
use comsig_graph::{
    CommGraph, EdgeEvent, GraphBuilder, GraphError, IngestPolicy, IngestReport, Interner, NodeId,
    ShardPlan, SlidingWindower,
};

use comsig_core::engine::DegradeReason;
use comsig_core::scheme::{PushRwr, Rwr, SignatureScheme, TopTalkers, UnexpectedTalkers};
use comsig_core::SignatureTier;
use comsig_graph::{EdgeChange, WindowDelta};
use comsig_sketch::tier::{SketchScheme, SketchTier};

use crate::events;
use crate::reader::{FaultPlan, FaultyReader};

/// One named fault-injection scenario.
#[derive(Clone, Copy)]
pub struct Scenario {
    /// Stable identifier (kebab-case), used by `comsig chaos --scenario`.
    pub name: &'static str,
    /// One-line description of the injected fault and the expectation.
    pub description: &'static str,
    /// Runs the scenario for a seed; `Ok` carries a short summary,
    /// `Err` a failure explanation.
    pub run: fn(u64) -> Result<String, String>,
}

/// The full scenario corpus.
#[must_use]
pub fn all() -> Vec<Scenario> {
    vec![
        sc(
            "clean-strict-baseline",
            "clean corpus through the fault adapter parses strictly with a clean report",
            clean_strict_baseline,
        ),
        sc(
            "bitflip-strict",
            "random bit flips under Strict either parse or fail with a typed GraphError",
            bitflip_strict,
        ),
        sc(
            "bitflip-quarantine",
            "random bit flips under Quarantine are skipped record-by-record within budget",
            bitflip_quarantine,
        ),
        sc(
            "truncate-mid-stream",
            "a stream cut mid-record loses at most the cut record",
            truncate_mid_stream,
        ),
        sc(
            "short-reads-byte-identical",
            "1-byte reads produce events identical to a whole-buffer parse",
            short_reads_byte_identical,
        ),
        sc(
            "midstream-io-error",
            "an injected io::Error surfaces as GraphError::Io under every policy",
            midstream_io_error,
        ),
        sc(
            "invalid-utf8-strict",
            "a non-UTF-8 line aborts a Strict parse with GraphError::Io",
            invalid_utf8_strict,
        ),
        sc(
            "invalid-utf8-quarantine",
            "a non-UTF-8 line is quarantined with its exact line number",
            invalid_utf8_quarantine,
        ),
        sc(
            "interleaved-garbage-line-numbers",
            "garbage lines are quarantined at exactly the lines they were injected",
            interleaved_garbage_line_numbers,
        ),
        sc(
            "duplicate-events",
            "duplicated events aggregate into heavier edges and a healthy batch",
            duplicate_events_scenario,
        ),
        sc(
            "out-of-order-timestamps",
            "timestamp-shuffled events window into the same graphs as the ordered stream",
            out_of_order_timestamps,
        ),
        sc(
            "windower-duplicate-events",
            "duplicated events stream through SlidingWindower into windows bit-identical to a cold rebuild",
            windower_duplicate_events,
        ),
        sc(
            "windower-out-of-order",
            "shuffled events buffered by SlidingWindower patch into bit-identical windows with clean counters",
            windower_out_of_order,
        ),
        sc(
            "nan-weight-strict",
            "a NaN weight aborts a Strict parse with GraphError::InvalidWeight",
            nan_weight_strict,
        ),
        sc(
            "nan-weight-quarantine",
            "a NaN weight is quarantined with a reason naming the value",
            nan_weight_quarantine,
        ),
        sc(
            "negative-weight-strict",
            "a negative weight aborts a Strict parse with GraphError::InvalidWeight",
            negative_weight_strict,
        ),
        sc(
            "negative-weight-repair",
            "Repair clamps a negative weight to 0 and records the repair",
            negative_weight_repair,
        ),
        sc(
            "infinite-weight-repair",
            "Repair clamps an infinite weight to the repair cap",
            infinite_weight_repair,
        ),
        sc(
            "quarantine-budget-overflow",
            "too many bad records overflow the budget with a typed error",
            quarantine_budget_overflow,
        ),
        sc(
            "all-garbage-tolerant",
            "a fully garbage stream yields zero events under an unlimited budget",
            all_garbage_tolerant,
        ),
        sc(
            "empty-input",
            "an empty stream parses to zero events and an empty healthy batch",
            empty_input,
        ),
        sc(
            "zero-weight-flood",
            "zero-weight events build silent nodes with empty, NaN-free signatures",
            zero_weight_flood,
        ),
        sc(
            "nan-poisoned-subject-degrades",
            "one NaN-poisoned subject degrades alone; healthy signatures are bit-identical",
            nan_poisoned_subject_degrades,
        ),
        sc(
            "poisoned-shard-degrades-alone",
            "every subject of one shard is poisoned; that shard degrades and the rest stay bit-identical",
            poisoned_shard_degrades_alone,
        ),
        sc(
            "iteration-budget-degrades",
            "a non-convergent steady-state subject degrades with IterationBudget",
            iteration_budget_degrades,
        ),
        sc(
            "push-budget-degrades",
            "an exhausted push budget degrades instead of silently truncating",
            push_budget_degrades,
        ),
        sc(
            "phantom-node-write-rejected",
            "an event aimed at a phantom node id fails write-out with NodeOutOfRange",
            phantom_node_write_rejected,
        ),
        sc(
            "repair-identity-on-clean",
            "Repair on a clean corpus is byte-identical to Strict with a clean report",
            repair_identity_on_clean,
        ),
        sc(
            "sketch-nan-weight-degrades",
            "a NaN window aggregate degrades its sketch-tier subject for one window, then heals",
            sketch_nan_weight_degrades,
        ),
        sc(
            "sketch-negative-weight-degrades",
            "a negative window aggregate degrades its sketch-tier subject with NegativeOccupancy",
            sketch_negative_weight_degrades,
        ),
        sc(
            "sketch-phantom-node-degrades",
            "a change aimed outside the node space degrades its sketch-tier subject with PhantomNode",
            sketch_phantom_node_degrades,
        ),
        sc(
            "serve-kill-and-resume",
            "a service killed between windows recovers to the bit-identical digest",
            crate::durability::serve_kill_and_resume,
        ),
        sc(
            "serve-kill-mid-snapshot",
            "a stale snapshot.bin.tmp from a mid-write kill is ignored by recovery",
            crate::durability::serve_kill_mid_snapshot,
        ),
        sc(
            "serve-wal-torn-tail",
            "a torn WAL tail is truncated; every complete record survives replay",
            crate::durability::serve_wal_torn_tail,
        ),
        sc(
            "serve-wal-bitflip",
            "a flipped WAL bit drops the untrustworthy suffix, never panics",
            crate::durability::serve_wal_bitflip,
        ),
        sc(
            "serve-double-restart-idempotent",
            "two restarts with no mutations agree bit-for-bit and rewrite nothing",
            crate::durability::serve_double_restart_idempotent,
        ),
        sc(
            "serve-snapshot-plus-tail-replay",
            "recovery seeds from the rotated snapshot and replays only the WAL tail",
            crate::durability::serve_snapshot_plus_tail_replay,
        ),
        sc(
            "serve-sketch-kill-and-resume",
            "a sketch-tier service killed between windows recovers its sketch state bit-identically",
            crate::durability::serve_sketch_kill_and_resume,
        ),
    ]
}

/// Looks a scenario up by name.
#[must_use]
pub fn find(name: &str) -> Option<Scenario> {
    all().into_iter().find(|s| s.name == name)
}

fn sc(
    name: &'static str,
    description: &'static str,
    run: fn(u64) -> Result<String, String>,
) -> Scenario {
    Scenario {
        name,
        description,
        run,
    }
}

// --- shared plumbing -----------------------------------------------------

/// A deterministic clean edge-list corpus: `lines` records over 7 local
/// and 5 external hosts.
fn corpus(lines: usize) -> String {
    let mut s = String::from("# chaos corpus\n");
    for i in 0..lines {
        s.push_str(&format!("{} h{} x{} {}\n", i / 4, i % 7, i % 5, 1 + i % 9));
    }
    s
}

type Parsed = (Vec<EdgeEvent>, IngestReport, Interner);

/// Parses raw bytes under a policy, threading out the interner.
fn parse_bytes(bytes: Vec<u8>, policy: IngestPolicy) -> Result<Parsed, GraphError> {
    let mut interner = Interner::new();
    let (events, report) = read_events_with_policy(Cursor::new(bytes), &mut interner, policy)?;
    Ok((events, report, interner))
}

/// Parses bytes routed through a [`FaultyReader`] with the given plan.
fn parse_faulty(
    bytes: Vec<u8>,
    plan: FaultPlan,
    seed: u64,
    policy: IngestPolicy,
) -> Result<Parsed, GraphError> {
    let mut interner = Interner::new();
    let reader = BufReader::new(FaultyReader::new(Cursor::new(bytes), plan, seed));
    let (events, report) = read_events_with_policy(reader, &mut interner, policy)?;
    Ok((events, report, interner))
}

fn quarantine(max_bad_fraction: f64) -> IngestPolicy {
    IngestPolicy::Quarantine { max_bad_fraction }
}

/// Builds a graph from parsed events over the interned node space.
fn build_graph(events: &[EdgeEvent], num_nodes: usize) -> comsig_graph::CommGraph {
    let mut b = GraphBuilder::new();
    for e in events {
        b.add_event(e.src, e.dst, e.weight);
    }
    b.build(num_nodes)
}

fn check(cond: bool, msg: &str) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(msg.to_owned())
    }
}

// --- byte-stream scenarios ----------------------------------------------

fn clean_strict_baseline(seed: u64) -> Result<String, String> {
    let text = corpus(40);
    let (events, report, _) = parse_faulty(
        text.into_bytes(),
        FaultPlan::clean(),
        seed,
        IngestPolicy::Strict,
    )
    .map_err(|e| format!("clean corpus failed to parse: {e}"))?;
    check(events.len() == 40, "expected 40 events")?;
    check(report.is_clean(), "clean corpus produced a dirty report")?;
    Ok(format!("{} events, clean report", events.len()))
}

fn bitflip_strict(seed: u64) -> Result<String, String> {
    let text = corpus(60);
    let mut parsed = 0usize;
    let mut rejected = 0usize;
    for sub in 0..8 {
        let plan = FaultPlan::clean().bitflips(0.01);
        match parse_faulty(
            text.clone().into_bytes(),
            plan,
            seed.wrapping_add(sub),
            IngestPolicy::Strict,
        ) {
            Ok(_) => parsed += 1,
            // Any typed GraphError is an acceptable strict outcome.
            Err(_) => rejected += 1,
        }
    }
    Ok(format!(
        "8 corrupted streams: {parsed} parsed, {rejected} typed rejections"
    ))
}

fn bitflip_quarantine(seed: u64) -> Result<String, String> {
    let text = corpus(60);
    let mut quarantined = 0usize;
    for sub in 0..8 {
        let plan = FaultPlan::clean().bitflips(0.01);
        match parse_faulty(
            text.clone().into_bytes(),
            plan,
            seed.wrapping_add(sub),
            quarantine(0.9),
        ) {
            Ok((events, report, _)) => {
                check(
                    events.len() + report.quarantined.len() == report.records,
                    "accepted + quarantined must cover every record",
                )?;
                quarantined += report.quarantined.len();
            }
            Err(GraphError::TooManyBadRecords { .. }) => {}
            Err(other) => return Err(format!("unexpected error class: {other}")),
        }
    }
    Ok(format!(
        "8 corrupted streams, {quarantined} records quarantined"
    ))
}

fn truncate_mid_stream(seed: u64) -> Result<String, String> {
    let text = corpus(40);
    let cut = text.len() / 2 + (seed as usize % 7);
    let plan = FaultPlan::clean().truncate_at(cut);
    // Strict: either the partial last record parses or it is a typed error.
    let strict = parse_faulty(text.clone().into_bytes(), plan, seed, IngestPolicy::Strict);
    if let Err(e) = &strict {
        check(
            matches!(
                e,
                GraphError::Parse { .. } | GraphError::InvalidWeight { .. }
            ),
            "strict truncation error must be Parse or InvalidWeight",
        )?;
    }
    // Quarantine: at most the cut record is lost.
    let (events, report, _) = parse_faulty(text.into_bytes(), plan, seed, quarantine(1.0))
        .map_err(|e| format!("tolerant parse of truncated stream failed: {e}"))?;
    check(
        report.quarantined.len() <= 1,
        "at most one record may be cut",
    )?;
    check(events.len() >= report.records - 1, "too many records lost")?;
    Ok(format!(
        "cut at byte {cut}: {} events, {} quarantined",
        events.len(),
        report.quarantined.len()
    ))
}

fn short_reads_byte_identical(seed: u64) -> Result<String, String> {
    let text = corpus(50);
    let (direct, _, direct_interner) = parse_bytes(text.clone().into_bytes(), IngestPolicy::Strict)
        .map_err(|e| format!("direct parse failed: {e}"))?;
    let (chunked, _, chunked_interner) = parse_faulty(
        text.into_bytes(),
        FaultPlan::clean().max_chunk(1),
        seed,
        IngestPolicy::Strict,
    )
    .map_err(|e| format!("1-byte-chunk parse failed: {e}"))?;
    check(direct == chunked, "events differ under short reads")?;
    check(
        direct_interner.len() == chunked_interner.len(),
        "interner diverged under short reads",
    )?;
    Ok(format!("{} events identical at chunk size 1", direct.len()))
}

fn midstream_io_error(seed: u64) -> Result<String, String> {
    let text = corpus(40);
    let fail_at = text.len() / 3;
    let plan = FaultPlan::clean().error_at(fail_at);
    for policy in [IngestPolicy::Strict, quarantine(1.0), IngestPolicy::Repair] {
        match parse_faulty(text.clone().into_bytes(), plan, seed, policy) {
            Err(GraphError::Io(_)) => {}
            Err(other) => return Err(format!("expected Io error, got: {other}")),
            Ok(_) => return Err("mid-stream io::Error was swallowed".to_owned()),
        }
    }
    Ok(format!(
        "io::Error at byte {fail_at} surfaced typed under all 3 policies"
    ))
}

fn utf8_poisoned_corpus() -> (Vec<u8>, usize) {
    let mut bytes = corpus(10).into_bytes();
    // Append a record whose source label is invalid UTF-8, then more
    // clean records; the bad line is line 12 (1 comment + 10 records).
    bytes.extend_from_slice(b"9 h");
    bytes.extend_from_slice(&[0xFF, 0xFE]);
    bytes.extend_from_slice(b" x1 2\n");
    bytes.extend_from_slice(b"9 h1 x2 3\n");
    (bytes, 12)
}

fn invalid_utf8_strict(_seed: u64) -> Result<String, String> {
    let (bytes, _) = utf8_poisoned_corpus();
    match parse_bytes(bytes, IngestPolicy::Strict) {
        Err(GraphError::Io(e)) => {
            check(
                e.kind() == std::io::ErrorKind::InvalidData,
                "expected an InvalidData io error",
            )?;
            Ok("non-UTF-8 line rejected as GraphError::Io(InvalidData)".to_owned())
        }
        Err(other) => Err(format!("expected Io error, got: {other}")),
        Ok(_) => Err("non-UTF-8 line parsed under Strict".to_owned()),
    }
}

fn invalid_utf8_quarantine(_seed: u64) -> Result<String, String> {
    let (bytes, bad_line) = utf8_poisoned_corpus();
    let (events, report, _) =
        parse_bytes(bytes, quarantine(1.0)).map_err(|e| format!("tolerant parse failed: {e}"))?;
    check(events.len() == 11, "the 11 clean records must survive")?;
    check(
        report.quarantined.len() == 1,
        "exactly one quarantined record",
    )?;
    let q = &report.quarantined[0];
    check(
        q.line == bad_line,
        "wrong line number for the non-UTF-8 record",
    )?;
    check(
        q.reason.contains("UTF-8"),
        "reason must name the encoding fault",
    )?;
    Ok(format!("line {} quarantined: {}", q.line, q.reason))
}

fn interleaved_garbage_line_numbers(seed: u64) -> Result<String, String> {
    let text = corpus(30);
    let (corrupted, garbage_lines) = events::interleave_garbage_lines(&text, seed, 3);
    let (events, report, _) = parse_bytes(corrupted.into_bytes(), quarantine(1.0))
        .map_err(|e| format!("tolerant parse failed: {e}"))?;
    check(events.len() == 30, "every clean record must survive")?;
    let reported: Vec<usize> = report.quarantined.iter().map(|q| q.line).collect();
    check(
        reported == garbage_lines,
        "quarantined line numbers must match the injection points exactly",
    )?;
    Ok(format!(
        "{} garbage lines reported at exact positions",
        reported.len()
    ))
}

// --- event-stream scenarios ----------------------------------------------

fn duplicate_events_scenario(seed: u64) -> Result<String, String> {
    let (mut events, _, interner) = parse_bytes(corpus(40).into_bytes(), IngestPolicy::Strict)
        .map_err(|e| format!("parse failed: {e}"))?;
    let base_total: f64 = events.iter().map(|e| e.weight).sum();
    let inserted = events::duplicate_events(&mut events, seed, 0.4);
    let dup_total: f64 = events.iter().map(|e| e.weight).sum();
    check(dup_total >= base_total, "duplication cannot lose volume")?;
    let g = build_graph(&events, interner.len());
    let subjects: Vec<NodeId> = g.nodes().collect();
    let outcome = Rwr::truncated(0.1, 3).signature_set_outcome(&g, &subjects, 5);
    check(
        outcome.is_fully_healthy(),
        "duplicates must not degrade any subject",
    )?;
    Ok(format!(
        "{inserted} duplicates absorbed; batch fully healthy"
    ))
}

fn out_of_order_timestamps(seed: u64) -> Result<String, String> {
    let (events, _, interner) = parse_bytes(corpus(40).into_bytes(), IngestPolicy::Strict)
        .map_err(|e| format!("parse failed: {e}"))?;
    let mut shuffled = events.clone();
    events::shuffle_order(&mut shuffled, seed, 60);
    let spec = WindowSpec::new(0, 4);
    let ordered = GraphSequence::from_events(interner.len(), spec, &events);
    let disordered = GraphSequence::from_events(interner.len(), spec, &shuffled);
    check(ordered.len() == disordered.len(), "window count diverged")?;
    for (t, (a, b)) in ordered.iter().zip(disordered.iter()).enumerate() {
        for src in a.nodes() {
            for dst in a.nodes() {
                if a.edge_weight(src, dst) != b.edge_weight(src, dst) {
                    return Err(format!("window {t}: edge {src}->{dst} diverged"));
                }
            }
        }
    }
    Ok(format!(
        "{} windows identical under timestamp shuffling",
        ordered.len()
    ))
}

/// Pushes the whole (possibly disordered) stream into a tumbling
/// [`SlidingWindower`], then checks every delta-patched window graph is
/// bit-identical to a cold [`GraphSequence`] rebuild of the same stream,
/// and that no event was counted invalid, late, or gap-dropped. Returns
/// the number of windows compared.
fn windower_matches_cold(
    events: &[EdgeEvent],
    num_nodes: usize,
    width: u64,
) -> Result<usize, String> {
    let cold = GraphSequence::from_events(num_nodes, WindowSpec::new(0, width), events);
    let mut windower = SlidingWindower::tumbling(0, width);
    for &e in events {
        if !windower.push(e) {
            return Err(format!(
                "clean event rejected: {} -> {} at t={}",
                e.src, e.dst, e.time
            ));
        }
    }
    let mut g = CommGraph::empty(num_nodes);
    for (t, want) in cold.iter().enumerate() {
        let delta = windower.advance();
        g = g.apply_delta(&delta);
        let got: Vec<(NodeId, NodeId, u64)> = g
            .edges()
            .map(|e| (e.src, e.dst, e.weight.to_bits()))
            .collect();
        let cold_edges: Vec<(NodeId, NodeId, u64)> = want
            .edges()
            .map(|e| (e.src, e.dst, e.weight.to_bits()))
            .collect();
        if got != cold_edges {
            return Err(format!("window {t} diverged from the cold rebuild"));
        }
    }
    let dropped = windower.invalid_events() + windower.late_events() + windower.gap_events();
    check(dropped == 0, "no clean event may be counted as dropped")?;
    check(
        windower.pending_events() == 0,
        "every event must have been consumed by a window",
    )?;
    Ok(cold.len())
}

fn windower_duplicate_events(seed: u64) -> Result<String, String> {
    let (mut events, _, interner) = parse_bytes(corpus(40).into_bytes(), IngestPolicy::Strict)
        .map_err(|e| format!("parse failed: {e}"))?;
    let inserted = events::duplicate_events(&mut events, seed, 0.4);
    let windows = windower_matches_cold(&events, interner.len(), 4)?;
    Ok(format!(
        "{inserted} duplicates; {windows} streamed windows bit-identical to cold rebuild"
    ))
}

fn windower_out_of_order(seed: u64) -> Result<String, String> {
    let (events, _, interner) = parse_bytes(corpus(40).into_bytes(), IngestPolicy::Strict)
        .map_err(|e| format!("parse failed: {e}"))?;
    let mut shuffled = events.clone();
    let swaps = events::shuffle_order(&mut shuffled, seed, 60);
    let windows = windower_matches_cold(&shuffled, interner.len(), 4)?;
    Ok(format!(
        "{swaps} swaps; {windows} streamed windows bit-identical to cold rebuild"
    ))
}

fn nan_weight_strict(_seed: u64) -> Result<String, String> {
    let text = format!("{}5 h1 x1 NaN\n", corpus(8));
    match parse_bytes(text.into_bytes(), IngestPolicy::Strict) {
        Err(GraphError::InvalidWeight { weight }) => {
            check(weight.is_nan(), "the offending weight must be NaN")?;
            Ok("NaN weight rejected as GraphError::InvalidWeight".to_owned())
        }
        Err(other) => Err(format!("expected InvalidWeight, got: {other}")),
        Ok(_) => Err("NaN weight parsed under Strict".to_owned()),
    }
}

fn nan_weight_quarantine(_seed: u64) -> Result<String, String> {
    let text = format!("{}5 h1 x1 NaN\n", corpus(8));
    let (events, report, _) = parse_bytes(text.into_bytes(), quarantine(0.5))
        .map_err(|e| format!("tolerant parse failed: {e}"))?;
    check(events.len() == 8, "clean records must survive")?;
    check(
        report.quarantined.len() == 1,
        "exactly one quarantined record",
    )?;
    check(
        report.quarantined[0].reason.contains("NaN"),
        "reason must name the NaN",
    )?;
    Ok(format!(
        "NaN record quarantined at line {}",
        report.quarantined[0].line
    ))
}

fn negative_weight_strict(_seed: u64) -> Result<String, String> {
    let text = format!("{}5 h1 x1 -4.5\n", corpus(8));
    match parse_bytes(text.into_bytes(), IngestPolicy::Strict) {
        Err(GraphError::InvalidWeight { weight }) => {
            check(weight < 0.0, "the offending weight must be negative")?;
            Ok("negative weight rejected as GraphError::InvalidWeight".to_owned())
        }
        Err(other) => Err(format!("expected InvalidWeight, got: {other}")),
        Ok(_) => Err("negative weight parsed under Strict".to_owned()),
    }
}

fn negative_weight_repair(_seed: u64) -> Result<String, String> {
    let text = format!("{}5 h1 x1 -4.5\n", corpus(8));
    let (events, report, _) = parse_bytes(text.into_bytes(), IngestPolicy::Repair)
        .map_err(|e| format!("repair parse failed: {e}"))?;
    check(events.len() == 9, "the repaired record must be kept")?;
    check(report.repaired.len() == 1, "exactly one repair")?;
    let r = &report.repaired[0];
    check(r.original < 0.0, "original must be negative")?;
    check(r.repaired.abs() < 1e-12, "negative weight must clamp to 0")?;
    check(
        events[8].weight.abs() < 1e-12,
        "the event must carry the clamped weight",
    )?;
    Ok(format!(
        "line {}: {} clamped to {}",
        r.line, r.original, r.repaired
    ))
}

fn infinite_weight_repair(_seed: u64) -> Result<String, String> {
    let text = format!("{}5 h1 x1 inf\n", corpus(8));
    let (events, report, _) = parse_bytes(text.into_bytes(), IngestPolicy::Repair)
        .map_err(|e| format!("repair parse failed: {e}"))?;
    check(report.repaired.len() == 1, "exactly one repair")?;
    let r = &report.repaired[0];
    check(r.original.is_infinite(), "original must be infinite")?;
    check(
        (r.repaired - REPAIR_WEIGHT_CAP).abs() < 1.0,
        "infinite weight must clamp to the cap",
    )?;
    check(
        events[8].weight.is_finite(),
        "the event weight must be finite",
    )?;
    Ok(format!("line {}: inf clamped to {:e}", r.line, r.repaired))
}

fn quarantine_budget_overflow(seed: u64) -> Result<String, String> {
    let text = corpus(20);
    let (corrupted, garbage_lines) = events::interleave_garbage_lines(&text, seed, 1);
    match parse_bytes(corrupted.into_bytes(), quarantine(0.1)) {
        Err(GraphError::TooManyBadRecords {
            quarantined,
            records,
            max_bad_fraction,
        }) => {
            check(
                quarantined as f64 > max_bad_fraction * records as f64,
                "overflow must actually exceed the budget",
            )?;
            Ok(format!(
                "{quarantined}/{records} bad records overflowed the 10% budget"
            ))
        }
        Err(other) => Err(format!("expected TooManyBadRecords, got: {other}")),
        Ok(_) => {
            // Statistically near-impossible (expected ~20 garbage lines),
            // but a seed could inject very few; treat as a miss only if
            // garbage was actually plentiful.
            check(
                garbage_lines.len() <= 2,
                "budget should have overflowed with this much garbage",
            )?;
            Ok("too little garbage injected to overflow; parse succeeded".to_owned())
        }
    }
}

fn all_garbage_tolerant(seed: u64) -> Result<String, String> {
    let (corrupted, _) = events::interleave_garbage_lines("", seed, 1);
    let mut text = corrupted;
    for i in 0..15 {
        text.push_str(&format!("not-a-record-{i}\n"));
    }
    let (events, report, interner) = parse_bytes(text.into_bytes(), quarantine(1.0))
        .map_err(|e| format!("tolerant parse failed: {e}"))?;
    check(events.is_empty(), "no garbage line may produce an event")?;
    check(
        report.quarantined.len() == report.records,
        "every record must be quarantined",
    )?;
    check(interner.is_empty(), "garbage must not intern labels")?;
    Ok(format!(
        "{} garbage records quarantined, zero events",
        report.records
    ))
}

fn empty_input(_seed: u64) -> Result<String, String> {
    let (events, report, interner) = parse_bytes(Vec::new(), IngestPolicy::Strict)
        .map_err(|e| format!("empty parse failed: {e}"))?;
    check(
        events.is_empty() && report.is_clean(),
        "empty input must be clean",
    )?;
    let g = build_graph(&events, interner.len());
    let outcome = Rwr::truncated(0.1, 3).signature_set_outcome(&g, &[], 5);
    check(
        outcome.is_fully_healthy() && outcome.set().is_empty(),
        "empty batch must be a healthy empty outcome",
    )?;
    Ok("empty stream, empty graph, empty healthy batch".to_owned())
}

fn zero_weight_flood(_seed: u64) -> Result<String, String> {
    let mut text = String::new();
    for i in 0..12 {
        text.push_str(&format!("{} h{} x{} 0\n", i, i % 4, i % 3));
    }
    let (events, _, interner) = parse_bytes(text.into_bytes(), IngestPolicy::Strict)
        .map_err(|e| format!("zero weights are valid input: {e}"))?;
    let g = build_graph(&events, interner.len());
    let subjects: Vec<NodeId> = g.nodes().collect();
    for sig in [
        TopTalkers.signature_set(&g, &subjects, 5),
        UnexpectedTalkers::new().signature_set(&g, &subjects, 5),
    ] {
        for (v, s) in sig.iter() {
            check(s.is_empty(), "silent nodes must have empty signatures")?;
            for (_, w) in s.iter() {
                check(w.is_finite(), &format!("non-finite weight for {v}"))?;
            }
        }
    }
    let outcome = Rwr::truncated(0.1, 3).signature_set_outcome(&g, &subjects, 5);
    check(
        outcome.is_fully_healthy(),
        "zero-weight graph must not degrade RWR",
    )?;
    Ok(format!(
        "{} silent subjects, all empty and finite",
        subjects.len()
    ))
}

// --- engine-degradation scenarios ----------------------------------------

fn chain_graph() -> (comsig_graph::CommGraph, Vec<NodeId>) {
    let mut b = GraphBuilder::new();
    for i in 0..12usize {
        b.add_event(NodeId::new(i), NodeId::new((i + 1) % 12), 1.0 + i as f64);
        b.add_event(NodeId::new(i), NodeId::new((i + 5) % 12), 2.0);
    }
    (b.build(12), (0..12).map(NodeId::new).collect())
}

fn nan_poisoned_subject_degrades(seed: u64) -> Result<String, String> {
    let (g, subjects) = chain_graph();
    let rwr = Rwr::truncated(0.1, 3);
    let victim = subjects[seed as usize % subjects.len()];
    let clean = rwr.signature_set_outcome(&g, &subjects, 5);
    check(clean.is_fully_healthy(), "clean run must be healthy")?;
    let poisoned = rwr.signature_set_outcome_injected(&g, &subjects, 5, &move |v, entries| {
        if v == victim {
            if let Some(e) = entries.first_mut() {
                e.1 = f64::NAN;
            }
        }
    });
    check(
        poisoned.degraded().len() == 1,
        "exactly one subject must degrade",
    )?;
    let (dv, reason) = &poisoned.degraded()[0];
    check(
        *dv == victim,
        "the poisoned subject must be the degraded one",
    )?;
    check(
        matches!(reason, DegradeReason::NonFiniteOccupancy { .. }),
        "reason must be NonFiniteOccupancy",
    )?;
    for &v in &subjects {
        if v == victim {
            check(poisoned.set().get(v).is_none(), "victim must be excluded")?;
            continue;
        }
        let a = clean
            .set()
            .get(v)
            .ok_or_else(|| format!("clean run lost subject {v}"))?;
        let b = poisoned
            .set()
            .get(v)
            .ok_or_else(|| format!("poisoned run lost healthy subject {v}"))?;
        check(a.len() == b.len(), "healthy signature length changed")?;
        for ((ua, wa), (ub, wb)) in a.iter().zip(b.iter()) {
            check(ua == ub, "healthy signature membership changed")?;
            check(
                wa.to_bits() == wb.to_bits(),
                "healthy signature weights must be bit-identical",
            )?;
        }
    }
    Ok(format!(
        "subject {victim} degraded alone; 11 healthy subjects bit-identical"
    ))
}

fn poisoned_shard_degrades_alone(seed: u64) -> Result<String, String> {
    let (g, subjects) = chain_graph();
    let rwr = Rwr::truncated(0.1, 3);
    let plan = ShardPlan::new(4);
    let ranges = plan.ranges(subjects.len());
    let shard = ranges[seed as usize % ranges.len()].clone();
    let victims: Vec<NodeId> = subjects[shard].to_vec();
    let poison_set: Vec<NodeId> = victims.clone();
    let clean = rwr.signature_set_outcome(&g, &subjects, 5);
    check(clean.is_fully_healthy(), "clean run must be healthy")?;
    let poisoned = rwr.signature_set_outcome_injected(&g, &subjects, 5, &move |v, entries| {
        if poison_set.contains(&v) {
            if let Some(e) = entries.first_mut() {
                e.1 = f64::NAN;
            }
        }
    });
    let degraded: Vec<NodeId> = poisoned.degraded().iter().map(|(v, _)| *v).collect();
    check(
        degraded == victims,
        "the degraded set must be exactly the poisoned shard, in subject order",
    )?;
    for (_, reason) in poisoned.degraded() {
        check(
            matches!(reason, DegradeReason::NonFiniteOccupancy { .. }),
            "reason must be NonFiniteOccupancy",
        )?;
    }
    for &v in &subjects {
        if victims.contains(&v) {
            check(
                poisoned.set().get(v).is_none(),
                "poisoned subjects must be excluded",
            )?;
            continue;
        }
        let a = clean
            .set()
            .get(v)
            .ok_or_else(|| format!("clean run lost subject {v}"))?;
        let b = poisoned
            .set()
            .get(v)
            .ok_or_else(|| format!("poisoned run lost healthy subject {v}"))?;
        check(a.len() == b.len(), "healthy signature length changed")?;
        for ((ua, wa), (ub, wb)) in a.iter().zip(b.iter()) {
            check(ua == ub, "healthy signature membership changed")?;
            check(
                wa.to_bits() == wb.to_bits(),
                "healthy signature weights must be bit-identical",
            )?;
        }
    }
    Ok(format!(
        "shard of {} subjects degraded alone; {} healthy subjects bit-identical",
        victims.len(),
        subjects.len() - victims.len()
    ))
}

fn iteration_budget_degrades(_seed: u64) -> Result<String, String> {
    let (g, subjects) = chain_graph();
    let mut rwr = Rwr::full(0.05);
    rwr.config.max_iterations = 1;
    rwr.config.tolerance = 1e-15;
    let outcome = rwr.signature_set_outcome(&g, &subjects, 5);
    check(
        !outcome.degraded().is_empty(),
        "one iteration cannot converge here",
    )?;
    for (_, reason) in outcome.degraded() {
        check(
            matches!(reason, DegradeReason::IterationBudget { budget: 1, .. }),
            "reason must be IterationBudget with the configured budget",
        )?;
    }
    check(
        outcome.set().len() + outcome.degraded().len() == subjects.len(),
        "healthy + degraded must partition the subjects",
    )?;
    Ok(format!(
        "{} of {} subjects degraded on a 1-iteration budget",
        outcome.degraded().len(),
        subjects.len()
    ))
}

fn push_budget_degrades(_seed: u64) -> Result<String, String> {
    let (g, _) = chain_graph();
    let starved = PushRwr::new(0.15, 1e-7).with_budget(2);
    match starved.try_occupancy(&g, NodeId::new(0)) {
        Err(DegradeReason::PushBudget { budget }) => {
            check(budget == 2, "reason must carry the configured budget")?;
        }
        Err(other) => return Err(format!("expected PushBudget, got: {other}")),
        Ok(_) => return Err("a 2-push budget cannot drain this residual".to_owned()),
    }
    let healthy = PushRwr::new(0.15, 1e-7);
    check(
        healthy.try_occupancy(&g, NodeId::new(0)).is_ok(),
        "the derived budget must suffice",
    )?;
    Ok("2-push budget degraded; derived budget healthy".to_owned())
}

fn phantom_node_write_rejected(seed: u64) -> Result<String, String> {
    let (mut events, _, interner) = parse_bytes(corpus(20).into_bytes(), IngestPolicy::Strict)
        .map_err(|e| format!("parse failed: {e}"))?;
    events::phantom_node(&mut events, seed, interner.len())
        .ok_or("corpus cannot be empty".to_owned())?;
    match write_events(Vec::new(), &interner, &events) {
        Err(GraphError::NodeOutOfRange { index, num_nodes }) => {
            check(index >= num_nodes, "the phantom id must be out of range")?;
            Ok(format!("phantom node {index} rejected (|V| = {num_nodes})"))
        }
        Err(other) => Err(format!("expected NodeOutOfRange, got: {other}")),
        Ok(()) => Err("phantom node id written without error".to_owned()),
    }
}

fn repair_identity_on_clean(_seed: u64) -> Result<String, String> {
    let text = corpus(40);
    let (strict, strict_report, _) = parse_bytes(text.clone().into_bytes(), IngestPolicy::Strict)
        .map_err(|e| format!("strict parse failed: {e}"))?;
    let (repaired, repair_report, _) = parse_bytes(text.into_bytes(), IngestPolicy::Repair)
        .map_err(|e| format!("repair parse failed: {e}"))?;
    check(
        strict == repaired,
        "Repair must be the identity on clean input",
    )?;
    check(
        strict_report.is_clean() && repair_report.is_clean(),
        "both reports must be clean",
    )?;
    Ok(format!(
        "{} events identical under Strict and Repair",
        strict.len()
    ))
}

// --- sketch-tier degradation scenarios ------------------------------------

/// What the injected faulty change looks like, window 1 of the sketch
/// fault scenarios.
#[derive(Clone, Copy)]
enum SketchFault {
    /// A NaN window aggregate on the victim's outgoing edge.
    NanWeight,
    /// A negative window aggregate.
    NegativeWeight,
    /// A destination outside the declared node space.
    PhantomNode,
}

fn sketch_tier(seed: u64, subjects: &[NodeId], num_nodes: usize) -> SketchTier {
    let cfg = comsig_sketch::stream::StreamConfig {
        cm_width: 64,
        cm_depth: 2,
        candidate_budget: 8,
        fm_bitmaps: 16,
        seed,
        indeg_cells: 0,
        indeg_depth: 2,
    };
    SketchTier::new(SketchScheme::TopTalkers, cfg, subjects, 4, num_nodes)
}

/// Three seeded insertion-only windows over a 10-node space; window 2
/// re-touches every subject so healed signatures re-derive on both the
/// faulty run and its clean twin.
fn sketch_windows(seed: u64) -> Vec<WindowDelta> {
    let change = |s: usize, d: usize, w: f64| EdgeChange {
        src: NodeId::new(s),
        dst: NodeId::new(d),
        old: None,
        new: Some(w),
    };
    (0..3u64)
        .map(|w| WindowDelta {
            start: w,
            end: w + 1,
            changes: (0..6)
                .map(|s| {
                    let d = (s + 1 + (w as usize + seed as usize) % 3) % 10;
                    change(s, d, 1.0 + ((seed + w) % 5) as f64)
                })
                .collect(),
        })
        .collect()
}

/// Drives a faulty [`SketchTier`] run against a clean twin: the fault is
/// isolated to its carrying subject for exactly one window (empty
/// signature, typed [`DegradeReason`], `dropped_changes` bumped), every
/// other subject stays bit-identical throughout, and the victim heals on
/// the next clean window.
fn sketch_fault_scenario(seed: u64, fault: SketchFault) -> Result<String, String> {
    let subjects: Vec<NodeId> = (0..6).map(NodeId::new).collect();
    let victim = subjects[seed as usize % subjects.len()];
    let windows = sketch_windows(seed);

    let mut clean = sketch_tier(seed, &subjects, 10);
    let mut faulty = sketch_tier(seed, &subjects, 10);

    clean.advance_window(&windows[0]);
    faulty.advance_window(&windows[0]);
    check(
        faulty.degraded().is_empty(),
        "clean window must not degrade",
    )?;

    // Window 1 with one injected faulty change from the victim.
    let mut poisoned = windows[1].clone();
    let (dst, weight) = match fault {
        SketchFault::NanWeight => (NodeId::new(9), f64::NAN),
        SketchFault::NegativeWeight => (NodeId::new(9), -3.0),
        SketchFault::PhantomNode => (NodeId::new(99), 1.0),
    };
    poisoned.changes.push(EdgeChange {
        src: victim,
        dst,
        old: None,
        new: Some(weight),
    });
    clean.advance_window(&windows[1]);
    faulty.advance_window(&poisoned);

    check(
        faulty.degraded().len() == 1,
        "exactly one subject must degrade",
    )?;
    let (dv, reason) = &faulty.degraded()[0];
    check(*dv == victim, "the fault's source must be the degraded one")?;
    let reason_ok = match fault {
        SketchFault::NanWeight => {
            matches!(reason, DegradeReason::NonFiniteOccupancy { .. })
        }
        SketchFault::NegativeWeight => {
            matches!(reason, DegradeReason::NegativeOccupancy { .. })
        }
        SketchFault::PhantomNode => {
            matches!(reason, DegradeReason::PhantomNode { space: 10, .. })
        }
    };
    check(reason_ok, "the DegradeReason must name the injected fault")?;
    check(
        faulty.dropped_changes() == 1,
        "the faulty change must be counted as dropped",
    )?;
    let sig = faulty
        .signatures()
        .get(victim)
        .ok_or("victim must keep an (empty) signature slot")?;
    check(sig.is_empty(), "degraded signature must be emptied")?;
    for &v in &subjects {
        if v == victim {
            continue;
        }
        let a = clean.signatures().get(v).ok_or("clean lost a subject")?;
        let b = faulty.signatures().get(v).ok_or("faulty lost a subject")?;
        check(a == b, "healthy subjects must stay bit-identical")?;
    }

    // Window 2 is clean: the victim heals and both runs re-converge
    // (the faulty change never reached the sketches).
    clean.advance_window(&windows[2]);
    faulty.advance_window(&windows[2]);
    check(faulty.degraded().is_empty(), "victim must heal")?;
    for &v in &subjects {
        let a = clean.signatures().get(v).ok_or("clean lost a subject")?;
        let b = faulty.signatures().get(v).ok_or("faulty lost a subject")?;
        check(
            a == b,
            "after healing every signature must match the clean twin",
        )?;
    }
    Ok(format!(
        "subject {victim} degraded for one window and healed; 5 healthy subjects bit-identical"
    ))
}

fn sketch_nan_weight_degrades(seed: u64) -> Result<String, String> {
    sketch_fault_scenario(seed, SketchFault::NanWeight)
}

fn sketch_negative_weight_degrades(seed: u64) -> Result<String, String> {
    sketch_fault_scenario(seed, SketchFault::NegativeWeight)
}

fn sketch_phantom_node_degrades(seed: u64) -> Result<String, String> {
    sketch_fault_scenario(seed, SketchFault::PhantomNode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn corpus_has_at_least_twenty_distinct_scenarios() {
        let scenarios = all();
        assert!(scenarios.len() >= 20, "only {} scenarios", scenarios.len());
        let names: BTreeSet<&str> = scenarios.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), scenarios.len(), "duplicate scenario names");
    }

    #[test]
    fn find_resolves_names() {
        assert!(find("bitflip-strict").is_some());
        assert!(find("no-such-scenario").is_none());
    }
}
