//! # comsig-chaos
//!
//! Deterministic fault-injection harness for the `comsig` pipeline.
//!
//! The paper treats *robustness* as a graph-level property (Definition 2:
//! signature stability under a perturbed graph). This crate extends that
//! story to the *system* level: every layer of the reproduction — byte
//! ingestion, event streams, the batched signature engine — is exercised
//! under injected faults, and the acceptance bar is uniform: **no fault
//! may panic**. Every injected fault must either be quarantined in an
//! [`IngestReport`](comsig_graph::IngestReport), surfaced as a typed
//! [`GraphError`](comsig_graph::GraphError), or isolated as a
//! `Degraded` subject in a
//! [`BatchOutcome`](comsig_core::engine::BatchOutcome).
//!
//! All injectors are seeded ([`rand::rngs::StdRng`]) and therefore
//! reproducible: a failing scenario can be replayed bit-for-bit from its
//! `(name, seed)` pair.
//!
//! * [`reader`] — [`FaultyReader`](reader::FaultyReader): byte-stream
//!   faults (bit flips, truncation, byte corruption, short reads,
//!   mid-stream `io::Error`s) behind the `Read` trait.
//! * [`events`] — event-stream faults: duplicates, out-of-order
//!   timestamps, NaN/negative/infinite weights, phantom node ids,
//!   interleaved garbage lines.
//! * [`scenarios`] — the named scenario corpus, runnable as `cargo test
//!   -p comsig-chaos` and via `comsig chaos`.
//! * [`durability`] — crash-and-recover scenarios for the `comsig
//!   serve` snapshot + WAL plane: kills between durable records, stale
//!   snapshot temp files, torn and bit-flipped WAL tails, with
//!   bit-identical recovery as the acceptance bar.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod durability;
pub mod events;
pub mod reader;
pub mod scenarios;
