//! Byte-stream fault injection behind the `Read` trait.
//!
//! [`FaultyReader`] wraps any reader and corrupts the bytes flowing
//! through it according to a seeded [`FaultPlan`]; downstream code (the
//! `BufRead`-based ingestion in `comsig-graph`) sees an ordinary reader
//! and must cope with whatever comes out.

use std::io::{self, Read};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What to inject into a byte stream. A default plan injects nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultPlan {
    /// Per-byte probability of flipping one random bit.
    pub bitflip_rate: f64,
    /// Per-byte probability of replacing the byte with a random one.
    pub garbage_rate: f64,
    /// Hard EOF after this many bytes have been produced.
    pub truncate_at: Option<usize>,
    /// One-shot `io::Error` (kind `Other`) once this many bytes have
    /// been produced; subsequent reads return EOF.
    pub error_at: Option<usize>,
    /// Upper bound on bytes returned per `read` call (short reads).
    pub max_chunk: Option<usize>,
}

impl FaultPlan {
    /// A plan that passes bytes through untouched.
    #[must_use]
    pub fn clean() -> Self {
        FaultPlan::default()
    }

    /// Sets the per-byte bit-flip probability.
    #[must_use]
    pub fn bitflips(mut self, rate: f64) -> Self {
        self.bitflip_rate = rate;
        self
    }

    /// Sets the per-byte random-replacement probability.
    #[must_use]
    pub fn garbage(mut self, rate: f64) -> Self {
        self.garbage_rate = rate;
        self
    }

    /// Truncates the stream after `n` bytes.
    #[must_use]
    pub fn truncate_at(mut self, n: usize) -> Self {
        self.truncate_at = Some(n);
        self
    }

    /// Fails with an `io::Error` after `n` bytes.
    #[must_use]
    pub fn error_at(mut self, n: usize) -> Self {
        self.error_at = Some(n);
        self
    }

    /// Caps every `read` call at `n` bytes (short reads).
    #[must_use]
    pub fn max_chunk(mut self, n: usize) -> Self {
        self.max_chunk = Some(n.max(1));
        self
    }
}

/// A `Read` adapter that injects the faults described by a [`FaultPlan`],
/// deterministically for a given seed.
#[derive(Debug)]
pub struct FaultyReader<R: Read> {
    inner: R,
    plan: FaultPlan,
    rng: StdRng,
    produced: usize,
    errored: bool,
}

impl<R: Read> FaultyReader<R> {
    /// Wraps `inner` with the given plan and seed.
    #[must_use]
    pub fn new(inner: R, plan: FaultPlan, seed: u64) -> Self {
        FaultyReader {
            inner,
            plan,
            rng: StdRng::seed_from_u64(seed),
            produced: 0,
            errored: false,
        }
    }

    /// Bytes produced so far (after truncation, before the error point).
    #[must_use]
    pub fn produced(&self) -> usize {
        self.produced
    }
}

impl<R: Read> Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if let Some(cut) = self.plan.truncate_at {
            if self.produced >= cut {
                return Ok(0);
            }
        }
        if let Some(fail) = self.plan.error_at {
            if self.produced >= fail {
                if self.errored {
                    // One-shot error; afterwards the stream just ends.
                    return Ok(0);
                }
                self.errored = true;
                return Err(io::Error::other("injected mid-stream fault"));
            }
        }
        let mut limit = buf.len();
        if let Some(chunk) = self.plan.max_chunk {
            limit = limit.min(chunk);
        }
        if let Some(cut) = self.plan.truncate_at {
            limit = limit.min(cut - self.produced);
        }
        if let Some(fail) = self.plan.error_at {
            limit = limit.min(fail - self.produced);
        }
        let n = self.inner.read(&mut buf[..limit])?;
        for byte in &mut buf[..n] {
            if self.plan.bitflip_rate > 0.0 && self.rng.random_bool(self.plan.bitflip_rate) {
                *byte ^= 1 << self.rng.random_range(0..8);
            }
            if self.plan.garbage_rate > 0.0 && self.rng.random_bool(self.plan.garbage_rate) {
                *byte = self.rng.random_range(0u8..=u8::MAX);
            }
        }
        self.produced += n;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufReader, Cursor, Read};

    fn drain(mut r: impl Read) -> io::Result<Vec<u8>> {
        let mut out = Vec::new();
        r.read_to_end(&mut out)?;
        Ok(out)
    }

    #[test]
    fn clean_plan_is_identity() {
        let data = b"0 a b 1\n1 b c 2\n".to_vec();
        let r = FaultyReader::new(Cursor::new(data.clone()), FaultPlan::clean(), 7);
        assert_eq!(drain(r).unwrap(), data);
    }

    #[test]
    fn short_reads_preserve_bytes() {
        let data: Vec<u8> = (0..=255).collect();
        let r = FaultyReader::new(
            Cursor::new(data.clone()),
            FaultPlan::clean().max_chunk(3),
            7,
        );
        assert_eq!(drain(BufReader::new(r)).unwrap(), data);
    }

    #[test]
    fn truncation_cuts_exactly() {
        let data = vec![7u8; 100];
        let r = FaultyReader::new(Cursor::new(data), FaultPlan::clean().truncate_at(42), 7);
        assert_eq!(drain(r).unwrap().len(), 42);
    }

    #[test]
    fn midstream_error_fires_once_then_eof() {
        let data = vec![7u8; 100];
        let mut r = FaultyReader::new(Cursor::new(data), FaultPlan::clean().error_at(10), 7);
        let mut buf = [0u8; 64];
        let n = r.read(&mut buf).unwrap();
        assert_eq!(n, 10);
        assert!(r.read(&mut buf).is_err());
        assert_eq!(r.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn bitflips_are_seed_deterministic() {
        let data = vec![0u8; 256];
        let plan = FaultPlan::clean().bitflips(0.2);
        let a = drain(FaultyReader::new(Cursor::new(data.clone()), plan, 11)).unwrap();
        let b = drain(FaultyReader::new(Cursor::new(data.clone()), plan, 11)).unwrap();
        let c = drain(FaultyReader::new(Cursor::new(data.clone()), plan, 12)).unwrap();
        assert_eq!(a, b, "same seed, same corruption");
        assert_ne!(a, c, "different seed, different corruption");
        assert_ne!(a, data, "corruption actually happened");
    }

    #[test]
    fn garbage_replacement_corrupts() {
        let data = vec![0u8; 512];
        let r = FaultyReader::new(
            Cursor::new(data.clone()),
            FaultPlan::clean().garbage(0.5),
            3,
        );
        let out = drain(r).unwrap();
        assert_eq!(out.len(), data.len());
        assert_ne!(out, data);
    }
}
