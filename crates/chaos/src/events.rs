//! Event-stream fault injection: corruptions applied after parsing,
//! targeting the graph-construction and signature layers.

use comsig_graph::{EdgeEvent, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which invalid weight value to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoisonKind {
    /// `f64::NAN`.
    Nan,
    /// A negative weight.
    Negative,
    /// `f64::INFINITY`.
    Infinite,
}

impl PoisonKind {
    /// The poisoned weight value.
    #[must_use]
    pub fn value(self) -> f64 {
        match self {
            PoisonKind::Nan => f64::NAN,
            PoisonKind::Negative => -1.5,
            PoisonKind::Infinite => f64::INFINITY,
        }
    }
}

/// Duplicates roughly `fraction` of the events, appending the copies at
/// seeded positions. Returns how many duplicates were inserted.
pub fn duplicate_events(events: &mut Vec<EdgeEvent>, seed: u64, fraction: f64) -> usize {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = events.len();
    let mut inserted = 0;
    for i in 0..n {
        if rng.random_bool(fraction.clamp(0.0, 1.0)) {
            let dup = events[i];
            let at = rng.random_range(0..=events.len());
            events.insert(at, dup);
            inserted += 1;
        }
    }
    inserted
}

/// Delivers the stream out of timestamp order: swaps seeded event pairs
/// in place, keeping every `(time, src, dst, weight)` record intact.
/// Returns the number of swaps.
pub fn shuffle_order(events: &mut [EdgeEvent], seed: u64, swaps: usize) -> usize {
    if events.len() < 2 {
        return 0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..swaps {
        let i = rng.random_range(0..events.len());
        let j = rng.random_range(0..events.len());
        events.swap(i, j);
    }
    swaps
}

/// Overwrites the weights of up to `count` seeded events with the poison
/// value. Returns the indices poisoned.
pub fn poison_weights(
    events: &mut [EdgeEvent],
    seed: u64,
    count: usize,
    kind: PoisonKind,
) -> Vec<usize> {
    if events.is_empty() {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hit = Vec::new();
    for _ in 0..count {
        let i = rng.random_range(0..events.len());
        events[i].weight = kind.value();
        if !hit.contains(&i) {
            hit.push(i);
        }
    }
    hit
}

/// Redirects one seeded event to a phantom destination outside the
/// interned node space `0..num_nodes`. Returns the index of the
/// corrupted event.
pub fn phantom_node(events: &mut [EdgeEvent], seed: u64, num_nodes: usize) -> Option<usize> {
    if events.is_empty() {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let i = rng.random_range(0..events.len());
    let ghost = num_nodes + rng.random_range(1..64);
    events[i].dst = NodeId::new(ghost);
    Some(i)
}

/// Inserts a garbage line after roughly every `every`-th input line.
/// Returns the rewritten text and the 1-based line numbers the garbage
/// landed on (the exact lines a quarantining ingest must report).
#[must_use]
pub fn interleave_garbage_lines(text: &str, seed: u64, every: usize) -> (String, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let every = every.max(1);
    let mut out = String::with_capacity(text.len() + text.len() / every + 16);
    let mut garbage_lines = Vec::new();
    let mut lineno = 0usize;
    for line in text.lines() {
        out.push_str(line);
        out.push('\n');
        lineno += 1;
        if rng.random_bool(1.0 / every as f64) {
            // No '#' (would read as a comment) and no whitespace (a junk
            // "line" must be one unparseable token).
            const JUNK: &[u8] = b"!$%&*+-/<=>?@^_~";
            let junk: String = (0..rng.random_range(3..12))
                .map(|_| char::from(JUNK[rng.random_range(0..JUNK.len())]))
                .collect();
            out.push_str(&junk);
            out.push('\n');
            lineno += 1;
            garbage_lines.push(lineno);
        }
    }
    (out, garbage_lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: u64, src: usize, dst: usize, weight: f64) -> EdgeEvent {
        EdgeEvent {
            time,
            src: NodeId::new(src),
            dst: NodeId::new(dst),
            weight,
        }
    }

    fn sample() -> Vec<EdgeEvent> {
        (0..20)
            .map(|i| ev(i, i as usize % 5, 5 + i as usize % 3, 1.0 + i as f64))
            .collect()
    }

    #[test]
    fn duplicates_grow_the_stream() {
        let mut events = sample();
        let inserted = duplicate_events(&mut events, 42, 0.5);
        assert_eq!(events.len(), 20 + inserted);
        assert!(inserted > 0);
    }

    #[test]
    fn order_shuffles_preserve_records() {
        let mut events = sample();
        shuffle_order(&mut events, 42, 10);
        assert_ne!(events, sample(), "the stream must actually reorder");
        let mut times: Vec<u64> = events.iter().map(|e| e.time).collect();
        times.sort_unstable();
        assert_eq!(times, (0..20).collect::<Vec<u64>>());
    }

    #[test]
    fn poison_hits_requested_kind() {
        let mut events = sample();
        let hit = poison_weights(&mut events, 7, 3, PoisonKind::Nan);
        assert!(!hit.is_empty());
        for &i in &hit {
            assert!(events[i].weight.is_nan());
        }
        let mut events = sample();
        let hit = poison_weights(&mut events, 7, 3, PoisonKind::Negative);
        for &i in &hit {
            assert!(events[i].weight < 0.0);
        }
    }

    #[test]
    fn phantom_node_escapes_node_space() {
        let mut events = sample();
        let i = phantom_node(&mut events, 3, 8).unwrap();
        assert!(events[i].dst.index() >= 8);
    }

    #[test]
    fn garbage_lines_are_reported_where_inserted() {
        let text = "0 a b 1\n1 b c 2\n2 c d 3\n3 d e 4\n";
        let (corrupted, lines) = interleave_garbage_lines(text, 5, 1);
        assert!(!lines.is_empty());
        let all: Vec<&str> = corrupted.lines().collect();
        for &l in &lines {
            // Garbage is a single junk token: never a parseable record.
            assert!(!all[l - 1].contains(' '), "line {l} = {:?}", all[l - 1]);
        }
        assert!(
            interleave_garbage_lines(text, 5, 1).0 == corrupted,
            "deterministic"
        );
    }

    #[test]
    fn injectors_are_seed_deterministic() {
        let mut a = sample();
        let mut b = sample();
        duplicate_events(&mut a, 9, 0.3);
        duplicate_events(&mut b, 9, 0.3);
        assert_eq!(a, b);
    }
}
