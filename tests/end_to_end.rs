//! Workspace-spanning integration tests: the full pipeline from raw
//! events through signatures to application decisions, via the `comsig`
//! facade crate.

use std::io::Cursor;

use comsig::core::distance::{SHel, SignatureDistance};
use comsig::core::scheme::{Rwr, SignatureScheme, TopTalkers};
use comsig::eval::roc::self_identification;
use comsig::graph::io::{read_events, write_events};
use comsig::graph::window::{GraphSequence, WindowSpec};
use comsig::graph::Interner;
use comsig::prelude::*;

#[test]
fn events_to_decisions_pipeline() {
    // 1. Raw flow records, as a monitoring point would emit them.
    let records = "\
# time src dst sessions
0 desk-a search.example 30
0 desk-a wiki.corp 12
0 desk-a forum.net 5
0 desk-b search.example 28
0 desk-b wiki.corp 9
0 desk-b tracker.corp 11
1 desk-a search.example 27
1 desk-a wiki.corp 14
1 desk-a forum.net 6
1 desk-b search.example 31
1 desk-b wiki.corp 8
1 desk-b tracker.corp 13
";
    let mut interner = Interner::new();
    let events = read_events(Cursor::new(records), &mut interner).expect("parse");
    assert_eq!(events.len(), 12);

    // 2. Window the stream.
    let seq = GraphSequence::from_events(interner.len(), WindowSpec::new(0, 1), &events);
    assert_eq!(seq.len(), 2);
    let (g1, g2) = (seq.window(0).unwrap(), seq.window(1).unwrap());

    // 3. Signatures and self-identification.
    let desk_a = interner.get("desk-a").unwrap();
    let desk_b = interner.get("desk-b").unwrap();
    let subjects = vec![desk_a, desk_b];
    let sigs1 = TopTalkers.signature_set(g1, &subjects, 3);
    let sigs2 = TopTalkers.signature_set(g2, &subjects, 3);
    let result = self_identification(&SHel, &sigs1, &sigs2);
    assert_eq!(result.per_query.len(), 2);
    assert!(
        result.mean_auc > 0.99,
        "stable hosts must match themselves: {}",
        result.mean_auc
    );

    // 4. The io layer round-trips the same pipeline input.
    let mut buffer = Vec::new();
    write_events(&mut buffer, &interner, &events).expect("write");
    let mut interner2 = Interner::new();
    let reparsed = read_events(Cursor::new(buffer.as_slice()), &mut interner2).expect("reparse");
    assert_eq!(events.len(), reparsed.len());
}

#[test]
fn bipartite_restriction_keeps_signatures_on_the_right_side() {
    let mut b = GraphBuilder::new();
    // Users 0,1 -> items 2,3,4.
    b.add_event(NodeId::new(0), NodeId::new(2), 5.0);
    b.add_event(NodeId::new(0), NodeId::new(3), 3.0);
    b.add_event(NodeId::new(1), NodeId::new(2), 4.0);
    b.add_event(NodeId::new(1), NodeId::new(4), 2.0);
    let g = b.build(5);
    let partition = Partition::split_at(5, 2);
    partition.validate(&g).expect("bipartite");

    // The undirected RWR can place mass on peer *users*; the bipartite
    // restriction must keep only items in the signature.
    let rwr = Rwr::truncated(0.1, 3).undirected();
    let set = rwr.bipartite_signature_set(&g, &partition, 10);
    for (user, sig) in set.iter() {
        assert!(partition.is_left(user));
        for (member, _) in sig.iter() {
            assert!(
                !partition.is_left(member),
                "signature of {user} contains user {member}"
            );
        }
    }
}

#[test]
fn facade_reexports_are_usable() {
    // The prelude and module re-exports expose the full stack.
    let mut b = comsig::prelude::GraphBuilder::new();
    b.add_event(NodeId::new(0), NodeId::new(1), 1.0);
    let g = b.build(2);
    let sig = comsig::core::scheme::TopTalkers.signature(&g, NodeId::new(0), 5);
    assert_eq!(sig.len(), 1);

    let d = comsig::core::distance::Jaccard.distance(&sig, &sig);
    assert_eq!(d, 0.0);

    // Sketch layer via the facade.
    let mut cm = comsig::sketch::cm::CountMinSketch::new(8, 2, 1);
    cm.update(5, 2.0);
    assert!(cm.query(5) >= 2.0);

    // Datagen via the facade.
    let data = comsig::datagen::flownet::generate(&comsig::datagen::FlowNetConfig::small(3));
    assert!(!data.windows.is_empty());
}
