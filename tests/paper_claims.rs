//! Integration tests that assert the paper's *framework-level* claims on
//! miniature instances — the qualitative statements of Sections II and
//! III that do not need a full dataset.

use comsig::core::distance::{paper_distances, SHel, SignatureDistance};
use comsig::core::properties::{persistence, uniqueness};
use comsig::core::scheme::{decayed_combine, Rwr, SignatureScheme, TopTalkers, UnexpectedTalkers};
use comsig::prelude::*;

fn n(i: usize) -> NodeId {
    NodeId::new(i)
}

/// Section II-C: the trivial label signature fails — it cannot notice an
/// individual moving between labels, while a behavioural signature can.
#[test]
fn behavioural_signatures_follow_individuals_across_labels() {
    // Window 1: individual X behind label 0 (talks to 10, 11).
    let mut b = GraphBuilder::new();
    b.add_event(n(0), n(10), 5.0);
    b.add_event(n(0), n(11), 3.0);
    b.add_event(n(1), n(20), 4.0);
    let g1 = b.build(30);
    // Window 2: X moved to label 1; label 0 taken over by someone new.
    let mut b = GraphBuilder::new();
    b.add_event(n(1), n(10), 6.0);
    b.add_event(n(1), n(11), 2.0);
    b.add_event(n(0), n(25), 7.0);
    let g2 = b.build(30);

    let dist = SHel;
    let sig_x_before = TopTalkers.signature(&g1, n(0), 5);
    let sig_label0_after = TopTalkers.signature(&g2, n(0), 5);
    let sig_label1_after = TopTalkers.signature(&g2, n(1), 5);

    // X's behaviour is recognisable at its new label...
    assert!(dist.distance(&sig_x_before, &sig_label1_after) < 0.5);
    // ...and the old label no longer matches.
    assert!(dist.distance(&sig_x_before, &sig_label0_after) > 0.9);
}

/// Section III: each scheme exploits its advertised graph characteristic.
#[test]
fn schemes_exploit_their_characteristics() {
    // Engagement: heavier edges enter TT signatures first.
    let mut b = GraphBuilder::new();
    b.add_event(n(0), n(1), 100.0);
    b.add_event(n(0), n(2), 1.0);
    let g = b.build(3);
    let tt = TopTalkers.signature(&g, n(0), 1);
    assert!(tt.contains(n(1)));

    // Novelty: UT prefers the destination nobody else uses.
    let mut b = GraphBuilder::new();
    b.add_event(n(0), n(5), 10.0); // popular
    b.add_event(n(1), n(5), 10.0);
    b.add_event(n(2), n(5), 10.0);
    b.add_event(n(0), n(6), 4.0); // novel: 4/1 beats 10/3
    let g = b.build(7);
    let ut = UnexpectedTalkers::new().signature(&g, n(0), 1);
    assert!(ut.contains(n(6)));

    // Transitivity: RWR links nodes with no direct edge via shared
    // neighbours.
    let mut b = GraphBuilder::new();
    b.add_event(n(0), n(3), 1.0);
    b.add_event(n(1), n(3), 1.0);
    b.add_event(n(1), n(4), 1.0);
    let g = b.build(5);
    let rwr = Rwr::truncated(0.1, 3).undirected().signature(&g, n(0), 10);
    assert!(rwr.contains(n(4)), "two-hop-out destination reachable");
    assert!(!TopTalkers.signature(&g, n(0), 10).contains(n(4)));
}

/// Section II-D framework: persistence and uniqueness are measured with
/// the same Dist and are complementary views of it.
#[test]
fn properties_are_consistent_across_all_paper_distances() {
    let mut b = GraphBuilder::new();
    b.add_event(n(0), n(1), 2.0);
    b.add_event(n(0), n(2), 1.0);
    b.add_event(n(3), n(4), 2.0);
    let g = b.build(5);
    let s0 = TopTalkers.signature(&g, n(0), 5);
    let s3 = TopTalkers.signature(&g, n(3), 5);
    for d in paper_distances() {
        let p = persistence(d.as_ref(), &s0, &s0);
        assert_eq!(p, 1.0, "{}: self-persistence must be perfect", d.name());
        let u = uniqueness(d.as_ref(), &s0, &s3);
        assert_eq!(u, 1.0, "{}: disjoint signatures fully unique", d.name());
    }
}

/// Section III-A: time-decayed history smooths one bad window without
/// erasing long-term behaviour.
#[test]
fn time_decay_bridges_a_disrupted_window() {
    let stable = |seed: f64| {
        let mut b = GraphBuilder::new();
        b.add_event(n(0), n(1), 10.0 + seed);
        b.add_event(n(0), n(2), 5.0);
        b.build(10)
    };
    let disrupted = {
        let mut b = GraphBuilder::new();
        b.add_event(n(0), n(7), 3.0); // one-off destinations only
        b.add_event(n(0), n(8), 2.0);
        b.build(10)
    };
    let dist = SHel;
    let k = 3;

    // Single-window signature during the disruption: unrecognisable.
    let before = TopTalkers.signature(&stable(0.0), n(0), k);
    let during = TopTalkers.signature(&disrupted, n(0), k);
    assert_eq!(dist.distance(&before, &during), 1.0);

    // Decay-combined history keeps the long-term identity visible.
    let combined = decayed_combine(&[&stable(0.0), &stable(1.0), &disrupted], 0.6);
    let smoothed = TopTalkers.signature(&combined, n(0), k);
    assert!(
        dist.distance(&before, &smoothed) < 0.6,
        "decayed history should still match the stable past"
    );
}
