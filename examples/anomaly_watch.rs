//! Anomaly detection: flag hosts whose communication behaviour changes
//! abruptly between windows, using signature persistence (Section II-D).
//!
//! ```sh
//! cargo run --release --example anomaly_watch
//! ```

use comsig::apps::anomaly::{alarms, anomaly_scores, evaluate, Alarm};
use comsig::core::distance::SHel;
use comsig::core::scheme::Rwr;
use comsig::datagen::flownet::{self, AnomalyConfig};
use comsig::datagen::FlowNetConfig;

fn main() {
    // Inject 8 behaviour changes at window 1 (e.g. compromised hosts or
    // reassigned machines).
    let data = flownet::generate(&FlowNetConfig {
        num_locals: 100,
        num_externals: 3000,
        num_groups: 10,
        num_windows: 3,
        anomaly: AnomalyConfig {
            count: 8,
            window: 1,
        },
        disruption_rate: 0.05,
        seed: 31337,
        ..FlowNetConfig::default()
    });
    let subjects = data.local_nodes();
    let g1 = data.windows.window(0).expect("window 0");
    let g2 = data.windows.window(1).expect("window 1");

    // Anomaly detection needs persistence + robustness -> RWR family.
    let scheme = Rwr::truncated(0.1, 3).undirected();
    let scores = anomaly_scores(&scheme, &SHel, g1, g2, &subjects, 10);

    let truth: std::collections::HashSet<_> = data.truth.anomalous.iter().copied().collect();
    println!("top 12 anomaly scores (1 - persistence):");
    for s in scores.iter().take(12) {
        println!(
            "  {:10} score = {:.3}  [{}]",
            data.interner.label(s.node).unwrap(),
            s.score,
            if truth.contains(&s.node) {
                "INJECTED ANOMALY"
            } else {
                "benign churn"
            }
        );
    }

    let sigma_alarms = alarms(&scores, Alarm::Sigma { lambda: 2.0 });
    println!(
        "\nmean + 2 sigma alarm rule fires on {} hosts",
        sigma_alarms.len()
    );

    if let Some(eval) = evaluate(&scores, &data.truth.anomalous) {
        println!(
            "AUC = {:.4}, R-precision = {:.3} over {} injected anomalies",
            eval.auc, eval.r_precision, eval.positives
        );
    }
}
