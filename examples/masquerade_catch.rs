//! Label-masquerading detection: simulate identity switches between two
//! observation windows (the repetitive-debtor scenario) and recover the
//! mapping with the paper's Algorithm 1.
//!
//! ```sh
//! cargo run --release --example masquerade_catch
//! ```

use comsig::apps::masquerade::{
    accuracy, apply_masquerade, detect_label_masquerading, plan_masquerade, DetectorConfig,
};
use comsig::core::distance::SHel;
use comsig::core::scheme::{Rwr, SignatureScheme, TopTalkers};
use comsig::datagen::{flownet, FlowNetConfig};

fn main() {
    let data = flownet::generate(&FlowNetConfig {
        num_locals: 100,
        num_externals: 3000,
        num_groups: 10,
        num_windows: 2,
        seed: 4096,
        ..FlowNetConfig::default()
    });
    let subjects = data.local_nodes();
    let g1 = data.windows.window(0).expect("window 0");

    // 8% of hosts swap identities between the windows.
    let plan = plan_masquerade(&subjects, 0.08, 1234);
    let g2 = apply_masquerade(data.windows.window(1).expect("window 1"), &plan);
    println!("simulated {} masquerading hosts:", plan.mapping.len());
    for &(v, u) in &plan.mapping {
        println!(
            "  {} now sends its traffic as {}",
            data.interner.label(v).unwrap(),
            data.interner.label(u).unwrap()
        );
    }

    // Masquerading needs persistence + uniqueness, so RWR is the paper's
    // method of choice (Figure 6); TT shown for contrast.
    let cfg = DetectorConfig {
        k: 10,
        threshold_divisor: 5.0,
        top_l: 3,
    };
    for (label, scheme) in [
        (
            "RWR^3_0.1",
            Box::new(Rwr::truncated(0.1, 3).undirected()) as Box<dyn SignatureScheme>,
        ),
        ("TT", Box::new(TopTalkers)),
    ] {
        let det = detect_label_masquerading(scheme.as_ref(), &SHel, g1, &g2, &subjects, &cfg);
        let truth: std::collections::HashSet<_> = plan.mapping.iter().copied().collect();
        let correct = det
            .detected
            .iter()
            .filter(|pair| truth.contains(pair))
            .count();
        println!(
            "\n[{label}] delta = {:.3}; {} pairs reported, {} correct; accuracy = {:.3}",
            det.delta,
            det.detected.len(),
            correct,
            accuracy(&det, &plan, subjects.len()),
        );
        for &(v, u) in det.detected.iter().take(8) {
            let ok = truth.contains(&(v, u));
            println!(
                "  {} -> {}  [{}]",
                data.interner.label(v).unwrap(),
                data.interner.label(u).unwrap(),
                if ok { "correct" } else { "wrong" }
            );
        }
    }
}
