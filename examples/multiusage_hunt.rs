//! Multiusage detection ("anti-aliasing") on simulated enterprise
//! traffic: find the sets of host addresses operated by the same hidden
//! individual (home + office + hotspot), then check against ground truth.
//!
//! ```sh
//! cargo run --release --example multiusage_hunt
//! ```

use comsig::apps::multiusage;
use comsig::core::distance::SHel;
use comsig::core::scheme::{SignatureScheme, TopTalkers};
use comsig::datagen::{flownet, FlowNetConfig, MultiusageConfig};

fn main() {
    // 100 hosts, 12 of which are extra labels of multi-homed individuals.
    let cfg = FlowNetConfig {
        num_locals: 100,
        num_externals: 3000,
        num_groups: 10,
        num_windows: 2,
        multiusage: MultiusageConfig {
            individuals: 10,
            min_labels: 2,
            max_labels: 3,
        },
        seed: 2024,
        ..FlowNetConfig::default()
    };
    let data = flownet::generate(&cfg);
    let g = data.windows.window(0).expect("window 0");
    let subjects = data.local_nodes();

    // TT is the paper's method of choice for this task (Figure 5):
    // multiusage needs uniqueness + robustness.
    let sigs = TopTalkers.signature_set(g, &subjects, 10);
    let dist = SHel;

    // 1. Unsupervised detection: suspiciously similar label pairs.
    let pairs = multiusage::detect_pairs(&dist, &sigs, 0.55);
    println!("{} label pairs below distance 0.55:", pairs.len());
    let truth: std::collections::HashSet<(String, String)> = data
        .truth
        .multiusage_groups
        .iter()
        .flat_map(|group| {
            let mut pairs = Vec::new();
            for i in 0..group.len() {
                for j in (i + 1)..group.len() {
                    let a = data.interner.label(group[i]).unwrap().to_owned();
                    let b = data.interner.label(group[j]).unwrap().to_owned();
                    pairs.push((a, b));
                }
            }
            pairs
        })
        .collect();
    let mut hits = 0;
    for p in &pairs {
        let a = data.interner.label(p.a).unwrap().to_owned();
        let b = data.interner.label(p.b).unwrap().to_owned();
        let is_true = truth.contains(&(a.clone(), b.clone()));
        hits += usize::from(is_true);
        println!(
            "  {a} <-> {b}  dist = {:.3}  [{}]",
            p.distance,
            if is_true { "TRUE ALIAS" } else { "false alarm" }
        );
    }
    println!(
        "precision at this threshold: {hits}/{} ({:.0}%)",
        pairs.len(),
        100.0 * hits as f64 / pairs.len().max(1) as f64
    );

    // 2. Ground-truth ROC evaluation (the Figure 5 methodology).
    let eval = multiusage::evaluate(&dist, &sigs, &data.truth.multiusage_groups);
    println!(
        "\nmulti-target ROC over {} queries: mean AUC = {:.4}",
        eval.per_query.len(),
        eval.mean_auc
    );

    // 3. Interactive query: who else might the first alias be?
    if let Some(group) = data.truth.multiusage_groups.first() {
        let query = group[0];
        println!(
            "\nmost similar labels to {}:",
            data.interner.label(query).unwrap()
        );
        for (u, d) in multiusage::most_similar(&dist, &sigs, query, 3) {
            println!("  {:12} dist = {d:.3}", data.interner.label(u).unwrap());
        }
        println!(
            "(ground truth: {})",
            group
                .iter()
                .map(|&l| data.interner.label(l).unwrap())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
}
