//! Section VI end to end: one-pass sketch-based signature extraction over
//! a communication stream, then approximate nearest-neighbour signature
//! search with MinHash/LSH — the "graph too big to store" regime.
//!
//! ```sh
//! cargo run --release --example streaming_sketch
//! ```

use comsig::core::distance::{Jaccard, SignatureDistance};
use comsig::core::scheme::{SignatureScheme, TopTalkers};
use comsig::core::SignatureSet;
use comsig::datagen::{flownet, FlowNetConfig};
use comsig::sketch::lsh::LshIndex;
use comsig::sketch::stream::{SemiStream, StreamConfig};

fn main() {
    let data = flownet::generate(&FlowNetConfig {
        num_locals: 150,
        num_externals: 5000,
        num_groups: 15,
        num_windows: 1,
        seed: 777,
        ..FlowNetConfig::default()
    });
    let g = data.windows.window(0).expect("window 0");
    let subjects = data.local_nodes();
    let k = 10;

    // --- 1. One-pass sketching ------------------------------------------
    let mut stream = SemiStream::new(StreamConfig::default());
    stream.observe_graph(g); // in production: observe() per flow record
    println!(
        "stream state: {} sources, {} counters total ({} per source)",
        stream.num_sources(),
        stream.state_size(),
        stream.state_size() / stream.num_sources().max(1)
    );

    // Compare against exact signatures.
    let exact = TopTalkers.signature_set(g, &subjects, k);
    let mean_gap: f64 = subjects
        .iter()
        .map(|&v| Jaccard.distance(exact.get(v).unwrap(), &stream.tt_signature(v, k)))
        .sum::<f64>()
        / subjects.len() as f64;
    println!("mean Jaccard(exact TT, streaming TT) = {mean_gap:.4}");

    // --- 2. LSH index over the streaming signatures ----------------------
    let streaming_set = SignatureSet::new(
        subjects.clone(),
        subjects
            .iter()
            .map(|&v| stream.tt_signature(v, k))
            .collect(),
    );
    let mut index = LshIndex::new(24, 3, 99);
    index.insert_set(&streaming_set);
    println!(
        "LSH index: {} items, similarity threshold ~{:.2}",
        index.len(),
        index.similarity_threshold()
    );

    // --- 3. Approximate nearest-neighbour queries ------------------------
    let mut examined = 0usize;
    for &v in subjects.iter().take(5) {
        let q = streaming_set.get(v).expect("sig");
        let candidates = index.candidates(q);
        examined += candidates.len();
        let near = index.nearest(q, 3, Some(v));
        let rendered: Vec<String> = near
            .iter()
            .map(|&(u, d)| format!("{} ({d:.2})", data.interner.label(u).unwrap()))
            .collect();
        println!(
            "  {:10} examined {:3} candidates -> {}",
            data.interner.label(v).unwrap(),
            candidates.len(),
            rendered.join(", ")
        );
    }
    println!(
        "mean candidates examined: {:.1} of {} hosts ({:.0}% of a full scan)",
        examined as f64 / 5.0,
        subjects.len(),
        100.0 * examined as f64 / 5.0 / subjects.len() as f64
    );
}
