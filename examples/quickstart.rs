//! Quickstart: build a communication graph, compute signatures under the
//! three schemes, compare them with the paper's distance functions, and
//! measure the three fundamental properties.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use comsig::core::distance::{paper_distances, SHel};
use comsig::core::properties;
use comsig::core::scheme::{Rwr, SignatureScheme, TopTalkers, UnexpectedTalkers};
use comsig::graph::{GraphBuilder, Interner};

fn main() {
    // --- 1. Label space -------------------------------------------------
    let mut interner = Interner::new();
    let alice = interner.intern("alice-laptop");
    let bob = interner.intern("bob-desktop");
    let search = interner.intern("search.example.com");
    let mail = interner.intern("mail.example.com");
    let wiki = interner.intern("team-wiki.internal");
    let forum = interner.intern("obscure-forum.net");
    let tracker = interner.intern("bug-tracker.internal");

    // --- 2. Week 1: aggregate communication events ----------------------
    let mut week1 = GraphBuilder::new();
    week1.add_event(alice, search, 40.0); // everyone uses search
    week1.add_event(bob, search, 38.0);
    week1.add_event(alice, mail, 25.0);
    week1.add_event(bob, mail, 30.0);
    week1.add_event(alice, wiki, 12.0); // shared team infrastructure
    week1.add_event(bob, wiki, 9.0);
    week1.add_event(alice, forum, 6.0); // alice's personal interest
    week1.add_event(bob, tracker, 14.0); // bob's job
    let g1 = week1.build(interner.len());

    // Week 2: same people, slightly different volumes.
    let mut week2 = GraphBuilder::new();
    week2.add_event(alice, search, 35.0);
    week2.add_event(bob, search, 42.0);
    week2.add_event(alice, mail, 28.0);
    week2.add_event(bob, mail, 27.0);
    week2.add_event(alice, wiki, 10.0);
    week2.add_event(bob, wiki, 11.0);
    week2.add_event(alice, forum, 8.0);
    week2.add_event(bob, tracker, 12.0);
    let g2 = week2.build(interner.len());

    // --- 3. Signatures under the three schemes --------------------------
    let schemes: Vec<Box<dyn SignatureScheme>> = vec![
        Box::new(TopTalkers),
        Box::new(UnexpectedTalkers::new()),
        Box::new(Rwr::truncated(0.1, 3).undirected()),
    ];
    let k = 3;
    for scheme in &schemes {
        println!("--- {} signatures (k = {k}) ---", scheme.name());
        for &host in &[alice, bob] {
            let sig = scheme.signature(&g1, host, k);
            let rendered: Vec<String> = sig
                .ranked()
                .into_iter()
                .map(|(u, w)| format!("{} ({w:.3})", interner.label(u).unwrap_or("?")))
                .collect();
            println!(
                "  {:12} -> {}",
                interner.label(host).unwrap_or("?"),
                rendered.join(", ")
            );
        }
    }

    // --- 4. Distances between alice and bob -----------------------------
    println!("\n--- Dist(alice, bob) under each scheme and distance ---");
    for scheme in &schemes {
        let a = scheme.signature(&g1, alice, k);
        let b = scheme.signature(&g1, bob, k);
        let cells: Vec<String> = paper_distances()
            .iter()
            .map(|d| format!("{}={:.3}", d.name(), d.distance(&a, &b)))
            .collect();
        println!("  {:10} {}", scheme.name(), cells.join("  "));
    }

    // --- 5. The three fundamental properties ----------------------------
    println!("\n--- properties (Dist_SHel) ---");
    for scheme in &schemes {
        let p = properties::node_persistence(scheme.as_ref(), &SHel, &g1, &g2, alice, k);
        let u = properties::node_uniqueness(scheme.as_ref(), &SHel, &g1, alice, bob, k);
        println!(
            "  {:10} persistence(alice) = {p:.3}   uniqueness(alice, bob) = {u:.3}",
            scheme.name()
        );
    }

    println!("\nAlice keeps her behaviour across weeks (high persistence) and");
    println!("is distinguishable from Bob by her personal destinations —");
    println!("exactly the two properties an identity signature needs.");
}
