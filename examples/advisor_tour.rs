//! The framework process end to end (Section I's "shopping for
//! signatures"): state the application, read off the required properties
//! (Table I), check what each scheme provides (Tables II–III), *measure*
//! the actual property values on your own data, and pick a scheme.
//!
//! ```sh
//! cargo run --release --example advisor_tour
//! ```

use comsig::apps::advisor::{paper_profiles, recommend, Application};
use comsig::apps::measure::{measure, rank_levels, MeasureConfig};
use comsig::core::distance::SHel;
use comsig::core::scheme::{Rwr, SignatureScheme, TopTalkers, UnexpectedTalkers};
use comsig::datagen::{flownet, FlowNetConfig};

fn main() {
    // --- 1. Qualitative: the paper's tables ------------------------------
    for app in [
        Application::MultiusageDetection,
        Application::LabelMasquerading,
        Application::AnomalyDetection,
    ] {
        println!("== {app} ==");
        print!("   needs:");
        for (property, need) in app.requirements() {
            print!(" {property:?}={need:?}");
        }
        println!();
        let recs = recommend(app, &paper_profiles());
        let best = &recs[0];
        println!("   recommended: {} (score {})", best.scheme, best.score);
    }

    // --- 2. Quantitative: measure the properties on your data ------------
    println!("\nmeasuring on synthetic enterprise traffic...");
    let data = flownet::generate(&FlowNetConfig {
        num_locals: 100,
        num_externals: 3000,
        num_groups: 10,
        num_windows: 2,
        seed: 7,
        ..FlowNetConfig::default()
    });
    let subjects = data.local_nodes();
    let g1 = data.windows.window(0).expect("window 0");
    let g2 = data.windows.window(1).expect("window 1");

    let schemes: Vec<Box<dyn SignatureScheme>> = vec![
        Box::new(TopTalkers),
        Box::new(UnexpectedTalkers::new()),
        Box::new(Rwr::truncated(0.1, 3).undirected()),
    ];
    let measured: Vec<_> = schemes
        .iter()
        .map(|s| {
            measure(
                s.as_ref(),
                &SHel,
                g1,
                g2,
                &subjects,
                &MeasureConfig::default(),
            )
        })
        .collect();

    println!(
        "{:12} {:>12} {:>11} {:>11}",
        "scheme", "persistence", "uniqueness", "robustness"
    );
    for m in &measured {
        println!(
            "{:12} {:>12.3} {:>11.3} {:>11.3}",
            m.scheme, m.persistence, m.uniqueness, m.robustness
        );
    }

    // --- 3. Derive the Table IV levels from the measurements -------------
    let p_levels = rank_levels(&measured.iter().map(|m| m.persistence).collect::<Vec<_>>());
    let u_levels = rank_levels(&measured.iter().map(|m| m.uniqueness).collect::<Vec<_>>());
    let r_levels = rank_levels(&measured.iter().map(|m| m.robustness).collect::<Vec<_>>());
    println!("\nderived Table IV:");
    println!(
        "{:12} {:>12} {:>11} {:>11}",
        "", "persistence", "uniqueness", "robustness"
    );
    for (i, m) in measured.iter().enumerate() {
        println!(
            "{:12} {:>12} {:>11} {:>11}",
            m.scheme, p_levels[i], u_levels[i], r_levels[i]
        );
    }
    println!("\n(paper Table IV: TT medium/medium/high, UT low/high/low, RWR high/low/medium)");
}
