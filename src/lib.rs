//! # comsig — Signatures for Communication Graphs
//!
//! Facade crate re-exporting the full `comsig` workspace: a reproduction of
//! Cormode, Korn, Muthukrishnan & Wu, *On Signatures for Communication
//! Graphs* (ICDE 2008).
//!
//! See the individual crates for details:
//!
//! * [`graph`] — communication-graph substrate (CSR digraphs, windows,
//!   bipartite partitions, the robustness perturbation model).
//! * [`core`] — the signature framework: schemes (Top Talkers, Unexpected
//!   Talkers, Random Walk with Resets), distance functions and the three
//!   signature properties.
//! * [`eval`] — ROC/AUC machinery and property summaries.
//! * [`datagen`] — synthetic enterprise-flow and query-log workloads with
//!   ground truth.
//! * [`apps`] — multiusage detection, label-masquerading detection
//!   (Algorithm 1) and anomaly detection.
//! * [`sketch`] — Section VI scalability extensions: Count-Min and FM
//!   sketches, semi-streaming signatures, MinHash/LSH.

#![forbid(unsafe_code)]

pub use comsig_apps as apps;
pub use comsig_core as core;
pub use comsig_datagen as datagen;
pub use comsig_eval as eval;
pub use comsig_graph as graph;
pub use comsig_sketch as sketch;

/// Commonly used items, importable with `use comsig::prelude::*`.
pub mod prelude {
    pub use comsig_graph::{CommGraph, GraphBuilder, Interner, NodeClass, NodeId, Partition};
}
